#!/usr/bin/env python3
"""Validate the fast analytic tier against the cycle-accurate tier.

CASH's closed-loop experiments run on the fast analytic tier; the
cycle tier exists to show that the shortcut is honest.  This example
runs the tier-agreement sweep over every (phase, virtual-core) cell of
two applications, prints the per-cell measured vs predicted IPC with
relative error, and reports the wall-clock of the sharded sweep:

    python examples/tier_agreement.py

The same sweep at full scale is ``python -m repro figure tiers``.
"""

from repro.experiments.report import tier_table
from repro.experiments.scenarios import TIER_CONFIGS, tier_agreement_grid


def main() -> None:
    apps = ("apache", "mcf")
    results, timing = tier_agreement_grid(
        app_names=apps, instructions=2000, jobs=2
    )
    print("Tier agreement: cycle-accurate IPC vs analytic prediction")
    print(f"apps: {', '.join(apps)}; configs: "
          f"{', '.join(str(c) for c in TIER_CONFIGS)}\n")
    print(tier_table(results))
    print(
        f"\n{timing['cells']} cells x {timing['instructions']} micro-ops "
        f"in {timing['wall_seconds']:.2f}s "
        f"({timing['cells_per_second']:.1f} cells/s, "
        f"{timing['jobs']} worker processes)"
    )
    worst = max(results.values(), key=lambda cell: cell.relative_error)
    print(
        "worst cell error "
        f"{worst.relative_error * 100:.1f}% — the fast tier tracks the "
        "cycle tier's shape, which is what the allocator needs."
    )


if __name__ == "__main__":
    main()
