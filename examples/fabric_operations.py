#!/usr/bin/env python3
"""Operating the CASH fabric: allocation, monitoring, reconfiguration.

Walks the hardware-facing API end to end the way an IaaS control plane
would: carve virtual cores out of the 2D fabric, read their performance
counters remotely over the CASH Runtime Interface Network, resize one
with EXPAND/SHRINK (demonstrating the Register Flush protocol of
Fig. 5), and defragment the fabric:

    python examples/fabric_operations.py
"""

from repro.arch.counters import CounterKind, synthesize_vcore_reading
from repro.arch.fabric import Fabric
from repro.arch.network import RuntimeInterfaceNetwork
from repro.arch.reconfig import ReconfigEngine, DEFAULT_RECONFIG_COSTS
from repro.arch.registers import DistributedRegisterFile
from repro.arch.vcore import VCoreConfig


def main() -> None:
    fabric = Fabric(width=16, height=16)
    print(f"fabric: {fabric.width}x{fabric.height} = {len(fabric.tiles)} tiles")

    # --- allocate three tenants -------------------------------------
    tenants = {
        1: VCoreConfig(slices=4, l2_kb=512),
        2: VCoreConfig(slices=1, l2_kb=128),
        3: VCoreConfig(slices=8, l2_kb=2048),
    }
    for vcore_id, config in tenants.items():
        allocation = fabric.allocate(vcore_id, config)
        print(
            f"vcore {vcore_id}: {config} -> slices at "
            f"{list(allocation.slice_positions)[:4]}..., mean slice-to-bank "
            f"distance {allocation.mean_slice_to_bank_distance():.2f} hops, "
            f"rents at ${config.cost_rate():.4f}/hr"
        )
    print(f"fabric utilization: {fabric.utilization() * 100:.0f}%\n")

    # --- monitor a remote virtual core over the interface network ---
    network = RuntimeInterfaceNetwork()
    runtime_position = (0, 0)
    network.grant_privilege(runtime_position)
    allocation = fabric.allocation(1)
    slice_ids = []
    for position in allocation.slice_positions:
        unit = fabric.tile(position).slice_unit
        # Pretend the tenant has been running for a while.
        unit.counters.increment(CounterKind.INSTRUCTIONS_COMMITTED, 45_000)
        unit.counters.increment(CounterKind.CYCLES, 100_000)
        network.register_slice(unit.slice_id, position, unit.counters)
        slice_ids.append(unit.slice_id)
    replies = network.read_vcore(
        runtime_position,
        slice_ids,
        [CounterKind.INSTRUCTIONS_COMMITTED, CounterKind.CYCLES],
        now=1_000,
    )
    reading = synthesize_vcore_reading(reply.sample for reply in replies)
    print(
        f"remote reading of vcore 1: IPC {reading.ipc:.2f} "
        f"(round trips of {replies[0].round_trip_cycles} cycles each, "
        f"{len(replies)} counter messages)\n"
    )

    # --- resize vcore 1: 4 Slices -> 2 Slices (Register Flush) ------
    registers = DistributedRegisterFile(slice_ids=range(4))
    for global_reg in range(24):
        registers.write(global_reg % 4, global_reg, value=global_reg * 11)
    engine = ReconfigEngine(
        initial=tenants[1],
        cost_model=DEFAULT_RECONFIG_COSTS,
        register_file=registers,
    )
    result = engine.apply(VCoreConfig(slices=2, l2_kb=256))
    print(
        f"SHRINK vcore 1 to {engine.current}: commands "
        f"{[c.kind.value for c in result.commands]}, overhead "
        f"{result.overhead_cycles} cycles"
    )
    print(
        f"register flush: {result.flush.messages} operand messages "
        f"({result.flush.adopted} adopted, {result.flush.renamed} renamed, "
        f"{result.flush.spills} spilled)"
    )
    survivors_state = registers.architectural_state()
    assert all(survivors_state[gr] == gr * 11 for gr in survivors_state)
    print("architectural register state preserved across the shrink ✓\n")
    fabric.release(1)
    fabric.allocate(1, engine.current)

    # --- defragment --------------------------------------------------
    moved = fabric.defragment()
    print(
        f"defragmentation rescheduled {moved} virtual core(s); "
        f"utilization {fabric.utilization() * 100:.0f}%"
    )


if __name__ == "__main__":
    main()
