#!/usr/bin/env python3
"""x264 under a frame-rate QoS: the Figs. 2 and 8 scenario.

Runs the x264 phase model closed-loop with convex optimization,
race-to-idle and the CASH runtime, and prints the time series of cost
rate and normalized performance that Figs. 2 and 8 plot:

    python examples/video_encoder_qos.py
"""

from repro.experiments.report import timeseries_table
from repro.experiments.scenarios import x264_timeseries


def main() -> None:
    results = x264_timeseries(intervals=220)
    print(timeseries_table(results, stride=20))
    print()
    for name, run in results.items():
        print(
            f"{name:<22} mean cost rate ${run.mean_cost_rate:.4f}/hr, "
            f"violations {run.violation_percent:.1f}%"
        )
    cash = results["CASH"]
    convex = results["Convex Optimization"]
    race = results["Race to Idle"]
    print(
        f"\nCASH vs convex optimization: "
        f"{(1 - cash.mean_cost_rate / convex.mean_cost_rate) * 100:+.0f}% cost"
    )
    print(
        f"CASH vs race-to-idle:        "
        f"{(1 - cash.mean_cost_rate / race.mean_cost_rate) * 100:+.0f}% cost"
    )


if __name__ == "__main__":
    main()
