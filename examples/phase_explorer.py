#!/usr/bin/env python3
"""Explore the non-convex configuration space of x264 (Fig. 1).

For each of the 10 x264 phases, renders the IPC surface over the
8 Slices × {64 KB .. 8 MB} grid as an ASCII intensity map, marks the
global optimum (*) and any distinct local optima (+), and prints the
phase-by-phase summary matching Fig. 1k:

    python examples/phase_explorer.py
"""

from repro.arch.vcore import DEFAULT_CONFIG_SPACE
from repro.sim.perfmodel import DEFAULT_PERF_MODEL
from repro.workloads.apps import make_x264

_SHADES = " .:-=+*#%@"


def render_phase(phase, model, space) -> None:
    grid = model.ipc_grid(phase, space)
    lo, hi = grid.min(), grid.max()
    best, best_ipc = model.best_config(phase, space)
    maxima = set(model.local_maxima(phase, space))
    print(f"--- {phase.name}: best {best} at IPC {best_ipc:.3f} ---")
    header = "        " + " ".join(
        f"{kb // 1024}M" if kb >= 1024 else f"{kb}K".rjust(2)
        for kb in space.l2_sizes_kb
    )
    print(header)
    for i in reversed(range(len(space.slice_counts))):
        slices = space.slice_counts[i]
        row = f"{slices} slice "
        for j, l2_kb in enumerate(space.l2_sizes_kb):
            value = grid[i, j]
            shade = _SHADES[
                min(int((value - lo) / (hi - lo + 1e-12) * len(_SHADES)),
                    len(_SHADES) - 1)
            ]
            config = space[i * len(space.l2_sizes_kb) + j]
            from repro.arch.vcore import VCoreConfig

            config = VCoreConfig(slices, l2_kb)
            if config == best:
                mark = "*"
            elif config in maxima:
                mark = "+"
            else:
                mark = shade
            row += f" {mark} "
        print(row)
    distinct = [c for c in maxima if c != best]
    if distinct:
        print(f"local optima distinct from global: "
              f"{', '.join(str(c) for c in sorted(distinct))}")
    print()


def main() -> None:
    app = make_x264()
    model = DEFAULT_PERF_MODEL
    space = DEFAULT_CONFIG_SPACE
    for phase in app.phases:
        render_phase(phase, model, space)

    print("=== Fig. 1k summary ===")
    previous = None
    local_count = 0
    for index, phase in enumerate(app.phases, start=1):
        best, best_ipc = model.best_config(phase, space)
        maxima = model.local_maxima(phase, space)
        distinct = len([c for c in maxima if c != best])
        if distinct:
            local_count += 1
        same = "  <-- same as previous!" if best == previous else ""
        print(
            f"phase {index:>2}: optimum {str(best):>9}  ipc {best_ipc:5.2f}  "
            f"local optima {distinct}{same}"
        )
        previous = best
    print(
        f"\n{local_count}/10 phases have local optima distinct from the "
        "global optimum (paper: 6/10);\nno two consecutive phases share "
        "an optimal configuration."
    )


if __name__ == "__main__":
    main()
