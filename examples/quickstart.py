#!/usr/bin/env python3
"""Quickstart: meet a QoS target at minimal cost with the CASH runtime.

Builds a small phased application, sets a throughput QoS goal the way
the paper does (the worst phase's best achievable IPC), and runs the
four resource allocators closed-loop on the fast SSim tier:

    python examples/quickstart.py
"""

from repro.arch.vcore import DEFAULT_CONFIG_SPACE
from repro.baselines.convex import ConvexOptimizationAllocator
from repro.baselines.oracle import OracleAllocator
from repro.baselines.race import RaceToIdleAllocator, worst_case_config
from repro.experiments.harness import (
    CASHAllocator,
    ThroughputSimulator,
    qos_target_for,
)
from repro.sim.perfmodel import DEFAULT_PERF_MODEL
from repro.workloads.phase import Phase, PhasedApplication


def build_demo_app() -> PhasedApplication:
    """A two-phase application: a compute burst and a memory scan."""
    return PhasedApplication(
        name="demo",
        phases=[
            Phase(
                name="demo.compute",
                instructions_m=40,
                ilp=3.5,
                mem_refs_per_inst=0.25,
                l1_miss_rate=0.05,
                working_set=((256, 0.9),),
                mlp=2.5,
                comm_penalty=0.05,
            ),
            Phase(
                name="demo.scan",
                instructions_m=30,
                ilp=1.8,
                mem_refs_per_inst=0.35,
                l1_miss_rate=0.15,
                working_set=((512, 0.4), (4096, 0.85)),
                mlp=2.0,
                comm_penalty=0.15,
            ),
        ],
    )


def main() -> None:
    app = build_demo_app()
    model = DEFAULT_PERF_MODEL
    space = DEFAULT_CONFIG_SPACE
    goal = qos_target_for(app, model, space)
    print(f"application: {app.name} ({len(app)} phases)")
    print(f"QoS goal (worst-case best IPC): {goal:.3f} instructions/cycle\n")

    sim = ThroughputSimulator(app=app, qos_goal=goal, model=model, space=space)
    allocators = [
        OracleAllocator(qos_goal=goal),
        ConvexOptimizationAllocator(app=app, qos_goal=goal, model=model),
        RaceToIdleAllocator(
            config=worst_case_config(app, goal, model, space), qos_goal=goal
        ),
        CASHAllocator(configs=list(space), qos_goal=goal),
    ]

    print(f"{'allocator':<22}{'cost ($/hr)':>12}{'violations':>12}")
    for allocator in allocators:
        result = sim.run(allocator, intervals=600)
        print(
            f"{allocator.name:<22}{result.cost_dollars:>12.4f}"
            f"{result.violation_percent:>11.1f}%"
        )
    print(
        "\nCASH should sit near the Optimal cost with only a few percent"
        "\nof intervals below the goal; Race to Idle never violates but"
        "\npays the worst-case virtual core; Convex Optimization misses"
        "\nQoS whenever the active phase departs from average behaviour."
    )


if __name__ == "__main__":
    main()
