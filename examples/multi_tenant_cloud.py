#!/usr/bin/env python3
"""A multi-tenant IaaS chip: CASH tenants vs race-to-idle tenants.

Runs the same customer mix twice on the same 16x16 fabric — once with
every tenant reserving its worst-case virtual core (race-to-idle), once
with every tenant running the CASH runtime — and compares what the
*provider* sees: fabric utilization, mean tenant bill, and how much
capacity the CASH tenants hand back:

    python examples/multi_tenant_cloud.py
"""

from repro.arch.fabric import Fabric
from repro.cloud import CloudProvider, Tenant
from repro.experiments.harness import qos_target_for
from repro.workloads.apps import get_app

MIX = ["bzip", "hmmer", "sjeng", "lib", "omnetpp", "ferret"]


def build_tenants(policy):
    tenants = []
    for index, name in enumerate(MIX):
        app = get_app(name)
        tenants.append(
            Tenant(
                tenant_id=index,
                app=app,
                qos_goal=qos_target_for(app),
                policy=policy,
                arrival_interval=index * 10,
            )
        )
    return tenants


def run(policy):
    provider = CloudProvider(fabric=Fabric(width=16, height=16), seed=7)
    report = provider.run(build_tenants(policy), intervals=500)
    return provider, report


def main() -> None:
    for policy in ("race", "cash"):
        provider, report = run(policy)
        bills = [a.mean_cost_rate for a in report.accounts.values()]
        violations = [a.violation_percent for a in report.accounts.values()]
        footprints = [a.mean_footprint_tiles for a in report.accounts.values()]
        reservations = [
            provider.admission.reservation_for(t).tiles
            for t in build_tenants(policy)
            if t.tenant_id in report.accounts
        ]
        print(f"=== every tenant runs {policy!r} ===")
        print(
            f"admitted {report.admitted}/{len(MIX)}, "
            f"fabric utilization {report.mean_utilization * 100:.0f}%, "
            f"defragmentations {report.defragmentations}"
        )
        print(
            f"mean tenant bill ${sum(bills) / len(bills):.4f}/hr, "
            f"mean violations {sum(violations) / len(violations):.1f}%"
        )
        print(
            f"mean occupied footprint {sum(footprints) / len(footprints):.1f} "
            f"tiles vs mean worst-case reservation "
            f"{sum(reservations) / len(reservations):.1f} tiles"
        )
        print()
    print(
        "The race fleet occupies its full reservation around the clock;\n"
        "the CASH fleet occupies a fraction of it and pays accordingly —\n"
        "capacity the provider can rent to additional customers."
    )


if __name__ == "__main__":
    main()
