#!/usr/bin/env python3
"""apache under an oscillating request stream: the Fig. 9 scenario.

The request rate swings between ~250 and ~1350 requests/second (a
condensed diurnal cycle); the QoS target is 110 Kcycles per request.
Race-to-idle must keep the worst-case virtual core reserved the whole
time; the CASH runtime resizes the core as load moves:

    python examples/webserver_autoscaling.py
"""

from repro.experiments.scenarios import apache_timeseries


def main() -> None:
    results = apache_timeseries(intervals=112)
    any_run = next(iter(results.values()))
    names = list(results)
    print(
        f"{'10Mcyc':>7}{'reqs/s':>8}"
        + "".join(f"{name + ' $/h':>24}{'perf':>6}" for name in names)
    )
    for i in range(0, any_run.num_intervals, 8):
        row = (
            f"{any_run.records[i].start_cycle / 1e7:>7.0f}"
            f"{any_run.records[i].request_rate:>8.0f}"
        )
        for name in names:
            record = results[name].records[i]
            row += f"{record.cost_rate:>24.4f}{record.true_qos:>6.2f}"
        print(row)
    print()
    for name, run in results.items():
        print(
            f"{name:<22} mean cost ${run.mean_cost_rate:.4f}/hr, "
            f"violations {run.violation_percent:.1f}%"
        )
    cash = results["CASH"]
    race = results["Race to Idle"]
    print(
        f"\nCASH saves {(1 - cash.mean_cost_rate / race.mean_cost_rate) * 100:.0f}% "
        "vs reserving the worst-case core (race-to-idle), because the "
        "peak rate is only\nbriefly realized while race pays for it "
        "around the clock."
    )


if __name__ == "__main__":
    main()
