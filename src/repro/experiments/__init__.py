"""The evaluation harness (Section VI).

:mod:`repro.experiments.harness` runs an allocator closed-loop against
an application on the fast SSim tier, producing per-interval records
(cost rate, delivered QoS, violations) and run-level aggregates.
:mod:`repro.experiments.scenarios` defines the canonical experiment of
each figure/table, and :mod:`repro.experiments.report` formats results
in the paper's rows.
"""

from repro.experiments.harness import (
    CASHAllocator,
    IntervalRecord,
    LatencySimulator,
    RunResult,
    ThroughputSimulator,
    qos_target_for,
)
from repro.experiments.scenarios import (
    AllocatorResult,
    compare_allocators,
    compare_architectures,
    run_app_with_allocator,
)

__all__ = [
    "CASHAllocator",
    "IntervalRecord",
    "LatencySimulator",
    "RunResult",
    "ThroughputSimulator",
    "qos_target_for",
    "AllocatorResult",
    "compare_allocators",
    "compare_architectures",
    "run_app_with_allocator",
]
