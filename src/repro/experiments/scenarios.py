"""Canonical experiment definitions for every figure and table.

Each function here builds exactly the comparison a paper artefact
reports:

* :func:`compare_allocators` — Fig. 7 / Table III: Optimal, Convex
  Optimization, Race-to-Idle, and CASH on the fine-grain architecture;
* :func:`compare_architectures` — Fig. 10: {coarse, fine} × {race,
  adaptive};
* :func:`apache_timeseries` — Fig. 9: the oscillating-load apache run;
* :func:`x264_timeseries` — Figs. 2 and 8: the x264 phase study;
* :func:`multitenant_grid` — the Sec. VI multi-tenant provider
  economics: a (policy-mix × overcommit × seed) grid of
  :class:`~repro.cloud.provider.CloudProvider` runs, sharded over the
  same process pool as the single-tenant sweeps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.cost import CostModel, DEFAULT_COST_MODEL
from repro.arch.vcore import ConfigurationSpace, VCoreConfig, DEFAULT_CONFIG_SPACE
from repro.baselines.convex import ConvexOptimizationAllocator, average_points
from repro.baselines.heterogeneous import (
    BIG_CONFIG,
    LITTLE_CONFIG,
    coarse_grain_configs,
)
from repro.baselines.oracle import OracleAllocator
from repro.baselines.race import RaceToIdleAllocator, worst_case_config
from repro.arch.reconfig import ReconfigCostModel
from repro.experiments.harness import (
    Allocator,
    CASHAllocator,
    LatencySimulator,
    RunResult,
    ThroughputSimulator,
    qos_target_for,
)
from repro.sim.perfmodel import PerformanceModel, DEFAULT_PERF_MODEL
from repro.workloads.apps import APP_NAMES, get_app
from repro.workloads.phase import PhasedApplication
from repro.workloads.requests import OscillatingLoad

APACHE_TARGET_LATENCY_CYCLES = 110_000.0
"""Fig. 9: 110 Kcycles per request, the smallest worst-case latency."""

DEFAULT_INTERVALS = 1000
"""The paper samples performance 1000 times per application."""

REALISTIC_RECONFIG_COSTS = ReconfigCostModel(dirty_fraction=0.25)
"""Section VI-A: the 8000-cycle L2 flush is the all-lines-dirty worst
case; "in practice we expect that we will not flush the whole cache as
only a small number of lines will be dirty"."""


@dataclass(frozen=True)
class AllocatorResult:
    """One cell of Fig. 7 / Fig. 10: cost and violations."""

    app_name: str
    allocator_name: str
    cost: float
    violation_percent: float

    @classmethod
    def from_run(cls, run: RunResult) -> "AllocatorResult":
        return cls(
            app_name=run.app_name,
            allocator_name=run.allocator_name,
            cost=run.cost_dollars,
            violation_percent=run.violation_percent,
        )


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean, as the paper aggregates costs."""
    if not values:
        raise ValueError("geometric mean of no values")
    if any(v <= 0 for v in values):
        raise ValueError(f"geometric mean needs positive values, got {values}")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def default_load_for(app: PhasedApplication) -> OscillatingLoad:
    """The condensed oscillating request stream of Fig. 9."""
    return OscillatingLoad(
        mean_rate=800.0,
        amplitude=550.0,
        period_cycles=3.2e8,
        floor=100.0,
    )


def latency_worst_case_config(
    sim: LatencySimulator,
    candidates: Optional[Sequence[VCoreConfig]] = None,
) -> VCoreConfig:
    """Cheapest config meeting the latency target at peak load, any phase."""
    pool = list(candidates) if candidates is not None else list(sim.space)
    peak = sim.load.peak_rate
    feasible = [
        config
        for config in pool
        if all(
            sim.qos_of(phase, config, peak) >= 1.0 for phase in sim.app.phases
        )
    ]
    if feasible:
        return min(feasible, key=lambda c: c.cost_rate(sim.cost_model))
    return max(
        pool,
        key=lambda c: min(
            sim.qos_of(phase, c, peak) for phase in sim.app.phases
        ),
    )


class _LatencyConvexAllocator(ConvexOptimizationAllocator):
    """Convex baseline rebased onto latency QoS points."""

    def __init__(
        self,
        sim: LatencySimulator,
        candidates: Optional[Sequence[VCoreConfig]] = None,
    ) -> None:
        # Build average-case points at the mean request rate, one per
        # configuration, mirroring the offline-profile construction.
        pool = list(candidates) if candidates is not None else list(sim.space)
        mean_rate = getattr(sim.load, "mean_rate", None)
        if mean_rate is None:
            rates = list(sim.load)
            mean_rate = sum(rates) / len(rates)
        from repro.runtime.optimizer import ConfigPoint

        weights = [phase.instructions for phase in sim.app.phases]
        total = sum(weights)
        points = []
        for config in pool:
            qos = sum(
                w * sim.qos_of(phase, config, mean_rate)
                for w, phase in zip(weights, sim.app.phases)
            ) / total
            points.append(
                ConfigPoint(
                    config=config,
                    speedup=qos,
                    cost_rate=config.cost_rate(sim.cost_model),
                )
            )
        # Bypass the parent constructor: install precomputed points.
        self.qos_goal = 1.0
        self.points = points
        base_point = min(points, key=lambda p: p.cost_rate)
        self._base_qos = max(base_point.speedup, 1e-9)
        from repro.runtime.controller import DeadbeatController

        self.controller = DeadbeatController(
            qos_goal=self.qos_goal, base_qos=self._base_qos
        )
        self._max_average_qos = max(p.speedup for p in points)


def make_throughput_simulator(
    app: PhasedApplication,
    model: PerformanceModel = DEFAULT_PERF_MODEL,
    space: ConfigurationSpace = DEFAULT_CONFIG_SPACE,
    seed: int = 0,
    interval_cycles: float = 2.5e5,
) -> ThroughputSimulator:
    """Simulator with the paper's QoS rule.

    The default control interval (250 Kcycles) gives ~60-90 samples per
    application phase, so the 1000-sample runs see every phase several
    times while phase *transitions* stay rare relative to samples — the
    regime the paper's violation percentages describe.
    """
    goal = qos_target_for(app, model, space)
    return ThroughputSimulator(
        app=app,
        qos_goal=goal,
        model=model,
        space=space,
        seed=seed,
        interval_cycles=interval_cycles,
        reconfig_costs=REALISTIC_RECONFIG_COSTS,
    )


def make_latency_simulator(
    app: PhasedApplication,
    model: PerformanceModel = DEFAULT_PERF_MODEL,
    space: ConfigurationSpace = DEFAULT_CONFIG_SPACE,
    seed: int = 0,
) -> LatencySimulator:
    return LatencySimulator(
        app=app,
        load=default_load_for(app),
        target_latency_cycles=APACHE_TARGET_LATENCY_CYCLES,
        model=model,
        space=space,
        seed=seed,
    )


def _build_allocator(
    kind: str,
    app: PhasedApplication,
    sim: ThroughputSimulator | LatencySimulator,
    model: PerformanceModel,
    space: ConfigurationSpace,
    candidates: Optional[Sequence[VCoreConfig]] = None,
    seed: int = 0,
) -> Allocator:
    """Instantiate one of the four allocator kinds for a simulator."""
    configs = list(candidates) if candidates is not None else list(space)
    if isinstance(sim, ThroughputSimulator):
        goal = sim.qos_goal
        if kind == "optimal":
            return OracleAllocator(qos_goal=goal)
        if kind == "race":
            config = worst_case_config(
                app, goal, model, space, sim.cost_model, candidates=configs
            )
            return RaceToIdleAllocator(
                config=config, qos_goal=goal, cost_model=sim.cost_model
            )
        if kind == "convex":
            return ConvexOptimizationAllocator(
                app=app,
                qos_goal=goal,
                model=model,
                space=space,
                cost_model=sim.cost_model,
                candidates=configs,
            )
        if kind == "cash":
            return CASHAllocator(configs=configs, qos_goal=goal, seed=seed)
    else:
        if kind == "optimal":
            return OracleAllocator(qos_goal=1.0)
        if kind == "race":
            config = latency_worst_case_config(sim, candidates=configs)
            return RaceToIdleAllocator(
                config=config,
                qos_goal=1.0,
                cost_model=sim.cost_model,
                can_idle=False,
            )
        if kind == "convex":
            return _LatencyConvexAllocator(sim, candidates=configs)
        if kind == "cash":
            # Server load drifts continuously (the oscillating request
            # rate), so per-configuration estimates lag by roughly the
            # per-interval load delta; a wider guard band absorbs that
            # tracking error.
            return CASHAllocator(
                configs=configs, qos_goal=1.0, guard_band=0.09, seed=seed
            )
    raise ValueError(f"unknown allocator kind {kind!r}")


def run_app_with_allocator(
    app_name: str,
    kind: str,
    intervals: int = DEFAULT_INTERVALS,
    model: PerformanceModel = DEFAULT_PERF_MODEL,
    space: ConfigurationSpace = DEFAULT_CONFIG_SPACE,
    candidates: Optional[Sequence[VCoreConfig]] = None,
    seed: int = 0,
) -> RunResult:
    """Run one (application, allocator) cell."""
    app = get_app(app_name)
    if app.qos_kind == "throughput":
        sim = make_throughput_simulator(app, model, space, seed=seed)
        allocator = _build_allocator(
            kind, app, sim, model, space, candidates=candidates, seed=seed
        )
        # Warm up for one full pass over the application so recorded
        # samples describe steady-state operation: the runtime has seen
        # every phase at least once (Section VI-C's measurements follow
        # the oracle construction, which is itself per-phase steady
        # state).
        pass_cycles = app.total_instructions / sim.qos_goal
        warmup = int(pass_cycles / sim.interval_cycles) + 1
        return sim.run(allocator, intervals=intervals, warmup_intervals=warmup)
    sim = make_latency_simulator(app, model, space, seed=seed)
    allocator = _build_allocator(
        kind, app, sim, model, space, candidates=candidates, seed=seed
    )
    return sim.run(allocator, intervals=intervals)


ALLOCATOR_KINDS: Tuple[Tuple[str, str], ...] = (
    ("optimal", "Optimal"),
    ("convex", "Convex Optimization"),
    ("race", "Race to Idle"),
    ("cash", "CASH"),
)


def compare_allocators(
    app_names: Optional[Sequence[str]] = None,
    intervals: int = DEFAULT_INTERVALS,
    seed: int = 0,
    jobs: Optional[int] = 1,
) -> Dict[str, Dict[str, RunResult]]:
    """Fig. 7 / Table III: all four allocators on every application.

    Returns ``results[allocator_name][app_name]``.  Every (app,
    allocator) cell is independent and explicitly seeded, so ``jobs``
    only changes wall-clock time, never the results.
    """
    # Imported here: stats imports this module for run_app_with_allocator.
    from repro.experiments.stats import CellSpec, run_cells

    names = list(app_names) if app_names is not None else list(APP_NAMES)
    specs = [
        CellSpec(app_name=app_name, kind=kind, intervals=intervals, seed=seed)
        for app_name in names
        for kind, _ in ALLOCATOR_KINDS
    ]
    cell_results = iter(run_cells(specs, jobs=jobs))
    results: Dict[str, Dict[str, RunResult]] = {
        label: {} for _, label in ALLOCATOR_KINDS
    }
    for app_name in names:
        for _, label in ALLOCATOR_KINDS:
            results[label][app_name] = next(cell_results)
    return results


ARCHITECTURE_KINDS: Tuple[Tuple[str, str, str], ...] = (
    ("coarse", "race", "CoarseGrain race"),
    ("coarse", "cash", "CoarseGrain adapt"),
    ("fine", "race", "FineGrain race"),
    ("fine", "cash", "CASH"),
)


def compare_architectures(
    app_names: Optional[Sequence[str]] = None,
    intervals: int = DEFAULT_INTERVALS,
    seed: int = 0,
    jobs: Optional[int] = 1,
) -> Dict[str, Dict[str, RunResult]]:
    """Fig. 10: coarse vs fine grain × race vs adaptive.

    The coarse-grain architecture offers only the big (8S/4MB) and
    little (1S/128KB) cores; its race-to-idle variant cannot switch
    cores at all and must race the big one.
    """
    from repro.experiments.stats import CellSpec, run_cells

    names = list(app_names) if app_names is not None else list(APP_NAMES)
    coarse = tuple(coarse_grain_configs())
    specs = []
    for app_name in names:
        for grain, kind, _ in ARCHITECTURE_KINDS:
            candidates = coarse if grain == "coarse" else None
            if grain == "coarse" and kind == "race":
                # A fixed heterogeneous machine races the big core only.
                candidates = (BIG_CONFIG,)
            specs.append(
                CellSpec(
                    app_name=app_name,
                    kind=kind,
                    intervals=intervals,
                    seed=seed,
                    candidates=candidates,
                )
            )
    cell_results = iter(run_cells(specs, jobs=jobs))
    results: Dict[str, Dict[str, RunResult]] = {
        label: {} for _, _, label in ARCHITECTURE_KINDS
    }
    for app_name in names:
        for _, _, label in ARCHITECTURE_KINDS:
            results[label][app_name] = next(cell_results)
    return results


def x264_timeseries(
    intervals: int = 220,
    kinds: Sequence[str] = ("convex", "race", "cash"),
    seed: int = 0,
) -> Dict[str, RunResult]:
    """Figs. 2 and 8: per-interval cost rate and normalized performance.

    220 one-Mcycle intervals ≈ one full pass over the 10 x264 phases
    (the figures' 0–180 Mcycle x-axis).
    """
    labels = dict(ALLOCATOR_KINDS)
    return {
        labels[k]: run_app_with_allocator("x264", k, intervals=intervals, seed=seed)
        for k in kinds
    }


PROVIDER_APP_MIX: Tuple[str, ...] = (
    "bzip",
    "hmmer",
    "sjeng",
    "lib",
    "omnetpp",
    "ferret",
)
"""The customer mix every provider cell cycles through (all throughput
apps, so per-tenant QoS goals come from the paper's rule)."""

PROVIDER_POLICY_MIXES: Tuple[str, ...] = ("race", "cash", "half")
"""Fleet policies: every tenant racing its reservation, every tenant
running CASH, or an alternating half-and-half mix."""


def provider_mix(
    policy_mix: str, tenants: int = 12
) -> Tuple[Tuple[str, str], ...]:
    """(app, policy) pairs for one fleet of ``tenants`` customers."""
    if policy_mix not in PROVIDER_POLICY_MIXES:
        raise ValueError(
            f"policy_mix must be one of {PROVIDER_POLICY_MIXES}, "
            f"got {policy_mix!r}"
        )
    if tenants <= 0:
        raise ValueError(f"tenants must be positive, got {tenants}")
    pairs = []
    for index in range(tenants):
        app_name = PROVIDER_APP_MIX[index % len(PROVIDER_APP_MIX)]
        if policy_mix == "half":
            policy = "cash" if index % 2 == 0 else "race"
        else:
            policy = policy_mix
        pairs.append((app_name, policy))
    return tuple(pairs)


def warm_app_surfaces(
    app_name: str,
    slice_counts: Optional[Sequence[int]] = None,
    l2_sizes_kb: Optional[Sequence[int]] = None,
    model: PerformanceModel = DEFAULT_PERF_MODEL,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> Tuple[Tuple[str, str, str], ...]:
    """Warm every phase surface of one application into the shared tiers.

    The cell body behind :class:`~repro.experiments.stats.WarmCellSpec`
    and ``repro cache warm``: publishes each phase's speedup grid and
    default-idle hull through
    :func:`~repro.sim.optables.ensure_surface`, constructing no
    ``ConfigPoint`` when the surface is already shared.  ``None`` grid
    axes mean the default configuration space.  Returns one
    ``(phase_name, digest, fingerprint)`` triple per phase — the
    fingerprints are bit-stable across cold and warm passes, which is
    what the warm-sweep benchmark asserts.
    """
    from repro.sim.optables import ensure_surface

    space = DEFAULT_CONFIG_SPACE
    if slice_counts is not None or l2_sizes_kb is not None:
        space = ConfigurationSpace(
            slice_counts=tuple(
                slice_counts
                if slice_counts is not None
                else DEFAULT_CONFIG_SPACE.slice_counts
            ),
            l2_sizes_kb=tuple(
                l2_sizes_kb
                if l2_sizes_kb is not None
                else DEFAULT_CONFIG_SPACE.l2_sizes_kb
            ),
        )
    app = get_app(app_name)
    surfaces = []
    for phase in app.phases:
        digest, fingerprint = ensure_surface(phase, model, space, cost_model)
        surfaces.append((phase.name, digest, fingerprint))
    return tuple(surfaces)


def run_provider_mix(
    mix: Sequence[Tuple[str, str]],
    intervals: int = 300,
    seed: int = 0,
    overcommit: float = 1.0,
    fabric_width: int = 16,
    fabric_height: int = 16,
    arrival_stride: int = 5,
    model: PerformanceModel = DEFAULT_PERF_MODEL,
    space: ConfigurationSpace = DEFAULT_CONFIG_SPACE,
):
    """Run one multi-tenant provider cell; returns a ProviderReport.

    Tenant ``i`` runs ``mix[i]`` and arrives at interval
    ``i * arrival_stride`` — everything is derived from the arguments,
    so a cell is a pure function of its spec and parallel runs
    reproduce serial ones exactly.
    """
    from repro.arch.fabric import Fabric
    from repro.cloud.provider import CloudProvider
    from repro.cloud.tenant import Tenant

    tenants = []
    for index, (app_name, policy) in enumerate(mix):
        app = get_app(app_name)
        tenants.append(
            Tenant(
                tenant_id=index,
                app=app,
                qos_goal=qos_target_for(app, model, space),
                policy=policy,
                arrival_interval=index * arrival_stride,
            )
        )
    provider = CloudProvider(
        fabric=Fabric(width=fabric_width, height=fabric_height),
        model=model,
        space=space,
        overcommit=overcommit,
        seed=seed,
    )
    return provider.run(tenants, intervals=intervals)


def multitenant_grid(
    policy_mixes: Sequence[str] = PROVIDER_POLICY_MIXES,
    overcommits: Sequence[float] = (1.0, 1.5),
    seeds: Sequence[int] = (0,),
    tenants: int = 12,
    intervals: int = 300,
    fabric_width: int = 16,
    fabric_height: int = 16,
    jobs: Optional[int] = 1,
):
    """The provider-economics grid: (policy-mix × overcommit × seed).

    Returns ``(reports, timing)`` where ``reports`` maps
    ``(policy_mix, overcommit, seed)`` to its
    :class:`~repro.cloud.provider.ProviderReport` and ``timing`` is a
    JSON-ready wall-clock record for ``BENCH_CLOUD.json``.  Cells fan
    out over the same process pool as the single-tenant sweeps; results
    are collected in spec order, so ``jobs`` never changes any report.
    """
    import time

    from repro.experiments.stats import (
        ProviderCellSpec,
        default_jobs,
        run_cells,
    )

    if jobs is None:
        jobs = default_jobs()
    specs = [
        ProviderCellSpec(
            mix=provider_mix(policy_mix, tenants=tenants),
            intervals=intervals,
            seed=seed,
            overcommit=overcommit,
            fabric_width=fabric_width,
            fabric_height=fabric_height,
        )
        for policy_mix in policy_mixes
        for overcommit in overcommits
        for seed in seeds
    ]
    start = time.perf_counter()
    results = run_cells(specs, jobs=jobs)
    elapsed = time.perf_counter() - start
    reports = {}
    cursor = iter(results)
    for policy_mix in policy_mixes:
        for overcommit in overcommits:
            for seed in seeds:
                reports[(policy_mix, overcommit, seed)] = next(cursor)
    timing = {
        "cells": len(specs),
        "tenants": tenants,
        "intervals": intervals,
        "fabric": f"{fabric_width}x{fabric_height}",
        "jobs": jobs,
        "wall_seconds": round(elapsed, 4),
        "cells_per_second": round(len(specs) / elapsed, 4) if elapsed else None,
        "policy_mixes": list(policy_mixes),
        "overcommits": list(overcommits),
        "seeds": list(seeds),
    }
    from repro.sim.optables import optable_cache_stats

    timing["optable_store"] = optable_cache_stats()
    return reports, timing


def run_service_cell(spec):
    """Run one event-driven service cell from its frozen spec.

    A cell is a pure function of the spec (traffic and noise streams
    are seed-derived), so sharded grids reproduce serial ones exactly
    and FAST on/off selects the event-heap engine vs its dense scalar
    twin without changing the report.
    """
    from repro.arch.fabric import Fabric
    from repro.cloud.service import ServiceEngine
    from repro.cloud.traffic import generate_traffic

    scenario = generate_traffic(spec.traffic)
    engine = ServiceEngine(
        scenario,
        fabric=Fabric(width=spec.fabric_width, height=spec.fabric_height),
        overcommit=spec.overcommit,
        converged_after=spec.converged_after,
        reprobe_every=spec.reprobe_every,
    )
    return engine.run()


def service_grid(
    tenant_counts: Sequence[int] = (256, 1024),
    horizon: int = 2000,
    seeds: Sequence[int] = (0,),
    overcommit: float = 2.0,
    fabric_width: int = 24,
    fabric_height: int = 24,
    activity: float = 0.15,
    jobs: Optional[int] = 1,
):
    """The always-on service grid: (tenant count × seed) churn cells.

    Returns ``(reports, timing)`` where ``reports`` maps
    ``(tenants, seed)`` to its
    :class:`~repro.cloud.service.ServiceReport` and ``timing`` is a
    JSON-ready record for ``BENCH_CLOUD.json`` — its headline rate is
    **tenant-intervals/second**, the dense-equivalent work the event
    engine retires per wall-clock second.
    """
    import time

    from repro.cloud.traffic import TrafficSpec
    from repro.experiments.stats import (
        ServiceCellSpec,
        default_jobs,
        run_cells,
    )

    if jobs is None:
        jobs = default_jobs()
    specs = [
        ServiceCellSpec(
            traffic=TrafficSpec(
                tenants=tenants,
                horizon=horizon,
                seed=seed,
                activity=activity,
                lifetime_min=max(horizon / 16.0, 1.0),
                diurnal_period=max(horizon // 2, 1),
                diurnal_amplitude=0.5,
                flash_crowds=2,
                flash_duration=max(horizon // 50, 1),
                flash_boost=4.0,
            ),
            overcommit=overcommit,
            fabric_width=fabric_width,
            fabric_height=fabric_height,
        )
        for tenants in tenant_counts
        for seed in seeds
    ]
    start = time.perf_counter()
    results = run_cells(specs, jobs=jobs)
    elapsed = time.perf_counter() - start
    reports = {}
    cursor = iter(results)
    for tenants in tenant_counts:
        for seed in seeds:
            reports[(tenants, seed)] = next(cursor)
    tenant_intervals = sum(report.tenant_intervals for report in results)
    active_steps = sum(report.active_steps for report in results)
    timing = {
        "cells": len(specs),
        "tenant_counts": list(tenant_counts),
        "horizon": horizon,
        "fabric": f"{fabric_width}x{fabric_height}",
        "jobs": jobs,
        "wall_seconds": round(elapsed, 4),
        "tenant_intervals": tenant_intervals,
        "active_steps": active_steps,
        "tenant_intervals_per_second": (
            round(tenant_intervals / elapsed, 2) if elapsed else None
        ),
        "seeds": list(seeds),
    }
    from repro.sim.optables import optable_cache_stats

    timing["optable_store"] = optable_cache_stats()
    return reports, timing


TIER_APPS: Tuple[str, ...] = ("x264", "apache", "mcf")
"""Applications covered by the default tier-agreement sweep: the three
workloads the paper leans on for its mechanism studies (the x264 phase
study, the apache latency runs, the memory-bound mcf)."""

TIER_CONFIGS: Tuple[VCoreConfig, ...] = (
    VCoreConfig(slices=1, l2_kb=64),
    VCoreConfig(slices=2, l2_kb=128),
    VCoreConfig(slices=4, l2_kb=256),
    VCoreConfig(slices=8, l2_kb=512),
)
"""Virtual cores the tier-agreement sweep measures: the 1..8-Slice
scaling ladder with proportionally composed L2s."""


def run_tier_cell(
    app_name: str,
    phase_index: int,
    config: VCoreConfig,
    instructions: int = 4000,
    seed: int = 0,
):
    """Run one tier-agreement cell: cycle tier vs fast tier for one
    (application phase, virtual core) pair.

    Returns the :class:`~repro.sim.ssim.CycleResult`, which carries the
    measured pipeline run and the analytic prediction side by side.  A
    cell is a pure function of its arguments (the trace seed is
    explicit), so sharded grids reproduce serial ones exactly.
    """
    from repro.sim.ssim import SSim

    app = get_app(app_name)
    if not 0 <= phase_index < len(app.phases):
        raise ValueError(
            f"{app_name} has {len(app.phases)} phases, "
            f"got phase_index {phase_index}"
        )
    phase = app.phases[phase_index]
    return SSim().run_cycle_accurate(
        phase, config, instructions=instructions, seed=seed
    )


def run_tier_batch(cells: Sequence) -> List:
    """Run a slab of tier cells through the struct-of-arrays batch tier.

    ``cells`` are :class:`~repro.experiments.stats.TierCellSpec`-shaped
    records (``app_name``, ``phase_index``, ``config``,
    ``instructions``, ``seed``).  Cells sharing one (phase,
    instructions, seed) generate and encode their trace exactly once —
    the normal sweep shape puts the configuration innermost, so a
    four-config ladder costs one trace — then every cell advances in
    lockstep through :func:`repro.sim.batchpipe.run_batch`.  Returns
    one :class:`~repro.sim.ssim.CycleResult` per cell in order, each
    bit-identical to what :func:`run_tier_cell` produces for the same
    spec.
    """
    from repro.sim.batchpipe import BatchCell, run_batch
    from repro.sim.ssim import CycleResult, SSim
    from repro.sim.trace import TraceGenerator

    cells = list(cells)
    ssim = SSim()
    traces: Dict[tuple, object] = {}
    batch = []
    phases = []
    for spec in cells:
        app = get_app(spec.app_name)
        if not 0 <= spec.phase_index < len(app.phases):
            raise ValueError(
                f"{spec.app_name} has {len(app.phases)} phases, "
                f"got phase_index {spec.phase_index}"
            )
        phase = app.phases[spec.phase_index]
        phases.append(phase)
        key = (
            spec.app_name,
            spec.phase_index,
            spec.instructions,
            spec.seed,
        )
        trace = traces.get(key)
        if trace is None:
            generator = TraceGenerator(
                phase,
                ssim.slice_params.physical_registers,
                seed=spec.seed,
            )
            trace = generator.generate_arrays(spec.instructions)
            traces[key] = trace
        batch.append(BatchCell(trace=trace, config=spec.config))
    outcomes = run_batch(batch, ssim.slice_params, ssim.cache_params)
    return [
        CycleResult(
            pipeline=outcome.result,
            predicted_ipc=ssim.perf_model.ipc(phase, spec.config),
        )
        for spec, phase, outcome in zip(cells, phases, outcomes)
    ]


def tier_agreement_grid(
    app_names: Sequence[str] = TIER_APPS,
    configs: Sequence[VCoreConfig] = TIER_CONFIGS,
    instructions: int = 4000,
    seed: int = 0,
    jobs: Optional[int] = 1,
    batch: bool = True,
):
    """The tier-agreement sweep: every (app phase × VCoreConfig) cell.

    Runs the cycle tier on a synthetic trace of each phase on each
    virtual core and pairs it with the fast tier's IPC prediction —
    the full-grid version of :meth:`~repro.sim.ssim.SSim.compare_tiers`
    that the paper's validation argument rests on.  Returns
    ``(results, timing)`` where ``results`` maps ``(app_name,
    phase_index, config)`` to its :class:`~repro.sim.ssim.CycleResult`
    and ``timing`` is a JSON-ready wall-clock record for
    ``BENCH_CYCLE.json``.  Cells shard over the same process pool as
    the other sweeps and come back in spec order, so ``jobs`` never
    changes any result.

    ``batch`` (the default) folds the cells into per-worker slabs for
    the struct-of-arrays batch tier (``repro figure tiers --batch``);
    ``batch=False`` dispatches every cell singly through the object
    pipeline path.  Either way the per-cell results are bit-identical
    — the flag only moves the wall clock.
    """
    import time

    from repro.experiments.stats import (
        TierCellSpec,
        default_jobs,
        run_cells,
    )

    if jobs is None:
        jobs = default_jobs()
    names = list(app_names)
    config_list = list(configs)
    keys = [
        (name, phase_index, config)
        for name in names
        for phase_index in range(len(get_app(name).phases))
        for config in config_list
    ]
    specs = [
        TierCellSpec(
            app_name=name,
            phase_index=phase_index,
            config=config,
            instructions=instructions,
            seed=seed,
        )
        for name, phase_index, config in keys
    ]
    start = time.perf_counter()
    results = run_cells(specs, jobs=jobs, tier_batch=batch)
    elapsed = time.perf_counter() - start
    reports = dict(zip(keys, results))
    timing = {
        "cells": len(specs),
        "instructions": instructions,
        "jobs": jobs,
        "batch": batch,
        "wall_seconds": round(elapsed, 4),
        "cells_per_second": round(len(specs) / elapsed, 4) if elapsed else None,
        "apps": names,
        "configs": [str(config) for config in config_list],
        "seed": seed,
    }
    return reports, timing


def apache_timeseries(
    intervals: int = 112,
    kinds: Sequence[str] = ("convex", "race", "cash"),
    seed: int = 0,
) -> Dict[str, RunResult]:
    """Fig. 9: apache under the oscillating request stream.

    112 ten-Mcycle intervals match the figure's 1.12 Gcycle span
    (three and a half oscillation periods).
    """
    labels = dict(ALLOCATOR_KINDS)
    return {
        labels[k]: run_app_with_allocator(
            "apache", k, intervals=intervals, seed=seed
        )
        for k in kinds
    }
