"""Export figure/table data as tab-separated files.

Each function regenerates one paper artefact and writes the plottable
series to a ``.tsv`` under an output directory — the file a plotting
script (or a spreadsheet) would consume to redraw the paper's charts.
Used by the ``python -m repro export`` CLI command.
"""

from __future__ import annotations

import os
from typing import Dict, List, Mapping, Optional, Sequence

from repro.arch.vcore import DEFAULT_CONFIG_SPACE
from repro.experiments.harness import RunResult
from repro.experiments.scenarios import (
    apache_timeseries,
    compare_allocators,
    compare_architectures,
    geometric_mean,
    x264_timeseries,
)
from repro.sim.perfmodel import DEFAULT_PERF_MODEL
from repro.workloads.apps import make_x264


def _write_rows(path: str, header: Sequence[str], rows: Sequence[Sequence]) -> str:
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w") as handle:
        handle.write("\t".join(str(h) for h in header) + "\n")
        for row in rows:
            handle.write("\t".join(str(value) for value in row) + "\n")
    return path


def export_fig1(outdir: str) -> List[str]:
    """Per-phase IPC grids for x264 (one file per phase + a summary)."""
    app = make_x264()
    space = DEFAULT_CONFIG_SPACE
    paths = []
    summary_rows = []
    for index, phase in enumerate(app.phases, start=1):
        grid = DEFAULT_PERF_MODEL.ipc_grid(phase, space)
        rows = []
        for i, slices in enumerate(space.slice_counts):
            for j, l2_kb in enumerate(space.l2_sizes_kb):
                rows.append((slices, l2_kb, f"{grid[i, j]:.5f}"))
        paths.append(
            _write_rows(
                os.path.join(outdir, f"fig1_phase{index:02d}.tsv"),
                ("slices", "l2_kb", "ipc"),
                rows,
            )
        )
        best, best_ipc = DEFAULT_PERF_MODEL.best_config(phase, space)
        maxima = DEFAULT_PERF_MODEL.local_maxima(phase, space)
        summary_rows.append(
            (
                index,
                str(best),
                f"{best_ipc:.4f}",
                len([c for c in maxima if c != best]),
            )
        )
    paths.append(
        _write_rows(
            os.path.join(outdir, "fig1_summary.tsv"),
            ("phase", "optimum", "ipc", "distinct_local_optima"),
            summary_rows,
        )
    )
    return paths


def _export_timeseries(
    results: Mapping[str, RunResult], path: str, cycle_scale: float
) -> str:
    names = list(results)
    any_run = next(iter(results.values()))
    header = ["cycles"] + [
        f"{name.replace(' ', '_')}_{column}"
        for name in names
        for column in ("cost_rate", "normalized_perf")
    ]
    rows = []
    series = {name: results[name].normalized_performance_series() for name in names}
    for i in range(any_run.num_intervals):
        row = [f"{any_run.records[i].start_cycle / cycle_scale:.3f}"]
        for name in names:
            run = results[name]
            index = min(i, run.num_intervals - 1)
            row.append(f"{run.records[index].cost_rate:.6f}")
            row.append(f"{series[name][index]:.4f}")
        rows.append(row)
    return _write_rows(path, header, rows)


def export_fig2_fig8(outdir: str, intervals: int = 900) -> List[str]:
    results = x264_timeseries(intervals=intervals)
    return [
        _export_timeseries(
            results, os.path.join(outdir, "fig8_x264_timeseries.tsv"), 1e6
        )
    ]


def export_fig9(outdir: str, intervals: int = 448) -> List[str]:
    results = apache_timeseries(intervals=intervals)
    path = os.path.join(outdir, "fig9_apache_timeseries.tsv")
    names = list(results)
    any_run = next(iter(results.values()))
    header = ["ten_mcycles", "request_rate"] + [
        f"{name.replace(' ', '_')}_{column}"
        for name in names
        for column in ("cost_rate", "qos")
    ]
    rows = []
    for i in range(any_run.num_intervals):
        row = [
            f"{any_run.records[i].start_cycle / 1e7:.2f}",
            f"{any_run.records[i].request_rate:.0f}",
        ]
        for name in names:
            record = results[name].records[i]
            row.append(f"{record.cost_rate:.6f}")
            row.append(f"{record.true_qos:.4f}")
        rows.append(row)
    return [_write_rows(path, header, rows)]


def _export_per_app(
    results: Mapping[str, Mapping[str, RunResult]], path: str
) -> str:
    names = list(results)
    apps = sorted({app for runs in results.values() for app in runs})
    header = ["app"] + [
        f"{name.replace(' ', '_')}_{column}"
        for name in names
        for column in ("cost", "violation_pct")
    ]
    rows = []
    for app in apps:
        row = [app]
        for name in names:
            run = results[name][app]
            row.append(f"{run.cost_dollars:.6f}")
            row.append(f"{run.violation_percent:.2f}")
        rows.append(row)
    geo_row = ["geomean"]
    for name in names:
        geo = geometric_mean([r.cost_dollars for r in results[name].values()])
        mean_viol = sum(
            r.violation_percent for r in results[name].values()
        ) / len(results[name])
        geo_row.append(f"{geo:.6f}")
        geo_row.append(f"{mean_viol:.2f}")
    rows.append(geo_row)
    return _write_rows(path, header, rows)


def export_fig7_tab3(outdir: str, intervals: int = 1000) -> List[str]:
    results = compare_allocators(intervals=intervals)
    return [
        _export_per_app(results, os.path.join(outdir, "fig7_tab3_allocators.tsv"))
    ]


def export_fig10(outdir: str, intervals: int = 1000) -> List[str]:
    results = compare_architectures(intervals=intervals)
    return [
        _export_per_app(results, os.path.join(outdir, "fig10_architectures.tsv"))
    ]


EXPORTERS = {
    "fig1": export_fig1,
    "fig2": export_fig2_fig8,
    "fig8": export_fig2_fig8,
    "fig9": export_fig9,
    "fig7": export_fig7_tab3,
    "tab3": export_fig7_tab3,
    "fig10": export_fig10,
}


def export_all(outdir: str) -> List[str]:
    """Regenerate every artefact's data files."""
    paths: List[str] = []
    for name in ("fig1", "fig8", "fig9", "fig7", "fig10"):
        paths.extend(EXPORTERS[name](outdir))
    return paths
