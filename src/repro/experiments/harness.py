"""Closed-loop evaluation harness on the fast SSim tier.

The harness advances an application interval by interval.  Each
interval it asks the allocator for a schedule (one or two configuration
legs plus idle), executes the legs against the analytic performance
model — crossing phase boundaries exactly, charging reconfiguration
stalls, and accruing rental cost — then reports the measured QoS (with
measurement noise) back to the allocator.  This mirrors the paper's
methodology of sampling performance 1000 times per application and
recording total cost and QoS violations (Section VI-C).

Cost convention: the paper's "Cost ($)" magnitudes (Table III, Figs. 7
and 10) correspond to one hour of sustained execution at the measured
average $/hour rate, so :attr:`RunResult.cost_dollars` is the
time-weighted mean cost rate × 1 hour.
"""

from __future__ import annotations

import math
import random
from bisect import bisect_right
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Protocol, Sequence, Tuple

from repro import perf
from repro.arch.cost import CostModel, DEFAULT_COST_MODEL
from repro.arch.reconfig import ReconfigCostModel, DEFAULT_RECONFIG_COSTS
from repro.arch.vcore import ConfigurationSpace, VCoreConfig, DEFAULT_CONFIG_SPACE
from repro.runtime.cash import (
    CASHRuntime,
    LegObservation,
    QoSMeasurement,
    RuntimeDecision,
)
from repro.runtime.optimizer import ConfigPoint, Schedule
from repro.sim.optables import OperatingPointTable, operating_point_table
from repro.sim.perfmodel import PerformanceModel, DEFAULT_PERF_MODEL
from repro.workloads.phase import Phase, PhasedApplication
from repro.workloads.requests import OscillatingLoad, RequestTrace


class Allocator(Protocol):
    """What the harness requires of a resource allocator."""

    name: str

    def decide(
        self,
        measurement: Optional[QoSMeasurement],
        true_points: Sequence[ConfigPoint],
    ) -> Schedule:
        """Return the schedule for the next interval.

        ``measurement`` is the previous interval's observed QoS (None on
        the first interval).  ``true_points`` are the ground-truth
        operating points for the *current* conditions; only omniscient
        allocators (oracle, race-to-idle) may use them — feedback
        allocators must rely on ``measurement`` alone.
        """


def qos_target_for(
    app: PhasedApplication,
    model: PerformanceModel = DEFAULT_PERF_MODEL,
    space: ConfigurationSpace = DEFAULT_CONFIG_SPACE,
    margin: float = 0.88,
) -> float:
    """The paper's throughput QoS rule (Section VI-C).

    "The highest worst case IPC": the largest IPC achievable in every
    phase — i.e. the worst phase's best IPC — backed off by ``margin``
    so that a non-trivial set of configurations can meet it.
    """
    if not 0.0 < margin <= 1.0:
        raise ValueError(f"margin must be in (0, 1], got {margin}")
    if perf.FAST:
        # max_qos over the memoized table is the same set of floats the
        # scalar double loop maximizes (the vectorized kernel is
        # bit-identical), so the target is unchanged.
        worst_case_best = min(
            operating_point_table(phase, model, space).max_qos
            for phase in app.phases
        )
    else:
        worst_case_best = min(
            max(model.ipc(phase, config) for config in space)
            for phase in app.phases
        )
    return worst_case_best * margin


@dataclass(frozen=True)
class IntervalRecord:
    """Everything observed in one control interval."""

    index: int
    start_cycle: float
    phase_name: str
    schedule: Schedule
    true_qos: float
    measured_qos: float
    active_qos: float
    cost_rate: float
    violated: bool
    reconfig_cycles: int
    cycles: float = 0.0
    request_rate: float = 0.0

    @property
    def configs(self) -> List[VCoreConfig]:
        return self.schedule.configs()


@dataclass
class RunResult:
    """Aggregate outcome of one allocator on one application."""

    app_name: str
    allocator_name: str
    qos_goal: float
    interval_cycles: float
    records: List[IntervalRecord]

    @property
    def num_intervals(self) -> int:
        return len(self.records)

    @property
    def mean_cost_rate(self) -> float:
        """Time-weighted average $/hour over the run."""
        if not self.records:
            return 0.0
        return sum(r.cost_rate for r in self.records) / len(self.records)

    @property
    def cost_dollars(self) -> float:
        """Cost of one hour of sustained execution (paper's convention)."""
        return self.mean_cost_rate

    @property
    def violation_rate(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.violated for r in self.records) / len(self.records)

    @property
    def violation_percent(self) -> float:
        return 100.0 * self.violation_rate

    def cost_rate_series(self) -> List[float]:
        return [r.cost_rate for r in self.records]

    def normalized_performance_series(self) -> List[float]:
        """Delivered QoS normalized to the goal, per interval.

        Race-to-idle intervals report their *active* (busy-time) QoS,
        matching how Fig. 2 plots race-to-idle above the QoS line.
        """
        return [
            (r.active_qos if r.active_qos > 0 else r.true_qos) / self.qos_goal
            for r in self.records
        ]

    def time_axis_mcycles(self) -> List[float]:
        return [r.start_cycle / 1e6 for r in self.records]


class _PhaseWalker:
    """Advances an application's instruction stream through its phases."""

    def __init__(self, app: PhasedApplication) -> None:
        self.app = app
        self.offset = 0.0  # instructions into the (wrapping) app
        # Cumulative phase end offsets, accumulated in the same
        # left-to-right order as the scalar scan so the bisect fast path
        # sees bit-identical boundary values.
        ends: List[float] = []
        cursor = 0.0
        for phase in app.phases:
            ends.append(cursor + phase.instructions)
            cursor += phase.instructions
        self._phase_ends = ends

    def current_phase(self) -> Tuple[int, Phase]:
        return self.app.phase_at_instruction(self.offset)

    def run_cycles(
        self,
        cycles: float,
        ipc_of: Callable[[Phase], float],
        stop_at_boundary: bool = False,
    ) -> Tuple[float, float, bool]:
        """Execute up to ``cycles``; returns (instructions, cycles_used,
        crossed_boundary).

        Crosses phase boundaries exactly: within a phase the IPC is
        constant, so the walker advances to whichever comes first — the
        end of the leg or the end of the phase.  With
        ``stop_at_boundary`` the walker returns at the first phase
        boundary, letting the harness end the control interval there
        (so no sampling interval mixes two phases).
        """
        if cycles < 0:
            raise ValueError(f"cycles must be non-negative, got {cycles}")
        executed = 0.0
        used = 0.0
        remaining = cycles
        guard = 0
        while remaining > 1e-9:
            guard += 1
            if guard > 10_000:  # pragma: no cover - defensive
                raise RuntimeError("phase walker failed to converge")
            _, phase = self.current_phase()
            ipc = ipc_of(phase)
            if ipc <= 0:
                used += remaining
                remaining = 0.0
                break
            instructions_left = self._instructions_left_in_phase()
            cycles_to_boundary = instructions_left / ipc
            step = min(remaining, cycles_to_boundary)
            self.offset += ipc * step
            executed += ipc * step
            used += step
            remaining -= step
            if stop_at_boundary and step == cycles_to_boundary:
                # Nudge across the boundary so the next query sees the
                # new phase, then report the crossing.
                self.offset += 1e-6
                return executed, used, True
        return executed, used, False

    def _instructions_left_in_phase(self) -> float:
        total = self.app.total_instructions
        offset = self.offset % total
        if perf.FAST:
            index = bisect_right(self._phase_ends, offset)
            if index < len(self._phase_ends):
                return self._phase_ends[index] - offset
            return self.app.phases[-1].instructions
        cursor = 0.0
        for phase in self.app.phases:
            if offset < cursor + phase.instructions:
                return cursor + phase.instructions - offset
            cursor += phase.instructions
        return self.app.phases[-1].instructions


class ThroughputSimulator:
    """Closed-loop simulation for throughput-QoS applications."""

    def __init__(
        self,
        app: PhasedApplication,
        qos_goal: float,
        model: PerformanceModel = DEFAULT_PERF_MODEL,
        space: ConfigurationSpace = DEFAULT_CONFIG_SPACE,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        reconfig_costs: ReconfigCostModel = DEFAULT_RECONFIG_COSTS,
        interval_cycles: float = 1.0e6,
        noise_std_frac: float = 0.02,
        violation_margin: float = 0.03,
        seed: int = 0,
    ) -> None:
        if app.qos_kind != "throughput":
            raise ValueError(
                f"{app.name} is a {app.qos_kind} application; use "
                "LatencySimulator"
            )
        if qos_goal <= 0:
            raise ValueError(f"qos_goal must be positive, got {qos_goal}")
        if interval_cycles <= 0:
            raise ValueError(
                f"interval_cycles must be positive, got {interval_cycles}"
            )
        if noise_std_frac < 0:
            raise ValueError(
                f"noise_std_frac must be non-negative, got {noise_std_frac}"
            )
        if not 0.0 <= violation_margin < 1.0:
            raise ValueError(
                f"violation_margin must be in [0, 1), got {violation_margin}"
            )
        self.app = app
        self.qos_goal = qos_goal
        self.model = model
        self.space = space
        self.cost_model = cost_model
        self.reconfig_costs = reconfig_costs
        self.interval_cycles = interval_cycles
        self.noise_std_frac = noise_std_frac
        self.violation_margin = violation_margin
        self.seed = seed
        self._points_cache: Dict[str, Sequence[ConfigPoint]] = {}

    def true_points(self, phase: Phase) -> Sequence[ConfigPoint]:
        cached = self._points_cache.get(phase.name)
        if cached is not None:
            return cached
        if perf.FAST:
            # The shared table carries the same points (bit-identical
            # speedups, same order) plus O(1) IPC lookup and a memoized
            # envelope for the oracle's per-interval LP.
            points: Sequence[ConfigPoint] = operating_point_table(
                phase, self.model, self.space, self.cost_model
            )
        else:
            points = [
                ConfigPoint(
                    config=config,
                    speedup=self.model.ipc(phase, config),
                    cost_rate=config.cost_rate(self.cost_model),
                )
                for config in self.space
            ]
        self._points_cache[phase.name] = points
        return points

    def _ipc_of(self, phase: Phase, config: VCoreConfig) -> float:
        """Model IPC, served from the operating-point table when fast."""
        if perf.FAST:
            table = self.true_points(phase)
            if isinstance(table, OperatingPointTable):
                ipc = table.get_ipc(config)
                if ipc is not None:
                    return ipc
        return self.model.ipc(phase, config)

    def run(
        self,
        allocator: Allocator,
        intervals: int = 1000,
        warmup_intervals: int = 0,
    ) -> RunResult:
        """Run ``intervals`` recorded samples, after an optional warmup.

        Warmup intervals execute identically (the allocator sees them
        and learns from them) but are not recorded — the paper's
        1000-sample measurements describe steady-state operation, after
        the runtime has seen the application's phases at least once.
        """
        if intervals <= 0:
            raise ValueError(f"intervals must be positive, got {intervals}")
        if warmup_intervals < 0:
            raise ValueError(
                f"warmup_intervals must be non-negative, got {warmup_intervals}"
            )
        rng = random.Random(self.seed)
        walker = _PhaseWalker(self.app)
        records: List[IntervalRecord] = []
        measurement: Optional[QoSMeasurement] = None
        current_config: Optional[VCoreConfig] = None
        cycle = 0.0
        for index in range(-warmup_intervals, intervals):
            _, phase = walker.current_phase()
            points = self.true_points(phase)
            schedule = allocator.decide(measurement, points)
            (
                true_qos,
                active_qos,
                cost_rate,
                legs,
                reconfig_cycles,
                current_config,
                actual_cycles,
            ) = self._execute(schedule, walker, current_config, rng)
            measured = self._noisy(true_qos, rng)
            violated = true_qos < self.qos_goal * (1.0 - self.violation_margin)
            if index >= 0:
                records.append(
                    IntervalRecord(
                        index=index,
                        start_cycle=cycle,
                        phase_name=phase.name,
                        schedule=schedule,
                        true_qos=true_qos,
                        measured_qos=measured,
                        active_qos=active_qos,
                        cost_rate=cost_rate,
                        violated=violated,
                        reconfig_cycles=reconfig_cycles,
                        cycles=actual_cycles,
                    )
                )
                cycle += actual_cycles
            measurement = QoSMeasurement(
                overall_qos=measured,
                legs=tuple(legs),
                signature=self._signature(phase, rng),
            )
        return RunResult(
            app_name=self.app.name,
            allocator_name=allocator.name,
            qos_goal=self.qos_goal,
            interval_cycles=self.interval_cycles,
            records=records,
        )

    def _signature(self, phase: Phase, rng: random.Random) -> Tuple[float, ...]:
        """Configuration-independent counter fingerprint of a phase.

        The CASH runtime can read cache-miss and branch-mispredict
        counters on any Slice over the Runtime Interface Network
        (Section III-B2); per committed instruction these rates are
        properties of the workload, not of the virtual-core shape, so
        they identify *which* phase is executing.  Reported with the
        same measurement noise as QoS.
        """
        return (
            self._noisy(phase.mem_refs_per_inst, rng),
            self._noisy(phase.l1_miss_rate, rng),
            self._noisy(phase.mispredict_rate, rng),
        )

    def _noisy(self, value: float, rng: random.Random) -> float:
        if self.noise_std_frac <= 0.0:
            return value
        return max(value * (1.0 + rng.gauss(0.0, self.noise_std_frac)), 0.0)

    def _execute(
        self,
        schedule: Schedule,
        walker: _PhaseWalker,
        current_config: Optional[VCoreConfig],
        rng: random.Random,
    ) -> Tuple[
        float,
        float,
        float,
        List[LegObservation],
        int,
        Optional[VCoreConfig],
        float,
    ]:
        """Run one interval's schedule; truncate it at a phase boundary.

        Ending the interval at phase boundaries keeps every sample
        within a single phase, mirroring the paper's per-phase oracle
        construction (Section V-C) — no sample mixes two phases, so
        violations reflect allocation decisions, not sampling artefacts.
        """
        total_instructions = 0.0
        elapsed = 0.0
        busy_cycles = 0.0
        busy_instructions = 0.0
        dollars_time = 0.0  # Σ rate × cycles, normalized at the end
        legs: List[LegObservation] = []
        reconfig_total = 0
        crossed = False
        for entry in schedule.entries:
            if crossed:
                break
            leg_cycles = entry.fraction * self.interval_cycles
            if leg_cycles <= 0:
                continue
            if entry.point.is_idle:
                elapsed += leg_cycles
                legs.append(
                    LegObservation(config=None, fraction=entry.fraction, qos=0.0)
                )
                continue
            config = entry.point.config
            stall = 0
            if current_config is not None and config != current_config:
                stall = self.reconfig_costs.transition_cycles(
                    current_config, config
                )
                stall = min(stall, int(leg_cycles))
            current_config = config
            productive = leg_cycles - stall
            executed, used, crossed = walker.run_cycles(
                productive,
                lambda phase, config=config: self._ipc_of(phase, config),
                stop_at_boundary=True,
            )
            leg_total = used + stall
            elapsed += leg_total
            total_instructions += executed
            busy_cycles += leg_total
            busy_instructions += executed
            reconfig_total += stall
            dollars_time += config.cost_rate(self.cost_model) * leg_total
            leg_qos = executed / leg_total if leg_total > 0 else 0.0
            legs.append(
                LegObservation(
                    config=config,
                    fraction=entry.fraction,
                    qos=self._noisy(leg_qos, rng),
                )
            )
        elapsed = max(elapsed, 1.0)
        true_qos = total_instructions / elapsed
        active_qos = busy_instructions / busy_cycles if busy_cycles > 0 else 0.0
        cost_rate = dollars_time / elapsed
        return (
            true_qos,
            active_qos,
            cost_rate,
            legs,
            reconfig_total,
            current_config,
            elapsed,
        )


class CASHAllocator:
    """Adapter presenting :class:`CASHRuntime` as a harness allocator."""

    name = "CASH"

    def __init__(
        self,
        configs: Sequence[VCoreConfig],
        qos_goal: float,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        base_config: Optional[VCoreConfig] = None,
        guard_band: float = 0.03,
        initial_base_qos: Optional[float] = None,
        seed: int = 0,
        **runtime_kwargs: object,
    ) -> None:
        if not 0.0 <= guard_band < 1.0:
            raise ValueError(f"guard_band must be in [0, 1), got {guard_band}")
        configs = list(configs)
        if base_config is None:
            base_config = min(configs, key=lambda c: (c.slices, c.l2_kb))
        if initial_base_qos is None:
            # The runtime starts with a conservative guess and lets the
            # Kalman filter converge (Section IV-B: base speed is never
            # measured directly).
            initial_base_qos = qos_goal / 2.0
        self.runtime = CASHRuntime(
            configs=configs,
            cost_rates=[c.cost_rate(cost_model) for c in configs],
            qos_goal=qos_goal * (1.0 + guard_band),
            base_config=base_config,
            initial_base_qos=initial_base_qos,
            seed=seed,
            **runtime_kwargs,
        )

    def decide(
        self,
        measurement: Optional[QoSMeasurement],
        true_points: Sequence[ConfigPoint],
    ) -> Schedule:
        # The CASH runtime never touches the true points: it acts only
        # on remote performance-counter feedback.
        decision = self.runtime.step(measurement)
        return decision.schedule


class LatencySimulator:
    """Closed-loop simulation for latency-QoS (server) applications.

    QoS is normalized inverse latency: ``q = target_latency / latency``,
    so the goal is 1.0 and higher is better — the same "higher is
    better" convention every allocator already speaks.  Request service
    follows an M/M/1-style model: service time is the per-request
    instruction count over the configuration's IPC, inflated by
    ``1/(1-ρ)`` queueing as utilization ρ rises with the request rate.
    Idle legs are executed on the cheapest configuration — a server can
    never fully vacate while requests may arrive.
    """

    LATENCY_CAP_FACTOR = 10.0

    # QoS metric: *capacity margin*.  The M/M/1 latency constraint
    # ``(1/μ)/(1 − λ/μ) ≤ L`` rearranges to ``μ ≥ λ + 1/L`` — linear in
    # the service capacity μ.  Defining q = μ / (λ + 1/L) therefore
    # makes q = 1 exactly the latency target, keeps "higher is better",
    # and — crucially — makes time-sharing linear in q, so the Eqn.-5
    # LP and its two-configuration solutions are exact for servers too.

    def __init__(
        self,
        app: PhasedApplication,
        load: OscillatingLoad | RequestTrace,
        target_latency_cycles: float,
        model: PerformanceModel = DEFAULT_PERF_MODEL,
        space: ConfigurationSpace = DEFAULT_CONFIG_SPACE,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        reconfig_costs: ReconfigCostModel = DEFAULT_RECONFIG_COSTS,
        interval_cycles: float = 1.0e7,
        cycles_per_second: float = 1.0e8,
        noise_std_frac: float = 0.02,
        violation_margin: float = 0.03,
        seed: int = 0,
    ) -> None:
        if app.qos_kind != "latency":
            raise ValueError(
                f"{app.name} is a {app.qos_kind} application; use "
                "ThroughputSimulator"
            )
        if target_latency_cycles <= 0:
            raise ValueError(
                f"target_latency_cycles must be positive, "
                f"got {target_latency_cycles}"
            )
        if cycles_per_second <= 0:
            raise ValueError(
                f"cycles_per_second must be positive, got {cycles_per_second}"
            )
        self.app = app
        self.load = load
        self.target_latency = target_latency_cycles
        self.model = model
        self.space = space
        self.cost_model = cost_model
        self.reconfig_costs = reconfig_costs
        self.interval_cycles = interval_cycles
        self.cycles_per_second = cycles_per_second
        self.noise_std_frac = noise_std_frac
        self.violation_margin = violation_margin
        self.seed = seed
        self._cheapest = min(space, key=lambda c: c.cost_rate(cost_model))
        # Per-phase (config, capacity, cost_rate) triples: the request
        # rate only scales the capacity margin, so the expensive part of
        # ``true_points`` is rate-independent and cacheable.
        self._capacity_cache: Dict[
            str, List[Tuple[VCoreConfig, float, float]]
        ] = {}

    def _ipc_of(self, phase: Phase, config: VCoreConfig) -> float:
        """Model IPC, served from the operating-point table when fast."""
        if perf.FAST:
            ipc = operating_point_table(
                phase, self.model, self.space, self.cost_model
            ).get_ipc(config)
            if ipc is not None:
                return ipc
        return self.model.ipc(phase, config)

    def _capacity_entries(
        self, phase: Phase
    ) -> List[Tuple[VCoreConfig, float, float]]:
        cached = self._capacity_cache.get(phase.name)
        if cached is None:
            table = operating_point_table(
                phase, self.model, self.space, self.cost_model
            )
            per_request = self.app.instructions_per_request
            cached = [
                (point.config, point.speedup / per_request, point.cost_rate)
                for point in table
            ]
            self._capacity_cache[phase.name] = cached
        return cached

    def service_capacity(self, phase: Phase, config: VCoreConfig) -> float:
        """Requests per cycle the configuration can serve in ``phase``."""
        return self._ipc_of(phase, config) / self.app.instructions_per_request

    def required_capacity(self, rate_per_second: float) -> float:
        """Capacity (requests/cycle) needed to hold the latency target."""
        arrivals = rate_per_second / self.cycles_per_second
        return arrivals + 1.0 / self.target_latency

    def latency_cycles(
        self, phase: Phase, config: VCoreConfig, rate_per_second: float
    ) -> float:
        """Mean request latency under the M/M/1-style model."""
        capacity = self.service_capacity(phase, config)
        arrivals = rate_per_second / self.cycles_per_second
        cap = self.LATENCY_CAP_FACTOR * self.target_latency
        if capacity <= arrivals:
            return cap
        return min(1.0 / (capacity - arrivals), cap)

    def qos_of(
        self, phase: Phase, config: VCoreConfig, rate_per_second: float
    ) -> float:
        """Capacity margin (goal = 1.0 ⇔ latency exactly at target)."""
        return self.service_capacity(phase, config) / self.required_capacity(
            rate_per_second
        )

    def true_points(
        self, phase: Phase, rate_per_second: float
    ) -> List[ConfigPoint]:
        if perf.FAST:
            # capacity / required is the same division the scalar
            # ``qos_of`` performs, on the same capacity value, so each
            # point is bit-identical.
            required = self.required_capacity(rate_per_second)
            return [
                ConfigPoint(
                    config=config,
                    speedup=capacity / required,
                    cost_rate=cost_rate,
                )
                for config, capacity, cost_rate in self._capacity_entries(phase)
            ]
        return [
            ConfigPoint(
                config=config,
                speedup=self.qos_of(phase, config, rate_per_second),
                cost_rate=config.cost_rate(self.cost_model),
            )
            for config in self.space
        ]

    def run(self, allocator: Allocator, intervals: int = 1000) -> RunResult:
        if intervals <= 0:
            raise ValueError(f"intervals must be positive, got {intervals}")
        rng = random.Random(self.seed)
        walker = _PhaseWalker(self.app)
        records: List[IntervalRecord] = []
        measurement: Optional[QoSMeasurement] = None
        current_config: Optional[VCoreConfig] = None
        cycle = 0.0
        previous_rate: Optional[float] = None
        for index in range(intervals):
            _, phase = walker.current_phase()
            rate = self.load.rate_at(cycle)
            if measurement is not None and previous_rate is not None:
                # The runtime reads arrival counters at decision time,
                # so it knows how the capacity requirement moved.
                measurement = replace(
                    measurement,
                    goal_scale=self.required_capacity(rate)
                    / self.required_capacity(previous_rate),
                )
            previous_rate = rate
            points = self.true_points(phase, rate)
            schedule = allocator.decide(measurement, points)
            cost_rate = 0.0
            legs: List[LegObservation] = []
            reconfig_total = 0
            capacity = 0.0  # requests per cycle the schedule can serve
            for entry in schedule.entries:
                if entry.fraction <= 0:
                    continue
                config = (
                    entry.point.config
                    if not entry.point.is_idle
                    else self._cheapest
                )
                stall = 0
                if current_config is not None and config != current_config:
                    stall = self.reconfig_costs.transition_cycles(
                        current_config, config
                    )
                current_config = config
                leg_cycles = entry.fraction * self.interval_cycles
                stall_penalty = min(stall / max(leg_cycles, 1.0), 0.5)
                ipc = self._ipc_of(phase, config)
                service_rate = ipc / self.app.instructions_per_request
                capacity += entry.fraction * service_rate * (1.0 - stall_penalty)
                leg_qos = self.qos_of(phase, config, rate) * (1.0 - stall_penalty)
                cost_rate += config.cost_rate(self.cost_model) * entry.fraction
                reconfig_total += stall
                legs.append(
                    LegObservation(
                        config=entry.point.config,
                        fraction=entry.fraction,
                        qos=self._noisy(leg_qos, rng),
                    )
                )
            # Fluid model of the time-shared interval: requests arrive
            # continuously, so the schedule's average service capacity
            # is what bounds latency.  Time spent idle (or in slow
            # legs) does not average away — it stretches every queued
            # request.  The capacity-margin QoS makes this exact.
            total_qos = capacity / self.required_capacity(rate)
            # Advance the request-mix phase walker by the work actually
            # served this interval.
            served_rate = rate / self.cycles_per_second  # requests/cycle
            instructions = (
                served_rate
                * self.interval_cycles
                * self.app.instructions_per_request
            )
            walker.offset += instructions
            measured = self._noisy(total_qos, rng)
            violated = total_qos < 1.0 - self.violation_margin
            records.append(
                IntervalRecord(
                    index=index,
                    start_cycle=cycle,
                    phase_name=phase.name,
                    schedule=schedule,
                    true_qos=total_qos,
                    measured_qos=measured,
                    active_qos=total_qos,
                    cost_rate=cost_rate,
                    violated=violated,
                    reconfig_cycles=reconfig_total,
                    request_rate=rate,
                )
            )
            measurement = QoSMeasurement(
                overall_qos=measured,
                legs=tuple(legs),
                signature=(
                    self._noisy(phase.mem_refs_per_inst, rng),
                    self._noisy(phase.l1_miss_rate, rng),
                    self._noisy(phase.mispredict_rate, rng),
                ),
            )
            cycle += self.interval_cycles
        return RunResult(
            app_name=self.app.name,
            allocator_name=allocator.name,
            qos_goal=1.0,
            interval_cycles=self.interval_cycles,
            records=records,
        )

    def _noisy(self, value: float, rng: random.Random) -> float:
        if self.noise_std_frac <= 0.0:
            return value
        return max(value * (1.0 + rng.gauss(0.0, self.noise_std_frac)), 0.0)
