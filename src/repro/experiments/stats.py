"""Multi-seed statistics for the closed-loop experiments.

Single runs carry seed-dependent noise (measurement noise, exploration
choices).  This module repeats an experiment across seeds and reports
mean and spread, so claims like "CASH lands at 1.2x optimal" come with
error bars.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.experiments.harness import RunResult
from repro.experiments.scenarios import run_app_with_allocator


@dataclass(frozen=True)
class Summary:
    """Mean and sample standard deviation of a metric across seeds."""

    values: tuple

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError("a summary needs at least one value")

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values)

    @property
    def std(self) -> float:
        if len(self.values) < 2:
            return 0.0
        mean = self.mean
        return math.sqrt(
            sum((v - mean) ** 2 for v in self.values) / (len(self.values) - 1)
        )

    @property
    def min(self) -> float:
        return min(self.values)

    @property
    def max(self) -> float:
        return max(self.values)

    def __str__(self) -> str:
        return f"{self.mean:.4f} ± {self.std:.4f}"


@dataclass(frozen=True)
class SeededResult:
    """Cost and violation statistics for one (app, allocator) cell."""

    app_name: str
    allocator_kind: str
    cost: Summary
    violation_percent: Summary
    seeds: tuple


def run_across_seeds(
    app_name: str,
    kind: str,
    seeds: Sequence[int] = (0, 1, 2),
    intervals: int = 1000,
) -> SeededResult:
    """Run one experiment cell across several seeds."""
    if not seeds:
        raise ValueError("need at least one seed")
    costs: List[float] = []
    violations: List[float] = []
    for seed in seeds:
        result = run_app_with_allocator(
            app_name, kind, intervals=intervals, seed=seed
        )
        costs.append(result.cost_dollars)
        violations.append(result.violation_percent)
    return SeededResult(
        app_name=app_name,
        allocator_kind=kind,
        cost=Summary(tuple(costs)),
        violation_percent=Summary(tuple(violations)),
        seeds=tuple(seeds),
    )


def seed_stability_report(
    app_names: Sequence[str],
    kind: str = "cash",
    seeds: Sequence[int] = (0, 1, 2),
    intervals: int = 1000,
) -> Dict[str, SeededResult]:
    """Stability of one allocator across seeds for several apps."""
    return {
        name: run_across_seeds(name, kind, seeds=seeds, intervals=intervals)
        for name in app_names
    }
