"""Multi-seed statistics and the parallel sweep executor.

Single runs carry seed-dependent noise (measurement noise, exploration
choices).  This module repeats an experiment across seeds and reports
mean and spread, so claims like "CASH lands at 1.2x optimal" come with
error bars.

Experiment grids are embarrassingly parallel: every (application,
allocator, seed) cell is an independent simulation with an explicit
seed.  :func:`run_cells` maps a list of :class:`CellSpec` over a
process pool and returns results in spec order, so a parallel sweep is
byte-for-byte identical to the serial one — only faster.  ``jobs=1``
(or a single cell) runs inline with no pool at all.

Multi-tenant provider runs shard the same way: a
:class:`ProviderCellSpec` freezes one whole
:meth:`~repro.cloud.provider.CloudProvider.run` (customer mix,
overcommit, fabric shape, seed) and :func:`run_cells` dispatches both
spec kinds over the one executor, so a (seed × policy-mix ×
overcommit) provider grid fans out exactly like a single-tenant sweep.
Provider timings land in ``BENCH_CLOUD.json``
(:func:`record_bench_cloud`) next to the engine's ``BENCH_PERF.json``.

Worker processes are configured exactly once, by the pool
``initializer`` (:func:`_worker_setup`): the FAST switch, the
sanitizer flag, the disk-cache root and the shared operating-point
store handle all travel through its arguments, so no per-cell code
re-derives process state and fork and spawn start methods behave
identically.  With the fast paths on, ``run_cells`` stands up the
cross-process store (:func:`repro.sim.optstore.ensure`) before the
pool starts, so every worker attaches to one shared table tier and
each (phase-key, grid) table is built exactly once fleet-wide.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro import cacheconf, perf
from repro.analysis import sanitize
from repro.arch.vcore import VCoreConfig
from repro.cloud.traffic import TrafficSpec
from repro.experiments.harness import RunResult
from repro.experiments.scenarios import (
    run_app_with_allocator,
    run_provider_mix,
    run_service_cell,
    run_tier_batch,
    run_tier_cell,
    warm_app_surfaces,
)

try:  # POSIX advisory file locks guard the bench-report merge.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX hosts
    fcntl = None  # type: ignore[assignment]
from repro.sim import optstore


@dataclass(frozen=True)
class Summary:
    """Mean and sample standard deviation of a metric across seeds."""

    values: tuple

    def __post_init__(self) -> None:
        # Accept any iterable of numbers; freeze it as a tuple so the
        # dataclass stays hashable and the statistics stay stable.
        object.__setattr__(self, "values", tuple(self.values))
        if not self.values:
            raise ValueError("a summary needs at least one value")

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values)

    @property
    def std(self) -> float:
        if len(self.values) < 2:
            return 0.0
        mean = self.mean
        return math.sqrt(
            sum((v - mean) ** 2 for v in self.values) / (len(self.values) - 1)
        )

    @property
    def median(self) -> float:
        """Middle value (average of the middle two for even counts)."""
        ordered = sorted(self.values)
        middle = len(ordered) // 2
        if len(ordered) % 2:
            return float(ordered[middle])
        return (ordered[middle - 1] + ordered[middle]) / 2.0

    @property
    def min(self) -> float:
        return min(self.values)

    @property
    def max(self) -> float:
        return max(self.values)

    def __str__(self) -> str:
        return f"{self.mean:.4f} ± {self.std:.4f}"


@dataclass(frozen=True)
class CellSpec:
    """One independent experiment cell of a sweep grid.

    Frozen and fully value-typed so it pickles cleanly into worker
    processes; the explicit ``seed`` is what makes a parallel sweep
    reproduce the serial one exactly.
    """

    app_name: str
    kind: str
    intervals: int = 1000
    seed: int = 0
    candidates: Optional[Tuple[VCoreConfig, ...]] = None


@dataclass(frozen=True)
class ProviderCellSpec:
    """One multi-tenant provider run of a sweep grid.

    ``mix`` is the frozen (app_name, policy) pair per tenant; tenant
    ``i`` arrives at ``i * arrival_stride``.  Like :class:`CellSpec`
    the spec is fully value-typed (it pickles into worker processes)
    and the explicit seed makes sharded grids bit-identical to serial
    ones.
    """

    mix: Tuple[Tuple[str, str], ...]
    intervals: int = 300
    seed: int = 0
    overcommit: float = 1.0
    fabric_width: int = 16
    fabric_height: int = 16
    arrival_stride: int = 5


@dataclass(frozen=True)
class TierCellSpec:
    """One cycle-tier vs fast-tier agreement cell of a sweep grid.

    Freezes a single (application phase, virtual core) measurement:
    generate a trace of ``instructions`` micro-ops with the explicit
    ``seed``, run it on the cycle tier, and pair the measured IPC with
    the analytic prediction.  Fully value-typed like the other specs so
    it pickles into worker processes and sharded grids stay
    bit-identical to serial ones.
    """

    app_name: str
    phase_index: int
    config: VCoreConfig
    instructions: int = 4000
    seed: int = 0


@dataclass(frozen=True)
class WarmCellSpec:
    """One cache warm-up cell: pre-publish every phase surface of one
    application over one configuration space into the shared tiers.

    Unlike the run specs this produces no report — its result is a
    tuple of ``(phase_name, digest, fingerprint)`` triples naming what
    is now warm, which warm sweeps compare bit-for-bit across cold and
    warm passes.  ``None`` grid axes mean the default space.
    """

    app_name: str
    slice_counts: Optional[Tuple[int, ...]] = None
    l2_sizes_kb: Optional[Tuple[int, ...]] = None


@dataclass(frozen=True)
class TierBatchSpec:
    """A worker-sized batch of tier cells for the struct-of-arrays tier.

    Where a :class:`TierCellSpec` dispatches one (phase, config)
    simulation, a batch spec carries a whole slab of them so one worker
    can advance every cell in lockstep through
    :func:`repro.sim.batchpipe.run_batch` — traces shared across
    configurations are generated and encoded once, and the stepping
    cost amortizes over the batch.  Its result is the tuple of
    per-cell :class:`~repro.sim.ssim.CycleResult`s in cell order,
    bit-identical to dispatching each cell singly.
    """

    cells: Tuple[TierCellSpec, ...]


@dataclass(frozen=True)
class ServiceCellSpec:
    """One event-driven service run of a sweep grid.

    Wraps a frozen :class:`~repro.cloud.traffic.TrafficSpec` (the
    open-loop demand) plus the provider-side knobs.  Fully value-typed
    like the other specs: it pickles into worker processes, and the
    traffic seed makes sharded grids bit-identical to serial ones.
    """

    traffic: TrafficSpec
    overcommit: float = 1.0
    fabric_width: int = 24
    fabric_height: int = 24
    converged_after: int = 12
    reprobe_every: int = 48


AnyCellSpec = Union[
    CellSpec,
    ProviderCellSpec,
    ServiceCellSpec,
    TierCellSpec,
    TierBatchSpec,
    WarmCellSpec,
]


def run_cell(spec: AnyCellSpec):
    """Run one cell (module-level so process pools can pickle it)."""
    if isinstance(spec, TierBatchSpec):
        return tuple(run_tier_batch(spec.cells))
    if isinstance(spec, ServiceCellSpec):
        return run_service_cell(spec)
    if isinstance(spec, ProviderCellSpec):
        return run_provider_mix(
            spec.mix,
            intervals=spec.intervals,
            seed=spec.seed,
            overcommit=spec.overcommit,
            fabric_width=spec.fabric_width,
            fabric_height=spec.fabric_height,
            arrival_stride=spec.arrival_stride,
        )
    if isinstance(spec, WarmCellSpec):
        return warm_app_surfaces(
            spec.app_name,
            slice_counts=spec.slice_counts,
            l2_sizes_kb=spec.l2_sizes_kb,
        )
    if isinstance(spec, TierCellSpec):
        return run_tier_cell(
            spec.app_name,
            spec.phase_index,
            spec.config,
            instructions=spec.instructions,
            seed=spec.seed,
        )
    return run_app_with_allocator(
        spec.app_name,
        spec.kind,
        intervals=spec.intervals,
        candidates=spec.candidates,
        seed=spec.seed,
    )


def default_jobs() -> int:
    """Worker count when ``--jobs`` is not given: one per CPU."""
    return os.cpu_count() or 1


def _worker_setup(
    fast: bool,
    sanitize_enabled: bool,
    cache_root: Optional[str],
    store: Optional[optstore.StoreHandle],
) -> None:
    """Pool initializer: configure a worker once, not once per cell.

    Everything a cell's engine behaviour depends on travels here
    explicitly — the FAST switch, the sanitizer flag, the disk-cache
    root and the shared-store handle — so a worker is configured
    exactly like its parent whether the pool forked or spawned it, and
    no per-cell code re-derives process state.
    """
    perf.set_fast_paths(fast)
    sanitize.set_enabled(sanitize_enabled)
    cacheconf.set_cache_dir(cache_root)
    if store is not None:
        optstore.attach(store)


def _group_tier_batches(
    specs: List[AnyCellSpec], jobs: int
) -> Tuple[List[AnyCellSpec], List[List[int]]]:
    """Fold the :class:`TierCellSpec` entries into per-worker batches.

    Returns ``(grouped_specs, slots)`` where ``slots[j]`` lists the
    original result positions grouped spec ``j`` covers (one position
    for pass-through specs, a slab of them for a batch).  Tier cells
    are chunked contiguously into at most ``jobs`` batches so every
    worker receives one slab; order within and across slabs is the
    original spec order, keeping sharded results byte-stable.
    """
    tier_positions = [
        index
        for index, spec in enumerate(specs)
        if isinstance(spec, TierCellSpec)
    ]
    if len(tier_positions) <= 1:
        return specs, [[index] for index in range(len(specs))]
    batches = min(jobs, len(tier_positions))
    size, extra = divmod(len(tier_positions), batches)
    chunks: List[List[int]] = []
    cursor = 0
    for index in range(batches):
        take = size + (1 if index < extra else 0)
        chunks.append(tier_positions[cursor : cursor + take])
        cursor += take
    grouped: List[AnyCellSpec] = []
    slots: List[List[int]] = []
    chunk_index = 0
    for index, spec in enumerate(specs):
        if not isinstance(spec, TierCellSpec):
            grouped.append(spec)
            slots.append([index])
            continue
        if chunk_index < len(chunks) and index == chunks[chunk_index][0]:
            chunk = chunks[chunk_index]
            chunk_index += 1
            grouped.append(
                TierBatchSpec(
                    cells=tuple(specs[position] for position in chunk)
                )
            )
            slots.append(list(chunk))
        # Tier cells that are not a chunk head ride inside their batch.
    return grouped, slots


def run_cells(
    specs: Sequence[AnyCellSpec],
    jobs: Optional[int] = None,
    tier_batch: bool = False,
) -> List:
    """Run every cell; results come back in spec order regardless of
    completion order (``ProcessPoolExecutor.map`` preserves input
    order), so downstream reports are byte-stable across job counts.
    Single-tenant and provider specs may share one batch; each result
    slot carries whatever its spec kind produces (a
    :class:`~repro.experiments.harness.RunResult` or a
    :class:`~repro.cloud.provider.ProviderReport`).

    With ``tier_batch`` enabled the :class:`TierCellSpec` entries are
    grouped into per-worker :class:`TierBatchSpec` slabs before
    dispatch and the slab results are flattened back into the original
    slots afterwards — the struct-of-arrays tier then advances each
    slab's cells in lockstep.  Batching is invisible in the results
    (bit-identical per cell); it only changes the wall clock.
    """
    specs = list(specs)
    if jobs is None:
        jobs = default_jobs()
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if tier_batch:
        grouped, slots = _group_tier_batches(specs, jobs)
        grouped_results = run_cells(grouped, jobs=jobs)
        flat: List = [None] * len(specs)
        for spec, positions, result in zip(grouped, slots, grouped_results):
            if isinstance(spec, TierBatchSpec):
                for position, cell_result in zip(positions, result):
                    flat[position] = cell_result
            else:
                flat[positions[0]] = result
        return flat
    if jobs == 1 or len(specs) <= 1:
        return [run_cell(spec) for spec in specs]
    # Stand up the cross-process table store before the pool exists so
    # the initializer can hand every worker the same handle.  (With the
    # fast paths off the store must stay untouched — reference runs
    # bypass every cache tier.)
    store = optstore.ensure() if perf.FAST else None
    root = cacheconf.cache_dir()
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(specs)),
        initializer=_worker_setup,
        initargs=(
            perf.FAST,
            sanitize.ENABLED,
            None if root is None else str(root),
            store,
        ),
    ) as pool:
        return list(pool.map(run_cell, specs))


@dataclass(frozen=True)
class SeededResult:
    """Cost and violation statistics for one (app, allocator) cell."""

    app_name: str
    allocator_kind: str
    cost: Summary
    violation_percent: Summary
    seeds: tuple


def run_across_seeds(
    app_name: str,
    kind: str,
    seeds: Sequence[int] = (0, 1, 2),
    intervals: int = 1000,
    jobs: Optional[int] = 1,
) -> SeededResult:
    """Run one experiment cell across several seeds."""
    if not seeds:
        raise ValueError("need at least one seed")
    specs = [
        CellSpec(app_name=app_name, kind=kind, intervals=intervals, seed=seed)
        for seed in seeds
    ]
    results = run_cells(specs, jobs=jobs)
    return SeededResult(
        app_name=app_name,
        allocator_kind=kind,
        cost=Summary(tuple(r.cost_dollars for r in results)),
        violation_percent=Summary(tuple(r.violation_percent for r in results)),
        seeds=tuple(seeds),
    )


def seed_stability_report(
    app_names: Sequence[str],
    kind: str = "cash",
    seeds: Sequence[int] = (0, 1, 2),
    intervals: int = 1000,
    jobs: Optional[int] = 1,
) -> Dict[str, SeededResult]:
    """Stability of one allocator across seeds for several apps.

    The whole (app × seed) grid is submitted as one flat batch so a
    process pool can overlap everything, then regrouped per app.
    """
    names = list(app_names)
    specs = [
        CellSpec(app_name=name, kind=kind, intervals=intervals, seed=seed)
        for name in names
        for seed in seeds
    ]
    results = run_cells(specs, jobs=jobs)
    report: Dict[str, SeededResult] = {}
    stride = len(tuple(seeds))
    for index, name in enumerate(names):
        cell_results = results[index * stride : (index + 1) * stride]
        report[name] = SeededResult(
            app_name=name,
            allocator_kind=kind,
            cost=Summary(tuple(r.cost_dollars for r in cell_results)),
            violation_percent=Summary(
                tuple(r.violation_percent for r in cell_results)
            ),
            seeds=tuple(seeds),
        )
    return report


def sweep(
    app_names: Sequence[str],
    kinds: Sequence[str],
    seeds: Sequence[int] = (0,),
    intervals: int = 1000,
    jobs: Optional[int] = None,
) -> Tuple[Dict[str, Dict[str, SeededResult]], Dict[str, object]]:
    """The full (app × allocator × seed) grid, parallel over cells.

    Returns ``(results[kind][app], timing)`` where ``timing`` is a
    JSON-ready report (wall seconds, jobs, cell count, cells/second)
    suitable for :func:`record_bench_perf`.
    """
    names = list(app_names)
    kind_list = list(kinds)
    seed_list = list(seeds)
    specs = [
        CellSpec(app_name=name, kind=kind, intervals=intervals, seed=seed)
        for name in names
        for kind in kind_list
        for seed in seed_list
    ]
    if jobs is None:
        jobs = default_jobs()
    start = time.perf_counter()
    results = run_cells(specs, jobs=jobs)
    elapsed = time.perf_counter() - start
    grouped: Dict[str, Dict[str, SeededResult]] = {k: {} for k in kind_list}
    stride = len(seed_list)
    cursor = 0
    for name in names:
        for kind in kind_list:
            cell_results = results[cursor : cursor + stride]
            cursor += stride
            grouped[kind][name] = SeededResult(
                app_name=name,
                allocator_kind=kind,
                cost=Summary(tuple(r.cost_dollars for r in cell_results)),
                violation_percent=Summary(
                    tuple(r.violation_percent for r in cell_results)
                ),
                seeds=tuple(seed_list),
            )
    timing: Dict[str, object] = {
        "cells": len(specs),
        "jobs": jobs,
        "intervals": intervals,
        "wall_seconds": round(elapsed, 4),
        "cells_per_second": round(len(specs) / elapsed, 4) if elapsed else None,
        "apps": names,
        "kinds": kind_list,
        "seeds": seed_list,
    }
    from repro.sim.optables import optable_cache_stats

    timing["optable_store"] = optable_cache_stats()
    return grouped, timing


def warm_surface_grid(
    app_names: Sequence[str],
    slice_counts: Optional[Tuple[int, ...]] = None,
    l2_sizes_kb: Optional[Tuple[int, ...]] = None,
    jobs: Optional[int] = None,
) -> Tuple[Dict[str, tuple], Dict[str, object]]:
    """Warm every (application, phase) surface into the shared tiers.

    The pre-heater behind ``repro cache warm`` and the warm-sweep
    benchmark: each :class:`WarmCellSpec` publishes its app's phase
    surfaces through :func:`repro.sim.optables.ensure_surface` — no
    ``ConfigPoint`` construction on already-warm entries — and the
    surfaces come back as ``(phase_name, digest, fingerprint)``
    triples, bit-stable across cold and warm passes.  Returns
    ``(surfaces[app_name], timing)`` with per-tier store counters
    embedded in ``timing``.
    """
    names = list(app_names)
    specs = [
        WarmCellSpec(
            app_name=name,
            slice_counts=slice_counts,
            l2_sizes_kb=l2_sizes_kb,
        )
        for name in names
    ]
    if jobs is None:
        jobs = default_jobs()
    start = time.perf_counter()
    results = run_cells(specs, jobs=jobs)
    elapsed = time.perf_counter() - start
    from repro.sim.optables import optable_cache_stats

    timing: Dict[str, object] = {
        "apps": names,
        "jobs": jobs,
        "surfaces": sum(len(result) for result in results),
        "wall_seconds": round(elapsed, 4),
        "optable_store": optable_cache_stats(),
    }
    return dict(zip(names, results)), timing


def record_bench_perf(
    section: str,
    payload: Dict[str, object],
    path: str = "BENCH_PERF.json",
) -> Path:
    """Merge ``payload`` under ``section`` in the timing report file.

    Concurrency-safe merge-update: the read-merge-write runs under an
    advisory file lock (on POSIX hosts) and the new report is staged in
    a unique temp file in the target directory then published with an
    atomic rename — so parallel benchmark runs writing different
    sections interleave cleanly instead of one clobbering the other's
    keys, and a reader never observes a half-written file.
    """
    target = Path(path)
    lock_path = target.with_name(target.name + ".lock")
    lock_handle = None
    if fcntl is not None:
        lock_handle = open(lock_path, "a+")
        fcntl.flock(lock_handle.fileno(), fcntl.LOCK_EX)
    try:
        data: Dict[str, object] = {}
        if target.exists():
            try:
                data = json.loads(target.read_text())
            except (OSError, ValueError):
                data = {}
        data[section] = payload
        handle, scratch_name = tempfile.mkstemp(
            prefix=target.name + ".", suffix=".tmp", dir=str(target.parent)
        )
        try:
            with os.fdopen(handle, "w") as scratch:
                scratch.write(
                    json.dumps(data, indent=2, sort_keys=True) + "\n"
                )
            os.replace(scratch_name, target)
        finally:
            if os.path.exists(scratch_name):
                os.unlink(scratch_name)
    finally:
        if lock_handle is not None:
            fcntl.flock(lock_handle.fileno(), fcntl.LOCK_UN)
            lock_handle.close()
    return target


BENCH_CLOUD_PATH = "BENCH_CLOUD.json"
"""Provider-loop timings live here, next to ``BENCH_PERF.json``."""


def record_bench_cloud(
    section: str,
    payload: Dict[str, object],
    path: str = BENCH_CLOUD_PATH,
) -> Path:
    """Merge ``payload`` under ``section`` in ``BENCH_CLOUD.json``."""
    return record_bench_perf(section, payload, path=path)


BENCH_CYCLE_PATH = "BENCH_CYCLE.json"
"""Cycle-tier timings (event-driven engine and the tier-agreement
sweep) live here, next to the other benchmark reports."""


def record_bench_cycle(
    section: str,
    payload: Dict[str, object],
    path: str = BENCH_CYCLE_PATH,
) -> Path:
    """Merge ``payload`` under ``section`` in ``BENCH_CYCLE.json``."""
    return record_bench_perf(section, payload, path=path)
