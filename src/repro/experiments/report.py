"""Formatting results in the paper's rows (Table III, Figs. 7–10)."""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from repro.experiments.harness import RunResult
from repro.experiments.scenarios import geometric_mean


def cost_table(
    results: Mapping[str, Mapping[str, RunResult]],
    reference: str = "Optimal",
) -> str:
    """Render Table III: geometric-mean cost and ratio to optimal."""
    lines = ["Allocator                Geometric Mean   Ratio to " + reference]
    geo: Dict[str, float] = {}
    for allocator, runs in results.items():
        geo[allocator] = geometric_mean(
            [run.cost_dollars for run in runs.values()]
        )
    base = geo.get(reference)
    for allocator, value in geo.items():
        ratio = value / base if base else float("nan")
        lines.append(f"{allocator:<24} ${value:<15.4f} {ratio:.2f}")
    return "\n".join(lines)


def per_app_table(
    results: Mapping[str, Mapping[str, RunResult]],
) -> str:
    """Render Fig. 7 / Fig. 10 as text: per-app cost and violations."""
    allocators = list(results)
    apps = sorted(
        {app for runs in results.values() for app in runs}
    )
    header = f"{'app':<12}" + "".join(f"{name:>24}" for name in allocators)
    lines = [header, "-" * len(header)]
    for app in apps:
        costs = "".join(
            f"{results[name][app].cost_dollars:>17.4f}$"
            + f"{results[name][app].violation_percent:>5.1f}%"
            for name in allocators
        )
        lines.append(f"{app:<12}" + costs)
    geo_cells = "".join(
        f"{geometric_mean([r.cost_dollars for r in results[name].values()]):>17.4f}$"
        + f"{sum(r.violation_percent for r in results[name].values()) / len(results[name]):>5.1f}%"
        for name in allocators
    )
    lines.append(f"{'geomean':<12}" + geo_cells)
    return "\n".join(lines)


def geomean_costs(
    results: Mapping[str, Mapping[str, RunResult]],
) -> Dict[str, float]:
    return {
        allocator: geometric_mean([run.cost_dollars for run in runs.values()])
        for allocator, runs in results.items()
    }


def mean_violations(
    results: Mapping[str, Mapping[str, RunResult]],
) -> Dict[str, float]:
    return {
        allocator: sum(run.violation_percent for run in runs.values())
        / len(runs)
        for allocator, runs in results.items()
    }


def provider_table(reports: Mapping[tuple, object]) -> str:
    """Render the multi-tenant grid: one row per provider cell.

    ``reports`` maps ``(policy_mix, overcommit, seed)`` to a
    :class:`~repro.cloud.provider.ProviderReport` (the shape
    :func:`~repro.experiments.scenarios.multitenant_grid` returns).
    """
    header = (
        f"{'mix':<6}{'over':>6}{'seed':>6}{'admit':>7}{'reject':>8}"
        f"{'util %':>8}{'$/hr':>10}{'viol %':>8}{'defrag':>8}"
    )
    lines = [header, "-" * len(header)]
    for (policy_mix, overcommit, seed), report in reports.items():
        lines.append(
            f"{policy_mix:<6}{overcommit:>6.2f}{seed:>6}"
            f"{report.admitted:>7}{report.rejected:>8}"
            f"{report.mean_utilization * 100:>8.1f}"
            f"{report.revenue_rate:>10.4f}"
            f"{report.mean_violation_percent:>8.1f}"
            f"{report.defragmentations:>8}"
        )
    return "\n".join(lines)


def service_table(reports: Mapping[tuple, object]) -> str:
    """Render the always-on service grid: one row per churn cell.

    ``reports`` maps ``(tenants, seed)`` to a
    :class:`~repro.cloud.service.ServiceReport` (the shape
    :func:`~repro.experiments.scenarios.service_grid` returns).
    ``t-ivals`` is tenant-intervals — the dense-equivalent work the
    event engine covered — and ``steps``/``decides`` show how much of
    it needed a controller step, and of those how many consulted the
    allocator (the rest were convergence-hibernation replays).
    """
    header = (
        f"{'tenants':>8}{'seed':>6}{'admit':>7}{'reject':>8}"
        f"{'t-ivals':>10}{'steps':>9}{'decides':>9}"
        f"{'util %':>8}{'$/hr':>10}{'viol %':>8}"
    )
    lines = [header, "-" * len(header)]
    for (tenants, seed), report in reports.items():
        lines.append(
            f"{tenants:>8}{seed:>6}"
            f"{report.admitted:>7}{report.rejected:>8}"
            f"{report.tenant_intervals:>10}"
            f"{report.active_steps:>9}{report.decide_steps:>9}"
            f"{report.mean_utilization * 100:>8.1f}"
            f"{report.revenue_rate:>10.4f}"
            f"{report.mean_violation_percent:>8.1f}"
        )
    return "\n".join(lines)


def tier_table(results: Mapping[tuple, object]) -> str:
    """Render the tier-agreement sweep: one row per (phase, config).

    ``results`` maps ``(app_name, phase_index, config)`` to a
    :class:`~repro.sim.ssim.CycleResult` (the shape
    :func:`~repro.experiments.scenarios.tier_agreement_grid` returns).
    Each row pairs the cycle tier's measured IPC with the fast tier's
    prediction and their relative error; the footer gives the mean and
    worst error over the grid — the number the paper's two-tier
    validation argument rests on.
    """
    header = (
        f"{'app':<12}{'phase':>6}{'config':>10}{'cycles':>10}"
        f"{'IPC':>8}{'pred':>8}{'err %':>8}"
    )
    lines = [header, "-" * len(header)]
    errors: List[float] = []
    for (app_name, phase_index, config), cell in results.items():
        error = cell.relative_error
        errors.append(error)
        lines.append(
            f"{app_name:<12}{phase_index:>6}{str(config):>10}"
            f"{cell.pipeline.cycles:>10}"
            f"{cell.measured_ipc:>8.3f}{cell.predicted_ipc:>8.3f}"
            f"{error * 100:>8.1f}"
        )
    if errors:
        mean_error = sum(errors) / len(errors)
        lines.append(
            f"{'mean |err|':<28}{'':>10}{'':>8}{'':>8}"
            f"{mean_error * 100:>8.1f}"
        )
        lines.append(
            f"{'max |err|':<28}{'':>10}{'':>8}{'':>8}"
            f"{max(errors) * 100:>8.1f}"
        )
    return "\n".join(lines)


def timeseries_table(
    results: Mapping[str, RunResult],
    stride: int = 10,
) -> str:
    """Render Fig. 2/8/9-style time series as aligned text columns."""
    names = list(results)
    any_run = next(iter(results.values()))
    # Hoisted out of the row loop: the series is O(intervals) to build,
    # so computing it per sampled row made the table quadratic.
    perf_series = {
        name: results[name].normalized_performance_series() for name in names
    }
    lines = [
        f"{'Mcycles':>8}"
        + "".join(f"{name + ' $/h':>22}{name + ' perf':>12}" for name in names)
    ]
    for i in range(0, any_run.num_intervals, stride):
        row = f"{any_run.records[i].start_cycle / 1e6:>8.0f}"
        for name in names:
            record = results[name].records[i]
            row += f"{record.cost_rate:>22.4f}{perf_series[name][i]:>12.2f}"
        lines.append(row)
    return "\n".join(lines)
