"""Configuration of the persistent operating-point cache tiers.

The engine directories (``sim``/``runtime``/``baselines``/``cloud``)
are forbidden from reading the environment — the ``env-read``
determinism rule enforces that engine behaviour is a pure function of
explicit arguments.  The on-disk optable tier still needs *some*
host-level switch (where the cache root lives, or that it is off), so
that one read happens here, at the top of the package, once at import:

* ``REPRO_CACHE_DIR=<path>`` enables the disk tier rooted at that path;
* unset, empty, ``0``, ``off``, ``none`` or ``disabled`` keeps the
  disk tier off (the default — a cold engine never touches the disk);
* ``repro … --cache-dir PATH`` and tests override programmatically via
  :func:`set_cache_dir`.

The directory only ever *selects* which tables are warm; it can never
change a result, because every entry is keyed by a content hash of the
full table identity (see :data:`SCHEMA_VERSION` and
:func:`repro.sim.optstore.table_digest`) and checksum-verified on load.

``SCHEMA_VERSION`` is part of every digest and must be bumped whenever
the *meaning* of a stored surface changes — a performance-model or
envelope semantics change, a layout change in the ``.npz``/shared
segments — so stale caches self-invalidate instead of being trusted.
"""

from __future__ import annotations

import os
import threading
from pathlib import Path
from typing import Optional, Union

#: Content-hash schema version: participates in every table digest and
#: in the shared-memory index header.  Bump on any change to the stored
#: payload layout or to the semantics of the cached surfaces
#: (performance model, envelope construction, cost mapping).
SCHEMA_VERSION: int = 1

#: Environment values (case-insensitive) that mean "disk tier off".
_OFF_VALUES = frozenset({"", "0", "off", "none", "disabled"})

_CONF_LOCK = threading.Lock()


def _resolve(text: Union[str, Path, None]) -> Optional[Path]:
    """Normalize a cache-dir setting: a real path, or None for off."""
    if text is None:
        return None
    if isinstance(text, Path):
        return text.expanduser()
    if text.strip().lower() in _OFF_VALUES:
        return None
    return Path(text).expanduser()


_CACHE_DIR: Optional[Path] = _resolve(os.environ.get("REPRO_CACHE_DIR"))


def cache_dir() -> Optional[Path]:
    """Root of the on-disk optable tier, or None when the tier is off."""
    with _CONF_LOCK:
        return _CACHE_DIR


def set_cache_dir(target: Union[str, Path, None]) -> Optional[Path]:
    """Override the disk-tier root (``--cache-dir``, tests, workers).

    ``None`` or an off-value string disables the disk tier.  Returns
    the resolved root (or None).  The directory itself is created
    lazily by the first write, not here.
    """
    global _CACHE_DIR
    resolved = _resolve(target)
    with _CONF_LOCK:
        _CACHE_DIR = resolved
    return resolved
