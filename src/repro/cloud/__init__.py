"""Multi-tenant IaaS provider layer.

The paper's setting is an IaaS cloud: a chip with hundreds of Slices
and cache banks, rented at sub-core granularity to many customers at
once, each running the CASH runtime against their own QoS target
(Section I argues deployment "would then also benefit cloud providers
by attracting more customers").  This subpackage builds that setting on
top of the architecture and runtime layers:

* :mod:`repro.cloud.tenant` — a tenant: an application, a QoS target,
  an allocator policy, and per-tenant accounting;
* :mod:`repro.cloud.provider` — the provider simulation: tenants share
  one :class:`~repro.arch.fabric.Fabric`; each control interval every
  tenant's runtime picks a schedule, the provider places the peak
  footprint spatially (defragmenting when fragmentation blocks a
  resize), and bills by area-time;
* :mod:`repro.cloud.admission` — worst-case-footprint admission
  control;
* :mod:`repro.cloud.traffic` — open-loop tenant demand: seeded churn,
  diurnal curves, flash crowds and MMPP-style bursts, materialized as
  per-tenant activity timelines;
* :mod:`repro.cloud.service` — the always-on event-driven service: one
  min-heap of (interval, kind, tenant) events, controller steps only
  where traffic queued work, idle stretches skipped exactly, streaming
  metrics and checkpoint/restore for long horizons.

Because CASH isolates tenants spatially (own Slices, own banks — the
paper's answer to SMT-style resource thrashing), tenants do not disturb
each other's performance; what they contend for is *capacity*.  The
provider-level payoff of fine-grain adaptivity is density: CASH tenants
release what they do not need, so more customers fit on the same
silicon at the same QoS.
"""

from repro.cloud.tenant import Tenant, TenantAccount
from repro.cloud.provider import CloudProvider, ProviderReport
from repro.cloud.admission import AdmissionController, AdmissionDecision
from repro.cloud.traffic import (
    TenantTraffic,
    TrafficScenario,
    TrafficSpec,
    generate_traffic,
)
from repro.cloud.service import (
    MetricsSink,
    ServiceAccount,
    ServiceEngine,
    ServiceReport,
)

__all__ = [
    "Tenant",
    "TenantAccount",
    "CloudProvider",
    "ProviderReport",
    "AdmissionController",
    "AdmissionDecision",
    "TenantTraffic",
    "TrafficScenario",
    "TrafficSpec",
    "generate_traffic",
    "MetricsSink",
    "ServiceAccount",
    "ServiceEngine",
    "ServiceReport",
]
