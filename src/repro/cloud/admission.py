"""Worst-case-footprint admission control.

A provider must not admit a tenant it cannot serve at peak: the
tenant's QoS contract implicitly reserves the *worst-case* virtual core
(the cheapest configuration that meets its QoS in every phase — the
same configuration race-to-idle would hold permanently).  The
controller admits a tenant only if the sum of all admitted tenants'
worst-case footprints still fits the fabric.

CASH tenants usually occupy far less than their reservation — that slack
is what lets a provider oversubscribe deliberately (``overcommit > 1``)
while the per-tenant QoS guarantees stay intact in expectation.

Under :data:`repro.perf.FAST` the controller answers ``reserved``
queries from incrementally maintained per-kind totals (updated on every
admit/release) instead of rescanning all reservations — at 10k tenants
the rescan is the provider's admission bottleneck — and memoizes the
worst-case reservation per ``(application, QoS goal)`` contract, since
every tenant sharing a contract shares a reservation by construction.
The scalar rescan/recompute twins remain the reference, integer totals
make both modes exact, and the sanitizer shadow-recounts the totals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import perf
from repro.analysis import sanitize
from repro.arch.fabric import Fabric, TileKind
from repro.arch.vcore import ConfigurationSpace, VCoreConfig, DEFAULT_CONFIG_SPACE
from repro.baselines.race import worst_case_config
from repro.cloud.tenant import Tenant
from repro.sim.perfmodel import PerformanceModel, DEFAULT_PERF_MODEL


@dataclass(frozen=True)
class AdmissionDecision:
    """The controller's verdict for one tenant."""

    tenant_id: int
    admitted: bool
    reservation: Optional[VCoreConfig]
    reason: str


class AdmissionController:
    """Tracks reservations against the fabric's capacity."""

    def __init__(
        self,
        fabric: Fabric,
        model: PerformanceModel = DEFAULT_PERF_MODEL,
        space: ConfigurationSpace = DEFAULT_CONFIG_SPACE,
        overcommit: float = 1.0,
    ) -> None:
        if overcommit < 1.0:
            raise ValueError(f"overcommit must be >= 1, got {overcommit}")
        self.fabric = fabric
        self.model = model
        self.space = space
        self.overcommit = overcommit
        self._reservations: Dict[int, VCoreConfig] = {}
        self.decisions: List[AdmissionDecision] = []
        self.admitted_count = 0
        """Admitted tenants to date, maintained at decision time (no
        re-scan of ``decisions`` needed)."""
        self.already_admitted_count = 0
        """Requests refused because the tenant was already resident."""
        # Incremental per-kind reservation totals (integer, so exactly
        # equal to the scalar rescan) and the per-contract reservation
        # memo, both consulted only under perf.FAST.
        self._reserved_slices = 0
        self._reserved_banks = 0
        self._reservation_memo: Dict[Tuple[str, float], VCoreConfig] = {}
        self._sanitize_ticks = 0

    def reservation_for(self, tenant: Tenant) -> VCoreConfig:
        """The tenant's worst-case virtual core (its implicit contract)."""
        if perf.FAST:
            # Value-keyed by contract: same application and QoS goal →
            # same worst-case configuration, by determinism of the
            # performance model.
            key = (tenant.app.name, tenant.qos_goal)
            cached = self._reservation_memo.get(key)
            if cached is None:
                cached = worst_case_config(
                    tenant.app, tenant.qos_goal, self.model, self.space
                )
                self._reservation_memo[key] = cached
            return cached
        return worst_case_config(
            tenant.app, tenant.qos_goal, self.model, self.space
        )

    def _capacity(self, kind: TileKind) -> float:
        # The per-kind tile total is fixed at fabric construction, so
        # capacity is a lookup, not a scan over every tile.
        return self.fabric.kind_total(kind) * self.overcommit

    def _scan_reserved(self, kind: TileKind) -> int:
        """Reference full scan over every live reservation."""
        if kind is TileKind.SLICE:
            return sum(c.slices for c in self._reservations.values())
        return sum(c.l2_banks for c in self._reservations.values())

    def reserved(self, kind: TileKind) -> int:
        if perf.FAST:
            count = (
                self._reserved_slices
                if kind is TileKind.SLICE
                else self._reserved_banks
            )
            if sanitize.ENABLED:
                self._sanitize_ticks += 1
                if sanitize.should_sample(self._sanitize_ticks):
                    reference = self._scan_reserved(kind)
                    if count != reference:
                        sanitize.violation(
                            "shadow-recount",
                            "repro.cloud.admission.AdmissionController",
                            "reserved",
                            f"{kind.name}: counter says {count} reserved, "
                            f"full scan says {reference}",
                        )
            return count
        return self._scan_reserved(kind)

    def request(self, tenant: Tenant) -> AdmissionDecision:
        """Admit or reject a tenant; admitted reservations are tracked."""
        if tenant.tenant_id in self._reservations:
            decision = AdmissionDecision(
                tenant.tenant_id, False, None, "already admitted"
            )
            self.decisions.append(decision)
            self.already_admitted_count += 1
            return decision
        reservation = self.reservation_for(tenant)
        fits_slices = (
            self.reserved(TileKind.SLICE) + reservation.slices
            <= self._capacity(TileKind.SLICE)
        )
        fits_banks = (
            self.reserved(TileKind.L2_BANK) + reservation.l2_banks
            <= self._capacity(TileKind.L2_BANK)
        )
        if fits_slices and fits_banks:
            self._reservations[tenant.tenant_id] = reservation
            self._reserved_slices += reservation.slices
            self._reserved_banks += reservation.l2_banks
            self.admitted_count += 1
            decision = AdmissionDecision(
                tenant.tenant_id, True, reservation, "admitted"
            )
        else:
            bottleneck = "Slices" if not fits_slices else "L2 banks"
            decision = AdmissionDecision(
                tenant.tenant_id,
                False,
                reservation,
                f"insufficient {bottleneck} for worst-case reservation",
            )
        self.decisions.append(decision)
        return decision

    def release(self, tenant_id: int) -> None:
        reservation = self._reservations.pop(tenant_id, None)
        if reservation is not None:
            self._reserved_slices -= reservation.slices
            self._reserved_banks -= reservation.l2_banks

    @property
    def admitted_ids(self) -> List[int]:
        return sorted(self._reservations)
