"""The multi-tenant provider simulation.

Each provider interval:

1. arriving tenants pass admission control and receive an initial
   placement on the fabric;
2. every resident tenant's allocator (its own CASH runtime, or a
   race-to-idle reservation) decides a schedule against the tenant's
   private phase trajectory;
3. the provider resizes the tenant's spatial allocation to the
   schedule's *peak footprint* (the ``over`` configuration — time
   multiplexing within the quantum happens inside the tenant's own
   tiles), defragmenting the fabric when fragmentation blocks a
   resize;
4. tenants are billed by area-time; QoS is tracked per tenant.

Spatial isolation means tenants never disturb each other's IPC (the
paper's contrast with SMT); the shared resource is capacity, so the
interesting provider-level outputs are density (tenants served),
utilization, and revenue-per-tile — where CASH's habit of releasing
unneeded tiles pays off.

The provider loop is the engine's multi-tenant hot path.  Under
:data:`repro.perf.FAST` it routes every ground-truth IPC query through
the tiered operating-point store (tenants running the same application
phase share one table process-wide, and — when a sweep stood up the
shared tiers — fleet-wide), prefetches an arriving tenant's phase
tables at admission so warm tables span control intervals *and*
sweeps, and drains arrivals/departures from interval-keyed heaps; the
scalar recompute-everything twins remain the reference, and fixed-seed
runs are bit-identical in both modes.
"""

from __future__ import annotations

import heapq
import random
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import perf
from repro.arch.cost import CostModel, DEFAULT_COST_MODEL
from repro.arch.fabric import Fabric, FabricError
from repro.arch.vcore import ConfigurationSpace, VCoreConfig, DEFAULT_CONFIG_SPACE
from repro.baselines.race import RaceToIdleAllocator
from repro.cloud.admission import AdmissionController, AdmissionDecision
from repro.cloud.tenant import Tenant, TenantAccount
from repro.experiments.harness import Allocator, CASHAllocator, _PhaseWalker
from repro.runtime.cash import LegObservation, QoSMeasurement
from repro.runtime.optimizer import ConfigPoint, Schedule, ScheduleEntry
from repro.sim.optables import operating_point_table
from repro.sim.perfmodel import PerformanceModel, DEFAULT_PERF_MODEL
from repro.workloads.phase import Phase


def build_tenant_allocator(
    tenant: Tenant,
    reservation: VCoreConfig,
    space: ConfigurationSpace,
    cost_model: CostModel,
) -> Allocator:
    """The allocator a tenant's policy selects, bounded by its reservation.

    Shared by the dense provider loop and the event-driven service so
    both engines hand identical controller state to identical tenants.
    """
    if tenant.policy == "race":
        return RaceToIdleAllocator(
            config=reservation,
            qos_goal=tenant.qos_goal,
            cost_model=cost_model,
        )
    # The tenant's menu is bounded by its admitted reservation:
    # admission guaranteed capacity for the worst-case virtual
    # core, so every configuration within it is placeable by
    # construction (only fragmentation can interfere, and
    # defragmentation fixes that).  Bursting beyond the reservation
    # when the fabric has slack is a possible extension.
    menu = [
        config
        for config in space
        if config.slices <= reservation.slices
        and config.l2_banks <= reservation.l2_banks
    ]
    return CASHAllocator(
        configs=menu,
        qos_goal=tenant.qos_goal,
        cost_model=cost_model,
        seed=tenant.tenant_id,
    )


@dataclass
class _Resident:
    """A tenant currently placed on the fabric."""

    tenant: Tenant
    allocator: object
    walker: _PhaseWalker
    account: TenantAccount
    measurement: Optional[QoSMeasurement] = None
    current_config: Optional[VCoreConfig] = None


@dataclass(frozen=True)
class ProviderReport:
    """Aggregate outcome of a provider simulation."""

    intervals: int
    admitted: int
    rejected: int
    accounts: Dict[int, TenantAccount]
    mean_utilization: float
    defragmentations: int
    revenue_rate: float
    """Mean $/hour billed across the run (the provider's income)."""

    @property
    def mean_violation_percent(self) -> float:
        accounts = [a for a in self.accounts.values() if a.intervals > 0]
        if not accounts:
            return 0.0
        return sum(a.violation_percent for a in accounts) / len(accounts)


class CloudProvider:
    """Runs many tenants' runtimes against one shared fabric."""

    def __init__(
        self,
        fabric: Optional[Fabric] = None,
        model: PerformanceModel = DEFAULT_PERF_MODEL,
        space: ConfigurationSpace = DEFAULT_CONFIG_SPACE,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        interval_cycles: float = 2.5e5,
        noise_std_frac: float = 0.02,
        violation_margin: float = 0.03,
        overcommit: float = 1.0,
        seed: int = 0,
    ) -> None:
        self.fabric = fabric if fabric is not None else Fabric(width=24, height=24)
        self.model = model
        self.space = space
        self.cost_model = cost_model
        self.interval_cycles = interval_cycles
        self.noise_std_frac = noise_std_frac
        self.violation_margin = violation_margin
        self.admission = AdmissionController(
            self.fabric, model, space, overcommit=overcommit
        )
        self.rng = random.Random(seed)
        self._residents: Dict[int, _Resident] = {}
        self._shrink_streaks: Dict[int, int] = {}
        self.defragmentations = 0

    # ------------------------------------------------------------------
    def _build_allocator(self, tenant: Tenant, reservation: VCoreConfig):
        return build_tenant_allocator(
            tenant, reservation, self.space, self.cost_model
        )

    def _admit(self, tenant: Tenant) -> Optional[AdmissionDecision]:
        decision = self.admission.request(tenant)
        if not decision.admitted:
            return decision
        if perf.FAST:
            # Prefetch the tenant's phase tables at admission: warm
            # surfaces arrive from the shared store in one guarded
            # lookup per phase, instead of lazy first-touches spread
            # across the tenant's first control intervals.  Tables are
            # value-keyed, so this changes when they are built, never
            # what they contain.
            for phase in tenant.app.phases:
                operating_point_table(
                    phase, self.model, self.space, self.cost_model
                )
        self._residents[tenant.tenant_id] = _Resident(
            tenant=tenant,
            allocator=self._build_allocator(tenant, decision.reservation),
            walker=_PhaseWalker(tenant.app),
            account=TenantAccount(tenant_id=tenant.tenant_id),
        )
        return decision

    def _depart(self, tenant_id: int) -> None:
        self._residents.pop(tenant_id, None)
        self.admission.release(tenant_id)
        if tenant_id in self.fabric.allocations:
            self.fabric.release(tenant_id)

    def _place(self, tenant_id: int, config: VCoreConfig) -> bool:
        """Ensure the tenant's allocation can host ``config``.

        Placement hysteresis: a held allocation that is a superset of
        the request hosts it in place (the runtime reshapes *within*
        the tenant's tiles, which costs nothing at the fabric level);
        the allocation grows on demand and shrinks only when the
        request has been much smaller than the holding for a while —
        resizing the spatial allocation every interval would churn the
        fabric into fragmentation.
        """
        current = self.fabric.allocations.get(tenant_id)
        if current is not None:
            held = current.config
            hosts = (
                held.slices >= config.slices and held.l2_banks >= config.l2_banks
            )
            if hosts:
                shrink_streak = self._shrink_streaks.get(tenant_id, 0)
                if config.tiles < 0.5 * held.tiles:
                    shrink_streak += 1
                else:
                    shrink_streak = 0
                self._shrink_streaks[tenant_id] = shrink_streak
                if shrink_streak < 8:
                    return True
                # Sustained small footprint: release the slack.
                self._shrink_streaks[tenant_id] = 0
        target = config
        if current is not None and not (
            current.config.slices >= config.slices
            and current.config.l2_banks >= config.l2_banks
        ):
            # Growing: take the component-wise maximum so the tenant
            # keeps hosting its smaller legs too.
            target = VCoreConfig(
                slices=max(current.config.slices, config.slices),
                l2_kb=max(current.config.l2_kb, config.l2_kb),
            )
        try:
            if current is None:
                self.fabric.allocate(tenant_id, target)
            else:
                self.fabric.reallocate(tenant_id, target)
            return True
        except FabricError:
            # Fragmentation: reschedule everyone (Section III-A) and
            # retry once.
            self.defragmentations += 1
            try:
                self.fabric.defragment()
                if tenant_id in self.fabric.allocations:
                    self.fabric.reallocate(tenant_id, target)
                else:
                    self.fabric.allocate(tenant_id, target)
                return True
            except FabricError:
                # The resize failed; if the tenant still holds its old
                # allocation it can keep running there.
                return tenant_id in self.fabric.allocations and (
                    self.fabric.allocations[tenant_id].config.slices
                    >= config.slices
                    and self.fabric.allocations[tenant_id].config.l2_banks
                    >= config.l2_banks
                )

    def _peak_footprint(self, schedule: Schedule) -> Optional[VCoreConfig]:
        configs = schedule.configs()
        if not configs:
            return None
        return max(configs, key=lambda c: c.tiles)

    def _noisy(self, value: float) -> float:
        if self.noise_std_frac <= 0.0:
            return value
        return max(value * (1.0 + self.rng.gauss(0.0, self.noise_std_frac)), 0.0)

    def _true_points(self, phase: Phase) -> Sequence[ConfigPoint]:
        if perf.FAST:
            # The memoized table carries the same points (bit-identical
            # speedups, same order); every tenant in the same phase of
            # the same application shares one table process-wide.
            return operating_point_table(
                phase, self.model, self.space, self.cost_model
            )
        return [
            ConfigPoint(
                config=config,
                speedup=self.model.ipc(phase, config),
                cost_rate=config.cost_rate(self.cost_model),
            )
            for config in self.space
        ]

    def _ipc_of(self, phase: Phase, config: VCoreConfig) -> float:
        """Model IPC, served from the operating-point table when fast."""
        if perf.FAST:
            ipc = operating_point_table(
                phase, self.model, self.space, self.cost_model
            ).get_ipc(config)
            if ipc is not None:
                return ipc
        return self.model.ipc(phase, config)

    def _run_tenant_interval(self, resident: _Resident) -> None:
        tenant = resident.tenant
        _, phase = resident.walker.current_phase()
        points = self._true_points(phase)
        schedule = resident.allocator.decide(resident.measurement, points)

        footprint = self._peak_footprint(schedule)
        placed = footprint is None or self._place(tenant.tenant_id, footprint)
        if not placed:
            # Capacity squeeze: keep whatever allocation the tenant
            # already holds and run the quantum there (degraded
            # service, honestly measured), or wait if it holds nothing.
            existing = self.fabric.allocations.get(tenant.tenant_id)
            if existing is None:
                resident.account.waiting_intervals += 1
                resident.account.intervals += 1
                resident.account.violations += 1
                resident.measurement = QoSMeasurement(
                    overall_qos=0.0, legs=(), signature=()
                )
                return
            resident.account.waiting_intervals += 1
            held = ConfigPoint(
                config=existing.config,
                speedup=0.0,
                cost_rate=existing.config.cost_rate(self.cost_model),
            )
            schedule = Schedule(entries=(ScheduleEntry(held, 1.0),))
            footprint = existing.config

        # Execute the legs, ending the interval at a phase boundary so
        # no measurement (or its counter signature) mixes two phases —
        # the same discipline as the single-tenant harness.
        total_instructions = 0.0
        elapsed = 0.0
        dollars_time = 0.0  # Σ rate × cycles
        legs: List[LegObservation] = []
        crossed = False
        for entry in schedule.entries:
            if crossed or entry.fraction <= 0:
                continue
            leg_cycles = entry.fraction * self.interval_cycles
            if entry.point.is_idle:
                elapsed += leg_cycles
                legs.append(LegObservation(None, entry.fraction, 0.0))
                continue
            config = entry.point.config
            executed, used, crossed = resident.walker.run_cycles(
                leg_cycles,
                lambda p, config=config: self._ipc_of(p, config),
                stop_at_boundary=True,
            )
            total_instructions += executed
            elapsed += used
            dollars_time += config.cost_rate(self.cost_model) * used
            leg_qos = executed / used if used > 0 else 0.0
            legs.append(
                LegObservation(config, entry.fraction, self._noisy(leg_qos))
            )
        elapsed = max(elapsed, 1.0)
        dollars = dollars_time / elapsed  # mean $/hr over the interval
        true_qos = total_instructions / elapsed
        signature = (
            self._noisy(phase.mem_refs_per_inst),
            self._noisy(phase.l1_miss_rate),
            self._noisy(phase.mispredict_rate),
        )
        resident.measurement = QoSMeasurement(
            overall_qos=self._noisy(true_qos),
            legs=tuple(legs),
            signature=signature,
        )
        account = resident.account
        account.intervals += 1
        account.dollars_time += dollars
        if footprint is not None:
            account.footprints.append(footprint)
        if true_qos < tenant.qos_goal * (1.0 - self.violation_margin):
            account.violations += 1

    # ------------------------------------------------------------------
    def run(self, tenants: Sequence[Tenant], intervals: int) -> ProviderReport:
        """Simulate ``intervals`` provider intervals for the tenants."""
        if intervals <= 0:
            raise ValueError(f"intervals must be positive, got {intervals}")
        # Arrival queue.  The FAST path keeps a heap keyed by
        # (arrival_interval, submission index); the reference path keeps
        # the seed's stable sort, drained through a deque so even the
        # scalar twin is O(n log n) instead of the old O(n²)
        # ``list.pop(0)``.  ``sorted`` is stable, so both orders are
        # identical tenant for tenant.
        arrival_heap: List[Tuple[int, int, Tenant]] = []
        pending: deque[Tenant] = deque()
        if perf.FAST:
            arrival_heap = [
                (tenant.arrival_interval, order, tenant)
                for order, tenant in enumerate(tenants)
            ]
            heapq.heapify(arrival_heap)
        else:
            pending = deque(sorted(tenants, key=lambda t: t.arrival_interval))
        # Departure queue (FAST): pushed at admission, popped by
        # interval, instead of rescanning every resident every interval.
        departure_heap: List[Tuple[int, int]] = []
        accounts: Dict[int, TenantAccount] = {}
        rejected = 0
        utilization_sum = 0.0
        # The controller maintains its admitted total at decision time;
        # snapshotting it here turns "admitted during this run" into a
        # subtraction instead of a per-run re-scan of every decision.
        admitted_before = self.admission.admitted_count

        for interval in range(intervals):
            # Departures first, then arrivals.
            if perf.FAST:
                while departure_heap and departure_heap[0][0] <= interval:
                    _, tenant_id = heapq.heappop(departure_heap)
                    resident = self._residents.get(tenant_id)
                    if resident is None:
                        continue
                    accounts[tenant_id] = resident.account
                    self._depart(tenant_id)
            else:
                for resident in list(self._residents.values()):
                    departure = resident.tenant.departure_interval
                    if departure is not None and interval >= departure:
                        accounts[resident.tenant.tenant_id] = resident.account
                        self._depart(resident.tenant.tenant_id)
            while True:
                if perf.FAST:
                    if not arrival_heap or arrival_heap[0][0] > interval:
                        break
                    tenant = heapq.heappop(arrival_heap)[2]
                else:
                    if not pending or pending[0].arrival_interval > interval:
                        break
                    tenant = pending.popleft()
                decision = self._admit(tenant)
                if decision is not None and not decision.admitted:
                    rejected += 1
                elif (
                    decision is not None
                    and tenant.departure_interval is not None
                ):
                    # Consumed only by the FAST departure drain above;
                    # the reference path scans residents instead.
                    heapq.heappush(
                        departure_heap,
                        (tenant.departure_interval, tenant.tenant_id),
                    )

            for resident in self._residents.values():
                self._run_tenant_interval(resident)
            utilization_sum += self.fabric.utilization()

        # Final accounting.
        for resident in self._residents.values():
            accounts[resident.tenant.tenant_id] = resident.account
        total_dollars_time = sum(a.dollars_time for a in accounts.values())
        total_intervals = max(intervals, 1)
        return ProviderReport(
            intervals=intervals,
            admitted=self.admission.admitted_count - admitted_before,
            rejected=rejected,
            accounts=accounts,
            mean_utilization=utilization_sum / total_intervals,
            defragmentations=self.defragmentations,
            revenue_rate=total_dollars_time / total_intervals,
        )
