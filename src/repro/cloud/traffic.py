"""Open-loop tenant traffic: who is resident and active, decided up front.

The event-driven provider service (:mod:`repro.cloud.service`) needs to
know, for every tenant, *when work exists* — independently of how the
provider responds (open-loop traffic, the CuttleSys/cluster-trace
framing).  This module materializes that demand once, from a frozen
sweepable :class:`TrafficSpec`, into per-tenant activity timelines:

* **churn** — tenants arrive over the horizon as a Poisson-ish stream
  (exponential inter-arrival gaps) and live for a heavy-tailed (Pareto)
  lifetime, so the resident population turns over continuously;
* **bursts** — within its residency a tenant alternates MMPP-style
  between active bursts (geometric-ish lengths) and idle gaps;
* **diurnal rate curves** — a seeded sinusoid modulates the hazard of
  leaving the idle state, so fleet demand swells and ebbs periodically;
* **flash crowds** — short fleet-wide windows multiply that hazard, so
  many tenants wake at once.

Everything is derived deterministically from ``spec.seed``: fleet-level
draws (arrival gaps, lifetimes, flash-crowd windows) come from one
stream, and each tenant's burst process comes from its own stream keyed
by ``(seed, tenant_id)``.  Per-tenant streams are what make the dense
reference loop and the event-heap engine bit-identical — no draw
depends on which *other* tenants happen to be stepped in between.

The timelines are plain sorted tuples of half-open ``[start, stop)``
bursts; :meth:`TenantTraffic.is_active` and
:meth:`TenantTraffic.next_active` answer point and successor queries by
bisection, so the event engine can jump over idle stretches exactly.
"""

from __future__ import annotations

import math
import random
import sys
from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cloud.tenant import Tenant
from repro.experiments.harness import qos_target_for
from repro.workloads.apps import get_app
from repro.workloads.phase import PhasedApplication

#: Throughput-QoS applications only: the provider loop models latency
#: apps (apache, mailserver) with the closed-loop harness, not here.
DEFAULT_TRAFFIC_APPS: Tuple[str, ...] = (
    "bzip",
    "gcc",
    "hmmer",
    "lib",
    "mcf",
    "omnetpp",
    "sjeng",
)

_AFTER_START = sys.maxsize
"""Bisection sentinel: ``(t, _AFTER_START)`` sorts after every burst
that starts at ``t``."""


@dataclass(frozen=True)
class TrafficSpec:
    """A frozen, picklable description of one traffic scenario.

    Like ``CellSpec``, instances are sweep axes: hashable, comparable
    and safe to ship to worker processes.
    """

    tenants: int
    horizon: int
    seed: int = 0
    apps: Tuple[str, ...] = DEFAULT_TRAFFIC_APPS
    policies: Tuple[str, ...] = ("cash", "race")
    arrival_span: float = 0.6
    """Fraction of the horizon over which arrivals are spread."""
    lifetime_shape: float = 1.4
    """Pareto tail index of tenant lifetimes (heavier when closer to 1)."""
    lifetime_min: float = 60.0
    """Minimum tenant lifetime, in provider intervals."""
    activity: float = 0.2
    """Long-run fraction of resident intervals spent in a burst."""
    mean_burst: float = 8.0
    """Mean active-burst length, in provider intervals."""
    diurnal_period: int = 0
    """Period of the diurnal demand sinusoid (0 disables it)."""
    diurnal_amplitude: float = 0.6
    """Peak-to-mean swing of the diurnal curve, in (0, 1)."""
    flash_crowds: int = 0
    """Number of fleet-wide flash-crowd windows."""
    flash_duration: int = 32
    """Length of each flash-crowd window, in provider intervals."""
    flash_boost: float = 6.0
    """Idle-exit hazard multiplier inside a flash-crowd window."""

    def __post_init__(self) -> None:
        if self.tenants <= 0:
            raise ValueError(f"tenants must be positive, got {self.tenants}")
        if self.horizon <= 0:
            raise ValueError(f"horizon must be positive, got {self.horizon}")
        if not self.apps:
            raise ValueError("apps must not be empty")
        if not self.policies:
            raise ValueError("policies must not be empty")
        for policy in self.policies:
            if policy not in ("cash", "race"):
                raise ValueError(f"unknown policy {policy!r}")
        if not 0.0 < self.arrival_span <= 1.0:
            raise ValueError(
                f"arrival_span must be in (0, 1], got {self.arrival_span}"
            )
        if self.lifetime_shape <= 1.0:
            raise ValueError(
                "lifetime_shape must exceed 1 (finite mean), "
                f"got {self.lifetime_shape}"
            )
        if self.lifetime_min < 1.0:
            raise ValueError(
                f"lifetime_min must be >= 1, got {self.lifetime_min}"
            )
        if not 0.0 < self.activity <= 1.0:
            raise ValueError(
                f"activity must be in (0, 1], got {self.activity}"
            )
        if self.mean_burst < 1.0:
            raise ValueError(
                f"mean_burst must be >= 1, got {self.mean_burst}"
            )
        if self.diurnal_period < 0:
            raise ValueError(
                f"diurnal_period must be non-negative, got {self.diurnal_period}"
            )
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError(
                f"diurnal_amplitude must be in [0, 1), got {self.diurnal_amplitude}"
            )
        if self.flash_crowds < 0:
            raise ValueError(
                f"flash_crowds must be non-negative, got {self.flash_crowds}"
            )
        if self.flash_crowds > 0 and self.flash_duration <= 0:
            raise ValueError(
                f"flash_duration must be positive, got {self.flash_duration}"
            )
        if self.flash_boost < 1.0:
            raise ValueError(
                f"flash_boost must be >= 1, got {self.flash_boost}"
            )


@dataclass(frozen=True)
class TenantTraffic:
    """One tenant plus its activity timeline.

    ``bursts`` is a sorted tuple of half-open ``[start, stop)`` interval
    ranges within the tenant's residency; gaps between bursts are idle
    intervals during which the tenant is resident but has no work.
    """

    tenant: Tenant
    bursts: Tuple[Tuple[int, int], ...]

    def is_active(self, interval: int) -> bool:
        """Does the tenant have work queued at ``interval``?"""
        index = bisect_right(self.bursts, (interval, _AFTER_START)) - 1
        if index < 0:
            return False
        start, stop = self.bursts[index]
        return start <= interval < stop

    def next_active(self, interval: int) -> Optional[int]:
        """The first active interval at or after ``interval`` (None if none)."""
        index = bisect_right(self.bursts, (interval, _AFTER_START)) - 1
        if index >= 0 and interval < self.bursts[index][1]:
            return interval
        index += 1
        if index < len(self.bursts):
            return self.bursts[index][0]
        return None

    @property
    def active_intervals(self) -> int:
        """Total intervals of queued work across the residency."""
        return sum(stop - start for start, stop in self.bursts)


@dataclass(frozen=True)
class TrafficScenario:
    """A full generated scenario: every tenant's timeline plus metadata."""

    spec: TrafficSpec
    tenants: Tuple[TenantTraffic, ...]
    flash_windows: Tuple[Tuple[int, int], ...]

    @property
    def horizon(self) -> int:
        return self.spec.horizon

    @property
    def total_active_intervals(self) -> int:
        return sum(t.active_intervals for t in self.tenants)


def _tenant_stream(seed: int, tenant_id: int) -> random.Random:
    """An independent, reproducible RNG stream for one tenant."""
    return random.Random((seed * 1_000_003 + 7919 * (tenant_id + 1)) & (2**63 - 1))


def _demand_boost(
    spec: TrafficSpec,
    flash_windows: Tuple[Tuple[int, int], ...],
    interval: int,
) -> float:
    """Multiplier on the idle-exit hazard at ``interval`` (>= a floor)."""
    boost = 1.0
    if spec.diurnal_period > 0:
        boost += spec.diurnal_amplitude * math.sin(
            2.0 * math.pi * interval / spec.diurnal_period
        )
    for start, stop in flash_windows:
        if start <= interval < stop:
            boost *= spec.flash_boost
            break
    return max(boost, 0.05)


def _tenant_bursts(
    spec: TrafficSpec,
    flash_windows: Tuple[Tuple[int, int], ...],
    rng: random.Random,
    arrival: int,
    end: int,
) -> Tuple[Tuple[int, int], ...]:
    """Alternate active bursts and idle gaps across ``[arrival, end)``.

    The first burst starts at arrival (tenants arrive *with* work);
    afterwards each idle gap is an exponential draw whose mean shrinks
    with the demand boost at the gap's start, giving MMPP-style
    clustering under diurnal peaks and flash crowds.
    """
    mean_idle = spec.mean_burst * (1.0 - spec.activity) / spec.activity
    mean_extra = max(spec.mean_burst - 1.0, 0.0)
    bursts: List[Tuple[int, int]] = []
    cursor = arrival
    start = arrival
    while start < end:
        length = 1 + int(rng.expovariate(1.0) * mean_extra)
        stop = min(start + length, end)
        bursts.append((start, stop))
        cursor = stop
        if mean_idle <= 0.0:
            start = cursor  # activity == 1: back-to-back bursts
            if bursts and start < end:
                # Merge into one solid burst instead of stacking.
                bursts[-1] = (bursts[-1][0], end)
                break
            continue
        boost = _demand_boost(spec, flash_windows, cursor)
        gap = 1 + int(rng.expovariate(1.0) * mean_idle / boost)
        start = cursor + gap
    return tuple(bursts)


def generate_traffic(spec: TrafficSpec) -> TrafficScenario:
    """Materialize the scenario described by ``spec``.

    Deterministic: the same spec always yields the same scenario, in
    any process, under either engine mode.
    """
    fleet = random.Random(spec.seed * 1_000_003 + 0x5EED)

    # Flash-crowd windows are fleet-level state, drawn first so their
    # count never shifts the arrival stream.
    starts = sorted(
        fleet.randrange(spec.horizon) for _ in range(spec.flash_crowds)
    )
    flash_windows = tuple(
        (start, min(start + spec.flash_duration, spec.horizon))
        for start in starts
    )

    # Arrivals: exponential gaps accumulated as floats, truncated to
    # intervals.  Accumulation is monotone, so tenant ids ascend with
    # arrival time — the invariant the engines' event orders rely on.
    mean_gap = spec.arrival_span * spec.horizon / spec.tenants
    apps: Dict[str, PhasedApplication] = {}
    goals: Dict[str, float] = {}
    timelines: List[TenantTraffic] = []
    clock = 0.0
    for tenant_id in range(spec.tenants):
        arrival = min(int(clock), spec.horizon - 1)
        clock += fleet.expovariate(1.0) * mean_gap
        lifetime = int(spec.lifetime_min * fleet.paretovariate(spec.lifetime_shape))
        departure: Optional[int] = arrival + max(lifetime, 1)
        if departure >= spec.horizon:
            departure = None  # resident to the end of the simulation
        app_name = spec.apps[tenant_id % len(spec.apps)]
        app = apps.get(app_name)
        if app is None:
            app = get_app(app_name)
            apps[app_name] = app
            goals[app_name] = qos_target_for(app)
        tenant = Tenant(
            tenant_id=tenant_id,
            app=app,
            qos_goal=goals[app_name],
            policy=spec.policies[tenant_id % len(spec.policies)],
            arrival_interval=arrival,
            departure_interval=departure,
        )
        end = spec.horizon if departure is None else departure
        bursts = _tenant_bursts(
            spec,
            flash_windows,
            _tenant_stream(spec.seed, tenant_id),
            arrival,
            end,
        )
        timelines.append(TenantTraffic(tenant=tenant, bursts=bursts))

    return TrafficScenario(
        spec=spec, tenants=tuple(timelines), flash_windows=flash_windows
    )
