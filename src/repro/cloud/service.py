"""The event-driven always-on provider service.

The dense provider loop (:mod:`repro.cloud.provider`) advances *every*
resident tenant through *every* control interval — O(tenants ×
intervals) even when most tenants are idle between bursts or their
controllers converged long ago.  At the ROADMAP's cloud scale (10k
tenants, 100k-interval horizons, heavy churn) almost all of that work
is literally nothing happening.

This module rebuilds the loop as a discrete-event service behind the
usual FAST/scalar-twin discipline:

* **one min-heap of events.**  ``(interval, kind, tenant_id)`` entries
  — departures before arrivals before controller steps within an
  interval, ascending tenant id within a kind — reproduce exactly the
  order the dense reference loop visits tenants in, so both engines
  mutate the shared fabric identically.
* **controller updates only when there is work.**  A tenant's
  Kalman/Q-learning step runs only at intervals where its open-loop
  traffic (:mod:`repro.cloud.traffic`) queued work; between bursts the
  tenant is *parked* (its tiles released back to the fabric) and the
  engine jumps the clock over the gap.
* **convergence hibernation.**  A tenant whose schedule has been
  byte-identical for ``converged_after`` consecutive steps stops
  consulting its allocator (and drawing measurement noise) and replays
  the converged schedule until the phase changes or a ``reprobe_every``
  countdown fires — the same deterministic rule in both engines.
* **idle stretches skipped exactly.**  All per-interval accounting the
  dense loop accumulates (tenant-intervals, occupied tile-intervals)
  is kept in integers, so multiplying over a skipped stretch equals
  per-interval accumulation bit for bit; per-tenant noise streams are
  keyed by tenant id, so skipping one tenant never perturbs another.

The dense twin lives on as :meth:`ServiceEngine._run_dense_reference`
(scalar mode); fixed-seed reports are bit-identical in both modes.

Two operational features make week-long simulated horizons practical:
a bounded ring / JSONL streaming metrics sink (:class:`MetricsSink`)
replaces end-of-run-only reporting, and schema-versioned,
content-checksummed checkpoints (:meth:`ServiceEngine.checkpoint` /
:meth:`ServiceEngine.restore`) snapshot fabric + residents + RNG +
heaps so a horizon can resume across runs.
"""

from __future__ import annotations

import copy
import hashlib
import heapq
import json
import os
import pickle
import random
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

from repro import perf
from repro.arch.cost import CostModel, DEFAULT_COST_MODEL
from repro.arch.fabric import Allocation, Fabric, FabricError
from repro.arch.vcore import ConfigurationSpace, VCoreConfig, DEFAULT_CONFIG_SPACE
from repro.cloud.admission import AdmissionController
from repro.cloud.provider import build_tenant_allocator
from repro.cloud.traffic import TenantTraffic, TrafficScenario
from repro.experiments.harness import Allocator, _PhaseWalker
from repro.runtime.cash import LegObservation, QoSMeasurement
from repro.runtime.optimizer import ConfigPoint, Schedule, ScheduleEntry
from repro.sim.optables import operating_point_table
from repro.sim.perfmodel import PerformanceModel, DEFAULT_PERF_MODEL
from repro.workloads.phase import Phase

# Event kinds, ordered so a heap pop sequence within one interval
# matches the dense loop: departures, then arrivals, then steps.
_EVENT_DEPART = 0
_EVENT_ARRIVE = 1
_EVENT_STEP = 2

CHECKPOINT_SCHEMA = 1
"""Bump when the pickled engine state changes shape."""

_CHECKPOINT_MAGIC = b"CASHSVC1"
_DIGEST_BYTES = 32  # sha256


class CheckpointError(RuntimeError):
    """A service checkpoint could not be validated or restored."""


@dataclass
class ServiceAccount:
    """Per-tenant billing and QoS bookkeeping (integer-first).

    Unlike the dense loop's ``TenantAccount`` (which appends every
    interval's footprint to a list), footprint area is accumulated as
    an integer tile total so a million-interval tenant costs O(1)
    memory and stretch accounting stays exact.
    """

    tenant_id: int
    active_intervals: int = 0
    violations: int = 0
    dollars_time: float = 0.0  # Σ mean $/hr over active intervals
    waiting_intervals: int = 0
    footprint_tiles: int = 0  # Σ peak-footprint tiles over active intervals

    @property
    def violation_percent(self) -> float:
        if self.active_intervals <= 0:
            return 0.0
        return 100.0 * self.violations / self.active_intervals

    @property
    def mean_cost_rate(self) -> float:
        if self.active_intervals <= 0:
            return 0.0
        return self.dollars_time / self.active_intervals

    @property
    def mean_footprint_tiles(self) -> float:
        if self.active_intervals <= 0:
            return 0.0
        return self.footprint_tiles / self.active_intervals


@dataclass(frozen=True)
class ServiceReport:
    """Aggregate outcome of a service run (or a prefix of one)."""

    intervals: int
    admitted: int
    rejected: int
    accounts: Dict[int, ServiceAccount]
    tenant_intervals: int
    """Σ over simulated intervals of the resident-tenant count — the
    work the dense loop would have iterated, and the throughput unit
    (tenant-intervals/second) the benchmarks report."""
    active_steps: int
    """Controller steps actually executed (tenant active)."""
    decide_steps: int
    """Steps that consulted the allocator (not hibernation replays)."""
    utilization_tile_intervals: int
    fabric_tiles: int
    defragmentations: int

    @property
    def mean_utilization(self) -> float:
        denom = self.fabric_tiles * self.intervals
        if denom <= 0:
            return 0.0
        return self.utilization_tile_intervals / denom

    @property
    def revenue_rate(self) -> float:
        """Mean $/hour billed across the run (the provider's income)."""
        if self.intervals <= 0:
            return 0.0
        total = 0.0
        for tenant_id in sorted(self.accounts):
            total += self.accounts[tenant_id].dollars_time
        return total / self.intervals

    @property
    def mean_violation_percent(self) -> float:
        percents = [
            self.accounts[tenant_id].violation_percent
            for tenant_id in sorted(self.accounts)
            if self.accounts[tenant_id].active_intervals > 0
        ]
        if not percents:
            return 0.0
        return sum(percents) / len(percents)


@dataclass(eq=False)
class MetricsSink:
    """Streaming metric export: a bounded in-memory ring, plus JSONL.

    The engine emits one record per *eventful* interval (and one per
    skipped stretch in event mode), so observability never requires
    holding a full run's history: the ring keeps the trailing window
    and the optional JSONL file streams everything.
    """

    capacity: int = 4096
    jsonl_path: Optional[str] = None
    records: Deque[Dict[str, object]] = field(init=False)
    emitted: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"capacity must be positive, got {self.capacity}")
        self.records = deque(maxlen=self.capacity)

    def emit(self, record: Dict[str, object]) -> None:
        self.records.append(record)
        self.emitted += 1
        if self.jsonl_path is not None:
            with open(self.jsonl_path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(record, sort_keys=True) + "\n")


@dataclass
class _ServiceResident:
    """A tenant currently admitted to the service."""

    traffic: TenantTraffic
    allocator: Allocator
    walker: _PhaseWalker
    account: ServiceAccount
    rng: random.Random
    """The tenant's private measurement-noise stream.  Keyed by tenant
    id (not shared fleet-wide like the dense loop's provider RNG) so
    skipping other tenants' idle intervals cannot shift this one's
    draws — the property the whole event engine rests on."""
    measurement: Optional[QoSMeasurement] = None
    last_schedule: Optional[Schedule] = None
    stable_steps: int = 0
    hibernating: bool = False
    hibernation_phase: Optional[str] = None
    probe_countdown: int = 0
    parked_allocation: Optional[Allocation] = None
    """The exact region released at the last park, kept so the next
    burst can re-seat on the same tiles in O(region) instead of paying
    the fabric's seed search again."""


def _noise_stream(seed: int, tenant_id: int) -> random.Random:
    """Per-tenant noise RNG, independent of the traffic streams."""
    return random.Random(
        (seed * 2_654_435_761 + 97_531 * (tenant_id + 1) + 0xC0FFEE) & (2**63 - 1)
    )


class ServiceEngine:
    """Runs a traffic scenario's tenants against one shared fabric.

    Under :data:`repro.perf.FAST` the engine is event-driven; with fast
    paths disabled it runs the dense scalar reference loop.  A single
    engine instance sticks with whichever mode its first ``run`` used
    (mixing them mid-horizon would be meaningless); fresh engines built
    from the same scenario produce bit-identical reports in either
    mode.
    """

    def __init__(
        self,
        scenario: TrafficScenario,
        fabric: Optional[Fabric] = None,
        model: PerformanceModel = DEFAULT_PERF_MODEL,
        space: ConfigurationSpace = DEFAULT_CONFIG_SPACE,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        interval_cycles: float = 2.5e5,
        noise_std_frac: float = 0.02,
        violation_margin: float = 0.03,
        overcommit: float = 1.0,
        noise_seed: Optional[int] = None,
        converged_after: int = 12,
        reprobe_every: int = 48,
        metrics: Optional[MetricsSink] = None,
    ) -> None:
        if converged_after < 0:
            raise ValueError(
                f"converged_after must be non-negative, got {converged_after}"
            )
        if reprobe_every <= 0:
            raise ValueError(
                f"reprobe_every must be positive, got {reprobe_every}"
            )
        self.scenario = scenario
        self.fabric = fabric if fabric is not None else Fabric(width=24, height=24)
        self.model = model
        self.space = space
        self.cost_model = cost_model
        self.interval_cycles = interval_cycles
        self.noise_std_frac = noise_std_frac
        self.violation_margin = violation_margin
        self.converged_after = converged_after
        self.reprobe_every = reprobe_every
        self.metrics = metrics
        self.noise_seed = (
            scenario.spec.seed if noise_seed is None else noise_seed
        )
        self.admission = AdmissionController(
            self.fabric, model, space, overcommit=overcommit
        )
        self.defragmentations = 0
        self._residents: Dict[int, _ServiceResident] = {}
        self._shrink_streaks: Dict[int, int] = {}
        self._settled: Dict[int, ServiceAccount] = {}
        self._admitted = 0
        self._rejected = 0
        self._cursor = 0  # next interval to simulate
        self._mode: Optional[str] = None
        self._tenant_intervals = 0
        self._util_tile_intervals = 0
        self._active_steps = 0
        self._decide_steps = 0
        self._open_violations = 0  # reset at every interval close
        self._open_dollars = 0.0
        # Arrival stream, ascending (arrival_interval, tenant_id).  The
        # dense twin drains it through a cursor; the event twin seeds
        # its heap from the un-drained suffix on first use.
        self._arrivals: List[TenantTraffic] = sorted(
            scenario.tenants,
            key=lambda t: (t.tenant.arrival_interval, t.tenant.tenant_id),
        )
        self._arrival_cursor = 0
        self._traffic_by_id: Dict[int, TenantTraffic] = {
            t.tenant.tenant_id: t for t in scenario.tenants
        }
        self._heap: List[Tuple[int, int, int]] = []
        self._heap_primed = False

    # ------------------------------------------------------------------
    # admission / settlement
    # ------------------------------------------------------------------
    def _admit(self, traffic: TenantTraffic) -> bool:
        tenant = traffic.tenant
        decision = self.admission.request(tenant)
        if not decision.admitted or decision.reservation is None:
            self._rejected += 1
            return False
        self._admitted += 1
        if perf.FAST:
            # Prefetch the tenant's phase tables at admission (same
            # discipline as the dense provider): warm, value-keyed
            # surfaces change when tables are built, never what they
            # contain.
            for phase in tenant.app.phases:
                operating_point_table(
                    phase, self.model, self.space, self.cost_model
                )
        self._residents[tenant.tenant_id] = _ServiceResident(
            traffic=traffic,
            allocator=build_tenant_allocator(
                tenant, decision.reservation, self.space, self.cost_model
            ),
            walker=_PhaseWalker(tenant.app),
            account=ServiceAccount(tenant_id=tenant.tenant_id),
            rng=_noise_stream(self.noise_seed, tenant.tenant_id),
        )
        return True

    def _settle(self, tenant_id: int) -> None:
        resident = self._residents.pop(tenant_id)
        self._settled[tenant_id] = resident.account
        self.admission.release(tenant_id)
        if self.fabric.has_allocation(tenant_id):
            self.fabric.release(tenant_id)
        self._shrink_streaks.pop(tenant_id, None)

    # ------------------------------------------------------------------
    # per-step machinery (shared verbatim by both engine modes)
    # ------------------------------------------------------------------
    def _true_points(self, phase: Phase) -> Sequence[ConfigPoint]:
        if perf.FAST:
            return operating_point_table(
                phase, self.model, self.space, self.cost_model
            )
        return [
            ConfigPoint(
                config=config,
                speedup=self.model.ipc(phase, config),
                cost_rate=config.cost_rate(self.cost_model),
            )
            for config in self.space
        ]

    def _ipc_of(self, phase: Phase, config: VCoreConfig) -> float:
        if perf.FAST:
            ipc = operating_point_table(
                phase, self.model, self.space, self.cost_model
            ).get_ipc(config)
            if ipc is not None:
                return ipc
        return self.model.ipc(phase, config)

    def _noisy(self, resident: _ServiceResident, value: float) -> float:
        if self.noise_std_frac <= 0.0:
            return value
        return max(
            value * (1.0 + resident.rng.gauss(0.0, self.noise_std_frac)), 0.0
        )

    def _peak_footprint(self, schedule: Schedule) -> Optional[VCoreConfig]:
        configs = schedule.configs()
        if not configs:
            return None
        return max(configs, key=lambda c: c.tiles)

    def _place(self, tenant_id: int, config: VCoreConfig) -> bool:
        """Placement with hysteresis — the dense provider's rules."""
        current = self.fabric.allocation_for(tenant_id)
        if current is not None:
            held = current.config
            hosts = (
                held.slices >= config.slices and held.l2_banks >= config.l2_banks
            )
            if hosts:
                shrink_streak = self._shrink_streaks.get(tenant_id, 0)
                if config.tiles < 0.5 * held.tiles:
                    shrink_streak += 1
                else:
                    shrink_streak = 0
                self._shrink_streaks[tenant_id] = shrink_streak
                if shrink_streak < 8:
                    return True
                self._shrink_streaks[tenant_id] = 0
        target = config
        if current is not None and not (
            current.config.slices >= config.slices
            and current.config.l2_banks >= config.l2_banks
        ):
            target = VCoreConfig(
                slices=max(current.config.slices, config.slices),
                l2_kb=max(current.config.l2_kb, config.l2_kb),
            )
        try:
            if current is None:
                self.fabric.allocate(tenant_id, target)
            else:
                self.fabric.reallocate(tenant_id, target)
            return True
        except FabricError:
            self.defragmentations += 1
            try:
                self.fabric.defragment()
                if self.fabric.has_allocation(tenant_id):
                    self.fabric.reallocate(tenant_id, target)
                else:
                    self.fabric.allocate(tenant_id, target)
                return True
            except FabricError:
                held_now = self.fabric.allocation_for(tenant_id)
                return held_now is not None and (
                    held_now.config.slices >= config.slices
                    and held_now.config.l2_banks >= config.l2_banks
                )

    def _decide(
        self, resident: _ServiceResident, phase: Phase
    ) -> Tuple[Schedule, bool]:
        """The step's schedule, and whether it was a hibernation replay.

        Hibernation is purely deterministic: a schedule repeated for
        ``converged_after`` consecutive steps is replayed — skipping
        the allocator *and* the measurement-noise draws — until the
        phase changes or the reprobe countdown expires.  Both engine
        modes run this exact code, so they replay the exact same steps.
        """
        if resident.hibernating:
            _, current = resident.walker.current_phase()
            if current.name != resident.hibernation_phase:
                resident.hibernating = False
                resident.stable_steps = 0
            elif resident.probe_countdown <= 0:
                resident.hibernating = False
                resident.stable_steps = 0
            else:
                resident.probe_countdown -= 1
                assert resident.last_schedule is not None
                return resident.last_schedule, True
        self._decide_steps += 1
        points = self._true_points(phase)
        schedule = resident.allocator.decide(resident.measurement, points)
        if resident.last_schedule is not None and schedule == resident.last_schedule:
            resident.stable_steps += 1
        else:
            resident.stable_steps = 0
        resident.last_schedule = schedule
        if 0 < self.converged_after <= resident.stable_steps:
            resident.hibernating = True
            resident.hibernation_phase = phase.name
            resident.probe_countdown = self.reprobe_every
        return schedule, False

    def _step_tenant(self, resident: _ServiceResident, interval: int) -> None:
        """One control interval for one active tenant.

        A transliteration of the dense provider's
        ``_run_tenant_interval`` with three deltas: noise comes from
        the tenant's own stream, hibernation replays skip the allocator
        and the noise draws symmetrically, and the tenant is parked
        (tiles released) when its burst ends.
        """
        self._active_steps += 1
        tenant = resident.traffic.tenant
        account = resident.account
        _, phase = resident.walker.current_phase()
        schedule, replayed = self._decide(resident, phase)
        self._unpark(resident)

        footprint = self._peak_footprint(schedule)
        placed = footprint is None or self._place(tenant.tenant_id, footprint)
        if not placed:
            existing = self.fabric.allocation_for(tenant.tenant_id)
            if existing is None:
                account.waiting_intervals += 1
                account.active_intervals += 1
                account.violations += 1
                self._open_violations += 1
                if not replayed:
                    resident.measurement = QoSMeasurement(
                        overall_qos=0.0, legs=(), signature=()
                    )
                self._park_if_idle(resident, interval)
                return
            account.waiting_intervals += 1
            held = ConfigPoint(
                config=existing.config,
                speedup=0.0,
                cost_rate=existing.config.cost_rate(self.cost_model),
            )
            schedule = Schedule(entries=(ScheduleEntry(held, 1.0),))
            footprint = existing.config

        total_instructions = 0.0
        elapsed = 0.0
        dollars_time = 0.0  # Σ rate × cycles
        legs: List[LegObservation] = []
        crossed = False
        for entry in schedule.entries:
            if crossed or entry.fraction <= 0:
                continue
            leg_cycles = entry.fraction * self.interval_cycles
            if entry.point.is_idle:
                elapsed += leg_cycles
                if not replayed:
                    legs.append(LegObservation(None, entry.fraction, 0.0))
                continue
            config = entry.point.config
            executed, used, crossed = resident.walker.run_cycles(
                leg_cycles,
                lambda p, config=config: self._ipc_of(p, config),
                stop_at_boundary=True,
            )
            total_instructions += executed
            elapsed += used
            dollars_time += config.cost_rate(self.cost_model) * used
            if not replayed:
                leg_qos = executed / used if used > 0 else 0.0
                legs.append(
                    LegObservation(
                        config, entry.fraction, self._noisy(resident, leg_qos)
                    )
                )
        elapsed = max(elapsed, 1.0)
        dollars = dollars_time / elapsed  # mean $/hr over the interval
        true_qos = total_instructions / elapsed
        if not replayed:
            signature = (
                self._noisy(resident, phase.mem_refs_per_inst),
                self._noisy(resident, phase.l1_miss_rate),
                self._noisy(resident, phase.mispredict_rate),
            )
            resident.measurement = QoSMeasurement(
                overall_qos=self._noisy(resident, true_qos),
                legs=tuple(legs),
                signature=signature,
            )
        account.active_intervals += 1
        account.dollars_time += dollars
        self._open_dollars += dollars
        if footprint is not None:
            account.footprint_tiles += footprint.tiles
        if true_qos < tenant.qos_goal * (1.0 - self.violation_margin):
            account.violations += 1
            self._open_violations += 1
        self._park_if_idle(resident, interval)

    def _park_if_idle(self, resident: _ServiceResident, interval: int) -> None:
        """Release the tenant's tiles when its burst just ended.

        No work queued for the next interval means the spatial
        allocation would sit occupied doing nothing; parking returns it
        to the fabric so other tenants (and the utilization metric) see
        the slack.  The reservation stays — admission is a contract.
        """
        tenant_id = resident.traffic.tenant.tenant_id
        if resident.traffic.next_active(interval + 1) == interval + 1:
            return  # burst continues
        current = self.fabric.allocation_for(tenant_id)
        if current is not None:
            resident.parked_allocation = current
            self.fabric.release(tenant_id)
        self._shrink_streaks.pop(tenant_id, None)

    def _unpark(self, resident: _ServiceResident) -> None:
        """Re-seat a parked tenant on its old tiles when they are free.

        Falls through silently when the region was taken (or the
        tenant holds an allocation already): the regular placement path
        then runs the full seed search.  Both engine modes execute this
        identically, so placement stays bit-identical.
        """
        parked = resident.parked_allocation
        if parked is None:
            return
        resident.parked_allocation = None
        if self.fabric.has_allocation(parked.vcore_id):
            return
        self.fabric.try_allocate_exact(parked)

    # ------------------------------------------------------------------
    # interval accounting (integer, stretch-exact)
    # ------------------------------------------------------------------
    def _close_interval(self, interval: int, steps: int) -> None:
        residents = len(self._residents)
        self._tenant_intervals += residents
        occupied = self.fabric.occupied_tiles()
        self._util_tile_intervals += occupied
        if self.metrics is not None:
            self.metrics.emit(
                {
                    "kind": "interval",
                    "interval": interval,
                    "residents": residents,
                    "steps": steps,
                    "occupied": occupied,
                    "violations": self._open_violations,
                    "revenue": self._open_dollars,
                }
            )
        self._open_violations = 0
        self._open_dollars = 0.0

    def _account_stretch(self, start: int, end: int) -> None:
        """Account ``[start, end)`` — a span with no events — exactly."""
        if end <= start:
            return
        span = end - start
        residents = len(self._residents)
        occupied = self.fabric.occupied_tiles()
        self._tenant_intervals += residents * span
        self._util_tile_intervals += occupied * span
        if self.metrics is not None:
            self.metrics.emit(
                {
                    "kind": "stretch",
                    "start": start,
                    "end": end,
                    "residents": residents,
                    "occupied": occupied,
                }
            )

    # ------------------------------------------------------------------
    # the two engine modes
    # ------------------------------------------------------------------
    def _prime_heap(self) -> None:
        if self._heap_primed:
            return
        for traffic in self._arrivals[self._arrival_cursor :]:
            self._heap.append(
                (
                    traffic.tenant.arrival_interval,
                    _EVENT_ARRIVE,
                    traffic.tenant.tenant_id,
                )
            )
        self._arrival_cursor = len(self._arrivals)
        heapq.heapify(self._heap)
        self._heap_primed = True

    def _run_event_driven(self, until: int) -> None:
        self._prime_heap()
        heap = self._heap
        cursor = self._cursor
        while cursor < until:
            if not heap or heap[0][0] >= until:
                self._account_stretch(cursor, until)
                return
            interval = heap[0][0]
            if interval > cursor:
                self._account_stretch(cursor, interval)
                cursor = interval
            steps = 0
            while heap and heap[0][0] == interval:
                _, kind, tenant_id = heapq.heappop(heap)
                if kind == _EVENT_DEPART:
                    if tenant_id in self._residents:
                        self._settle(tenant_id)
                elif kind == _EVENT_ARRIVE:
                    traffic = self._traffic_by_id[tenant_id]
                    if self._admit(traffic):
                        departure = traffic.tenant.departure_interval
                        if departure is not None:
                            heapq.heappush(
                                heap, (departure, _EVENT_DEPART, tenant_id)
                            )
                        wake = traffic.next_active(interval)
                        if wake is not None:
                            heapq.heappush(
                                heap, (wake, _EVENT_STEP, tenant_id)
                            )
                else:  # _EVENT_STEP
                    resident = self._residents.get(tenant_id)
                    if resident is None:
                        continue  # departed this very interval
                    self._step_tenant(resident, interval)
                    steps += 1
                    wake = resident.traffic.next_active(interval + 1)
                    if wake is not None:
                        heapq.heappush(heap, (wake, _EVENT_STEP, tenant_id))
            self._close_interval(interval, steps)
            cursor = interval + 1

    def _run_dense_reference(self, until: int) -> None:
        """The scalar twin: visit every interval, scan every tenant."""
        for interval in range(self._cursor, until):
            # Departures first (ascending tenant id) ...
            for tenant_id in sorted(self._residents):
                resident = self._residents[tenant_id]
                departure = resident.traffic.tenant.departure_interval
                if departure is not None and interval >= departure:
                    self._settle(tenant_id)
            # ... then arrivals (the stream ascends by interval and id) ...
            while self._arrival_cursor < len(self._arrivals):
                traffic = self._arrivals[self._arrival_cursor]
                if traffic.tenant.arrival_interval > interval:
                    break
                self._arrival_cursor += 1
                self._admit(traffic)
            # ... then a controller step for every tenant with work.
            steps = 0
            for tenant_id in sorted(self._residents):
                resident = self._residents[tenant_id]
                if resident.traffic.is_active(interval):
                    self._step_tenant(resident, interval)
                    steps += 1
            self._close_interval(interval, steps)

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None) -> ServiceReport:
        """Advance the service to ``until`` (default: the full horizon).

        Resumable: successive calls continue where the previous one
        stopped, and a restored checkpoint continues identically to an
        engine that never paused.
        """
        horizon = self.scenario.spec.horizon
        target = horizon if until is None else until
        if target > horizon:
            raise ValueError(
                f"until={target} exceeds the scenario horizon {horizon}"
            )
        if target < self._cursor:
            raise ValueError(
                f"cannot run backwards: at interval {self._cursor}, "
                f"asked for {target}"
            )
        mode = "event" if perf.FAST else "dense"
        if self._mode is None:
            self._mode = mode
        elif self._mode != mode:
            raise RuntimeError(
                f"engine already ran in {self._mode} mode; "
                f"cannot continue in {mode} mode"
            )
        if perf.FAST:
            self._run_event_driven(target)
        else:
            self._run_dense_reference(target)
        self._cursor = target
        return self.report()

    def report(self) -> ServiceReport:
        """A snapshot report of everything simulated so far."""
        accounts: Dict[int, ServiceAccount] = {}
        settled_ids = sorted(self._settled)
        for tenant_id in settled_ids:
            accounts[tenant_id] = copy.copy(self._settled[tenant_id])
        resident_ids = sorted(self._residents)
        for tenant_id in resident_ids:
            accounts[tenant_id] = copy.copy(self._residents[tenant_id].account)
        return ServiceReport(
            intervals=self._cursor,
            admitted=self._admitted,
            rejected=self._rejected,
            accounts=accounts,
            tenant_intervals=self._tenant_intervals,
            active_steps=self._active_steps,
            decide_steps=self._decide_steps,
            utilization_tile_intervals=self._util_tile_intervals,
            fabric_tiles=len(self.fabric.tiles),
            defragmentations=self.defragmentations,
        )

    # ------------------------------------------------------------------
    # checkpoint / restore
    # ------------------------------------------------------------------
    def checkpoint(self) -> bytes:
        """Serialize the whole service: fabric, residents, RNG, heaps.

        Layout: 8-byte magic, 32-byte sha256 of the payload, pickled
        ``{"schema": CHECKPOINT_SCHEMA, "engine": self}``.  The digest
        catches torn or corrupted snapshots before unpickling.
        """
        payload = pickle.dumps(
            {"schema": CHECKPOINT_SCHEMA, "engine": self},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        return _CHECKPOINT_MAGIC + hashlib.sha256(payload).digest() + payload

    @classmethod
    def restore(cls, data: bytes) -> "ServiceEngine":
        if data[: len(_CHECKPOINT_MAGIC)] != _CHECKPOINT_MAGIC:
            raise CheckpointError("not a service checkpoint (bad magic)")
        body = data[len(_CHECKPOINT_MAGIC) :]
        digest, payload = body[:_DIGEST_BYTES], body[_DIGEST_BYTES:]
        if hashlib.sha256(payload).digest() != digest:
            raise CheckpointError("checksum mismatch: checkpoint corrupted")
        state = pickle.loads(payload)
        schema = state.get("schema")
        if schema != CHECKPOINT_SCHEMA:
            raise CheckpointError(
                f"unsupported checkpoint schema {schema!r} "
                f"(engine speaks {CHECKPOINT_SCHEMA})"
            )
        engine = state.get("engine")
        if not isinstance(engine, cls):
            raise CheckpointError(
                f"checkpoint payload is {type(engine).__name__}, "
                "not a ServiceEngine"
            )
        return engine

    def save_checkpoint(self, path: Union[str, Path]) -> Path:
        """Atomically write :meth:`checkpoint` to ``path``."""
        target = Path(path)
        scratch = target.with_name(target.name + ".tmp")
        scratch.write_bytes(self.checkpoint())
        os.replace(scratch, target)
        return target

    @classmethod
    def load_checkpoint(cls, path: Union[str, Path]) -> "ServiceEngine":
        return cls.restore(Path(path).read_bytes())
