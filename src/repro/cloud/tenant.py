"""Tenants: the IaaS customers sharing the fabric."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.arch.vcore import VCoreConfig
from repro.workloads.phase import PhasedApplication


@dataclass(frozen=True)
class Tenant:
    """One customer: an application with a QoS target and a policy.

    ``policy`` selects the resource allocator the tenant runs:
    ``"cash"`` (the adaptive runtime) or ``"race"`` (reserve the
    worst-case virtual core).  ``arrival_interval`` is the provider
    interval at which the tenant asks to be admitted; a ``None``
    departure means it stays to the end of the simulation.
    """

    tenant_id: int
    app: PhasedApplication
    qos_goal: float
    policy: str = "cash"
    arrival_interval: int = 0
    departure_interval: Optional[int] = None

    def __post_init__(self) -> None:
        if self.tenant_id < 0:
            raise ValueError(f"tenant_id must be non-negative, got {self.tenant_id}")
        if self.qos_goal <= 0:
            raise ValueError(f"qos_goal must be positive, got {self.qos_goal}")
        if self.policy not in ("cash", "race"):
            raise ValueError(
                f"policy must be 'cash' or 'race', got {self.policy!r}"
            )
        if self.arrival_interval < 0:
            raise ValueError(
                f"arrival_interval must be non-negative, "
                f"got {self.arrival_interval}"
            )
        if (
            self.departure_interval is not None
            and self.departure_interval <= self.arrival_interval
        ):
            raise ValueError("departure must come after arrival")


@dataclass
class TenantAccount:
    """Per-tenant billing and QoS bookkeeping."""

    tenant_id: int
    intervals: int = 0
    violations: int = 0
    dollars_time: float = 0.0  # Σ cost_rate over intervals
    waiting_intervals: int = 0
    footprints: List[VCoreConfig] = field(default_factory=list)

    @property
    def mean_cost_rate(self) -> float:
        return self.dollars_time / self.intervals if self.intervals else 0.0

    @property
    def violation_percent(self) -> float:
        if self.intervals == 0:
            return 0.0
        return 100.0 * self.violations / self.intervals

    @property
    def mean_footprint_tiles(self) -> float:
        if not self.footprints:
            return 0.0
        return sum(config.tiles for config in self.footprints) / len(
            self.footprints
        )
