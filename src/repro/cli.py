"""Command-line interface: regenerate the paper's results from a shell.

Usage::

    python -m repro list
    python -m repro run --app x264 --allocator cash --intervals 1000
    python -m repro figure tab3 --jobs 4
    python -m repro figure multitenant --jobs 4
    python -m repro figure service --jobs 4
    python -m repro figure tiers --jobs 4
    python -m repro sweep --seeds 0 1 2 --jobs 8
    python -m repro cache info
    python -m repro cache warm --jobs 8 --cache-dir /tmp/optables
    python -m repro cache clear
    python -m repro export --outdir data/
    python -m repro overheads
    python -m repro lint --format json

``figure`` prints the artefact's rows; ``export`` writes plottable
``.tsv`` series; ``sweep`` runs the full (app × allocator × seed) grid
in parallel and records the timing in ``BENCH_PERF.json``.  Cells are
independently seeded, so ``--jobs`` never changes any result.
``cache`` manages the tiered operating-point store: ``info`` prints
per-tier statistics, ``warm`` pre-publishes phase surfaces into the
shared tiers (pair with ``--cache-dir`` or ``REPRO_CACHE_DIR`` to
persist them on disk), ``clear`` drops every tier.  ``sweep`` and the
multi-cell figures accept ``--cache-dir`` too and report per-tier
hit/miss/build counters next to their wall-clock timing.
``lint`` runs the domain-aware static-analysis suite
(:mod:`repro.analysis`) — including the whole-program shared-state
rules and the hot-path performance rules scoped to the FAST-engine
hot set — and gates against the committed baseline; ``--format
github`` emits GitHub Actions ``::error`` annotations for CI,
``--rules`` lists every registered rule with its scope, and
``--hot-report`` ranks hot functions by loop depth × findings.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.report import cost_table, per_app_table, timeseries_table
from repro.experiments.scenarios import (
    ALLOCATOR_KINDS,
    apache_timeseries,
    compare_allocators,
    compare_architectures,
    run_app_with_allocator,
    x264_timeseries,
)
from repro.workloads.apps import APP_NAMES

FIGURES = (
    "fig1",
    "fig2",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "tab3",
    "sec6a",
    "multitenant",
    "service",
    "tiers",
)


def _cmd_list(_args: argparse.Namespace) -> int:
    print("applications:")
    for name in APP_NAMES:
        print(f"  {name}")
    print("allocators:")
    for kind, label in ALLOCATOR_KINDS:
        print(f"  {kind:<8} ({label})")
    print("figures/tables:", ", ".join(FIGURES))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    result = run_app_with_allocator(
        args.app, args.allocator, intervals=args.intervals, seed=args.seed
    )
    print(
        f"{result.app_name} / {result.allocator_name}: "
        f"${result.cost_dollars:.4f}/hr at "
        f"{result.violation_percent:.1f}% QoS violations "
        f"({result.num_intervals} intervals, goal {result.qos_goal:.3f})"
    )
    return 0


def _apply_cache_dir(args: argparse.Namespace) -> None:
    """Honor ``--cache-dir`` before any engine code runs."""
    if getattr(args, "cache_dir", None) is not None:
        from repro import cacheconf

        cacheconf.set_cache_dir(args.cache_dir)


def _store_summary(stats) -> str:
    """One printable line of per-tier hit/miss/build counters."""
    fleet = stats["fleet"]
    line = (
        f"optable store: "
        f"L1 {fleet['l1_hits']}h/{fleet['l1_misses']}m | "
        f"L2 shm {fleet['l2_hits']}h/{fleet['l2_misses']}m | "
        f"L3 disk {fleet['l3_hits']}h/{fleet['l3_misses']}m | "
        f"{fleet['builds']} build(s)"
    )
    disk = stats["disk"]
    if disk["enabled"]:
        line += f" | disk cache {disk['files']} file(s) in {disk['dir']}"
    return line


def _cmd_figure(args: argparse.Namespace) -> int:
    _apply_cache_dir(args)
    name = args.name
    if name == "fig1":
        from repro.arch.vcore import DEFAULT_CONFIG_SPACE
        from repro.sim.perfmodel import DEFAULT_PERF_MODEL
        from repro.workloads.apps import make_x264

        app = make_x264()
        for index, phase in enumerate(app.phases, start=1):
            best, ipc = DEFAULT_PERF_MODEL.best_config(phase, DEFAULT_CONFIG_SPACE)
            maxima = DEFAULT_PERF_MODEL.local_maxima(phase, DEFAULT_CONFIG_SPACE)
            distinct = len([c for c in maxima if c != best])
            print(
                f"phase {index:>2}: optimum {str(best):>9} ipc {ipc:5.2f} "
                f"distinct local optima {distinct}"
            )
    elif name in ("fig2", "fig8"):
        print(timeseries_table(x264_timeseries(intervals=args.intervals or 220)))
    elif name == "fig9":
        results = apache_timeseries(intervals=args.intervals or 112)
        print(timeseries_table(results, stride=8))
    elif name in ("fig7", "tab3"):
        results = compare_allocators(
            intervals=args.intervals or 1000, jobs=args.jobs
        )
        print(cost_table(results))
        print()
        print(per_app_table(results))
    elif name == "fig10":
        results = compare_architectures(
            intervals=args.intervals or 1000, jobs=args.jobs
        )
        print(per_app_table(results))
    elif name == "multitenant":
        from repro.experiments.report import provider_table
        from repro.experiments.scenarios import multitenant_grid
        from repro.experiments.stats import record_bench_cloud

        reports, timing = multitenant_grid(
            intervals=args.intervals or 300, jobs=args.jobs
        )
        print(provider_table(reports))
        path = record_bench_cloud("multitenant_figure", timing)
        print(
            f"{timing['cells']} provider cells in "
            f"{timing['wall_seconds']:.2f}s with {timing['jobs']} job(s); "
            f"timing recorded in {path}"
        )
        print(_store_summary(timing["optable_store"]))
    elif name == "service":
        from repro.experiments.report import service_table
        from repro.experiments.scenarios import service_grid
        from repro.experiments.stats import record_bench_cloud

        reports, timing = service_grid(
            horizon=args.intervals or 2000, jobs=args.jobs
        )
        print(service_table(reports))
        path = record_bench_cloud("service_figure", timing)
        print(
            f"{timing['cells']} service cells covering "
            f"{timing['tenant_intervals']} tenant-intervals in "
            f"{timing['wall_seconds']:.2f}s with {timing['jobs']} job(s) "
            f"({timing['tenant_intervals_per_second']} tenant-intervals/s); "
            f"timing recorded in {path}"
        )
        print(_store_summary(timing["optable_store"]))
    elif name == "tiers":
        from repro.experiments.report import tier_table
        from repro.experiments.scenarios import tier_agreement_grid
        from repro.experiments.stats import record_bench_cycle

        results, timing = tier_agreement_grid(
            instructions=args.intervals or 4000,
            jobs=args.jobs,
            batch=args.batch,
        )
        print(tier_table(results))
        path = record_bench_cycle("tiers_figure", timing)
        print(
            f"{timing['cells']} tier cells x {timing['instructions']} ops in "
            f"{timing['wall_seconds']:.2f}s with {timing['jobs']} job(s); "
            f"timing recorded in {path}"
        )
    elif name == "sec6a":
        return _cmd_overheads(args)
    else:  # pragma: no cover - argparse restricts choices
        print(f"unknown figure {name!r}", file=sys.stderr)
        return 2
    return 0


def _cmd_overheads(_args: argparse.Namespace) -> int:
    from repro.arch.reconfig import DEFAULT_RECONFIG_COSTS
    from repro.sim.ssim import SSim

    costs = DEFAULT_RECONFIG_COSTS
    print(f"Slice expansion:           {costs.slice_expand_cycles()} cycles (paper ~15)")
    print(f"Slice contraction (worst): {costs.slice_shrink_cycles()} cycles (paper <= 79)")
    print(f"L2 bank flush (worst):     {costs.l2_bank_flush_cycles()} cycles (paper 8000, rounded)")
    ssim = SSim()
    for slices, paper in ((1, 2000), (2, 1100), (3, 977)):
        cycles = ssim.runtime_iteration_cycles(slices=slices)
        print(
            f"runtime iteration, {slices} Slice(s): {cycles:.0f} cycles "
            f"(paper ~{paper})"
        )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.stats import record_bench_perf, sweep

    _apply_cache_dir(args)
    apps = args.apps or list(APP_NAMES)
    kinds = args.allocators or [kind for kind, _ in ALLOCATOR_KINDS]
    results, timing = sweep(
        apps,
        kinds,
        seeds=args.seeds,
        intervals=args.intervals,
        jobs=args.jobs,
    )
    labels = dict(ALLOCATOR_KINDS)
    for kind in kinds:
        print(f"{labels.get(kind, kind)}:")
        for app_name in apps:
            cell = results[kind][app_name]
            print(
                f"  {app_name:<10} cost {cell.cost} $/hr"
                f"  [median {cell.cost.median:.4f}]"
                f"  violations {cell.violation_percent} %"
            )
    print(
        f"{timing['cells']} cells x {timing['intervals']} intervals in "
        f"{timing['wall_seconds']:.2f}s with {timing['jobs']} job(s) "
        f"({timing['cells_per_second']:.2f} cells/s)"
    )
    print(_store_summary(timing["optable_store"]))
    path = record_bench_perf("sweep", timing, path=args.bench_out)
    print(f"timing recorded in {path}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    import json

    from repro import cacheconf
    from repro.sim import optstore
    from repro.sim.optables import cache_clear, optable_cache_stats

    _apply_cache_dir(args)
    if args.action == "info":
        print(json.dumps(optable_cache_stats(), indent=2, sort_keys=True))
        return 0
    if args.action == "clear":
        cache_clear()
        optstore.destroy()
        removed = optstore.disk_clear()
        root = cacheconf.cache_dir()
        suffix = f" under {root}" if root is not None else ""
        print(
            f"cleared L1 tables and the shared store; "
            f"removed {removed} disk entr"
            f"{'y' if removed == 1 else 'ies'}{suffix}"
        )
        return 0
    from repro.experiments.stats import warm_surface_grid

    apps = args.apps or list(APP_NAMES)
    _, timing = warm_surface_grid(apps, jobs=args.jobs)
    print(
        f"warmed {timing['surfaces']} phase surfaces for "
        f"{len(apps)} app(s) in {timing['wall_seconds']:.2f}s "
        f"with {timing['jobs']} job(s)"
    )
    print(_store_summary(timing["optable_store"]))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.cli import run_lint

    return run_lint(args)


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.experiments.figures import EXPORTERS, export_all

    if args.name:
        paths = EXPORTERS[args.name](args.outdir)
    else:
        paths = export_all(args.outdir)
    for path in paths:
        print(path)
    return 0


def _job_count(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"jobs must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce CASH (ISCA 2016): figures, tables, runs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list applications, allocators, figures")

    run_parser = sub.add_parser("run", help="run one (app, allocator) cell")
    run_parser.add_argument("--app", choices=APP_NAMES, required=True)
    run_parser.add_argument(
        "--allocator",
        choices=[kind for kind, _ in ALLOCATOR_KINDS],
        default="cash",
    )
    run_parser.add_argument("--intervals", type=int, default=1000)
    run_parser.add_argument("--seed", type=int, default=0)

    figure_parser = sub.add_parser("figure", help="print a paper artefact")
    figure_parser.add_argument("name", choices=FIGURES)
    figure_parser.add_argument("--intervals", type=int, default=None)
    figure_parser.add_argument(
        "--jobs",
        type=_job_count,
        default=1,
        help=(
            "worker processes for multi-cell figures "
            "(fig7/tab3/fig10/multitenant/service/tiers)"
        ),
    )

    sweep_parser = sub.add_parser(
        "sweep", help="parallel (app x allocator x seed) grid with timing"
    )
    sweep_parser.add_argument(
        "--apps", nargs="+", choices=APP_NAMES, default=None
    )
    sweep_parser.add_argument(
        "--allocators",
        nargs="+",
        choices=[kind for kind, _ in ALLOCATOR_KINDS],
        default=None,
    )
    sweep_parser.add_argument("--seeds", nargs="+", type=int, default=[0, 1, 2])
    sweep_parser.add_argument("--intervals", type=int, default=1000)
    sweep_parser.add_argument(
        "--jobs",
        type=_job_count,
        default=None,
        help="worker processes (default: all CPUs)",
    )
    sweep_parser.add_argument("--bench-out", default="BENCH_PERF.json")
    sweep_parser.add_argument(
        "--cache-dir",
        default=None,
        help="on-disk optable cache root (overrides REPRO_CACHE_DIR)",
    )
    figure_parser.add_argument(
        "--cache-dir",
        default=None,
        help="on-disk optable cache root (overrides REPRO_CACHE_DIR)",
    )
    figure_parser.add_argument(
        "--batch",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "advance tier cells in lockstep through the "
            "struct-of-arrays batch tier (tiers figure only); "
            "--no-batch dispatches each cell singly"
        ),
    )

    cache_parser = sub.add_parser(
        "cache", help="inspect, warm, or clear the operating-point store"
    )
    cache_parser.add_argument("action", choices=("info", "warm", "clear"))
    cache_parser.add_argument(
        "--cache-dir",
        default=None,
        help="on-disk optable cache root (overrides REPRO_CACHE_DIR)",
    )
    cache_parser.add_argument(
        "--apps",
        nargs="+",
        choices=APP_NAMES,
        default=None,
        help="applications to warm (default: all)",
    )
    cache_parser.add_argument(
        "--jobs",
        type=_job_count,
        default=1,
        help="worker processes for cache warm",
    )

    sub.add_parser("overheads", help="Section VI-A overhead microbenchmarks")

    lint_parser = sub.add_parser(
        "lint",
        help="domain-aware static analysis with a findings baseline "
        "(--rules lists rules; --hot-report ranks hot functions)",
    )
    from repro.analysis.cli import add_lint_arguments

    add_lint_arguments(lint_parser)

    export_parser = sub.add_parser("export", help="write .tsv data files")
    export_parser.add_argument("--outdir", default="data")
    export_parser.add_argument(
        "--name",
        choices=sorted(
            set(FIGURES) - {"fig2", "sec6a", "multitenant", "service", "tiers"}
        ),
        default=None,
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "run": _cmd_run,
        "figure": _cmd_figure,
        "sweep": _cmd_sweep,
        "cache": _cmd_cache,
        "overheads": _cmd_overheads,
        "export": _cmd_export,
        "lint": _cmd_lint,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
