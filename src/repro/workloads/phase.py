"""Phase-level application model.

A *phase* is a region of execution with stable microarchitectural
behaviour: instruction-level parallelism, memory intensity, and a
working-set spectrum.  The x264 motivational study (Fig. 1) identifies
10 such phases in one input video; SPEC applications typically have a
handful.  The CASH runtime's whole job is tracking the phase-dependent
response surface IPC(Slices, L2), so phases are the natural modelling
unit for this reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Phase:
    """One application phase.

    The working-set spectrum is a tuple of ``(size_kb, hit_fraction)``
    pairs: the fraction of L1-miss traffic that an L2 of at least
    ``size_kb`` captures.  Fractions are cumulative and must be
    non-decreasing with size, ending at most at 1.0 (the remainder
    always misses to memory — streaming/compulsory traffic).
    """

    name: str
    instructions_m: float
    """Phase length in millions of committed instructions."""

    ilp: float
    """Intrinsic instruction-level parallelism limit (IPC ceiling with
    unbounded resources)."""

    mem_refs_per_inst: float
    """Memory references per instruction (loads + stores)."""

    l1_miss_rate: float
    """Fraction of memory references that miss the (fixed) L1."""

    working_set: Tuple[Tuple[int, float], ...]
    """Cumulative L2 hit-fraction spectrum: ((size_kb, fraction), ...)."""

    mlp: float = 2.0
    """Memory-level parallelism on one Slice: concurrent outstanding
    misses the out-of-order window sustains."""

    comm_penalty: float = 0.03
    """Per-hop slowdown factor for cross-Slice operand forwarding."""

    branch_fraction: float = 0.15
    """Fraction of instructions that are branches."""

    mispredict_rate: float = 0.03
    """Branch mispredict rate (used by counters and the cycle tier)."""

    code_footprint_kb: int = 8
    """Size of the phase's instruction working set (Table II gives each
    Slice a 16 KB L1I; loops larger than it pay instruction-fetch
    misses in the cycle tier)."""

    def __post_init__(self) -> None:
        if self.instructions_m <= 0:
            raise ValueError(
                f"{self.name}: instructions_m must be positive, "
                f"got {self.instructions_m}"
            )
        if self.ilp < 0.1:
            raise ValueError(f"{self.name}: ilp must be >= 0.1, got {self.ilp}")
        if not 0.0 <= self.mem_refs_per_inst <= 1.0:
            raise ValueError(
                f"{self.name}: mem_refs_per_inst must be in [0, 1], "
                f"got {self.mem_refs_per_inst}"
            )
        if not 0.0 <= self.l1_miss_rate <= 1.0:
            raise ValueError(
                f"{self.name}: l1_miss_rate must be in [0, 1], "
                f"got {self.l1_miss_rate}"
            )
        if self.mlp < 1.0:
            raise ValueError(f"{self.name}: mlp must be >= 1, got {self.mlp}")
        if self.comm_penalty < 0:
            raise ValueError(
                f"{self.name}: comm_penalty must be non-negative, "
                f"got {self.comm_penalty}"
            )
        if not 0.0 <= self.branch_fraction <= 1.0:
            raise ValueError(
                f"{self.name}: branch_fraction must be in [0, 1], "
                f"got {self.branch_fraction}"
            )
        if not 0.0 <= self.mispredict_rate <= 1.0:
            raise ValueError(
                f"{self.name}: mispredict_rate must be in [0, 1], "
                f"got {self.mispredict_rate}"
            )
        if self.code_footprint_kb <= 0:
            raise ValueError(
                f"{self.name}: code_footprint_kb must be positive, "
                f"got {self.code_footprint_kb}"
            )
        last_size = 0
        last_frac = 0.0
        for size_kb, fraction in self.working_set:
            if size_kb <= last_size:
                raise ValueError(
                    f"{self.name}: working-set sizes must be strictly "
                    f"increasing, got {self.working_set}"
                )
            if fraction < last_frac or fraction > 1.0:
                raise ValueError(
                    f"{self.name}: working-set fractions must be "
                    f"non-decreasing and <= 1, got {self.working_set}"
                )
            last_size, last_frac = size_kb, fraction

    def l2_hit_fraction(self, l2_kb: int) -> float:
        """Fraction of L1-miss traffic an L2 of ``l2_kb`` KB captures.

        Capture is step-like: a working set is only retained once it
        fits entirely (an L2 slightly smaller than a looping working set
        thrashes and captures almost none of it).  This knee structure
        is what makes cache growth between knees pure overhead — the
        extra banks add hit latency without adding hits — and is the
        physical origin of the local optima in Fig. 1.
        """
        if l2_kb <= 0:
            raise ValueError(f"l2_kb must be positive, got {l2_kb}")
        captured = 0.0
        for size_kb, fraction in self.working_set:
            if l2_kb >= size_kb:
                captured = fraction
        return captured

    def l2_hit_fraction_array(self, l2_kb: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`l2_hit_fraction` over an array of L2 sizes.

        Pure table lookup (no arithmetic), so each element equals the
        scalar result exactly.
        """
        if np.any(l2_kb <= 0):
            raise ValueError("l2_kb must be positive")
        if not self.working_set:
            return np.zeros_like(l2_kb, dtype=float)
        sizes = np.array([size for size, _ in self.working_set])
        fractions = np.array([0.0] + [frac for _, frac in self.working_set])
        # Number of working-set knees that fit entirely in each L2 size;
        # `side='right'` makes an exact fit count as captured, matching
        # the scalar `l2_kb >= size_kb` comparison.
        captured = np.searchsorted(sizes, l2_kb, side="right")
        return fractions[captured]

    @property
    def instructions(self) -> float:
        return self.instructions_m * 1e6


class PhasedApplication:
    """An application: an ordered sequence of phases plus QoS metadata."""

    def __init__(
        self,
        name: str,
        phases: Sequence[Phase],
        qos_kind: str = "throughput",
        description: str = "",
        instructions_per_request: float = 0.0,
    ) -> None:
        if not phases:
            raise ValueError(f"{name}: an application needs at least one phase")
        if qos_kind not in ("throughput", "latency"):
            raise ValueError(
                f"{name}: qos_kind must be 'throughput' or 'latency', "
                f"got {qos_kind!r}"
            )
        if qos_kind == "latency" and instructions_per_request <= 0:
            raise ValueError(
                f"{name}: latency applications need a positive "
                "instructions_per_request"
            )
        self.name = name
        self.phases: Tuple[Phase, ...] = tuple(phases)
        self.qos_kind = qos_kind
        self.description = description
        self.instructions_per_request = instructions_per_request
        # Phases are immutable after construction, so the total (a hot
        # quantity in the phase walker) is computed exactly once, with
        # the same left-to-right summation order as the original
        # per-call computation.
        self._total_instructions = sum(
            phase.instructions for phase in self.phases
        )

    def __len__(self) -> int:
        return len(self.phases)

    def __iter__(self) -> Iterator[Phase]:
        return iter(self.phases)

    def __getitem__(self, index: int) -> Phase:
        return self.phases[index]

    @property
    def total_instructions(self) -> float:
        return self._total_instructions

    def phase_at_instruction(self, instruction: float) -> Tuple[int, Phase]:
        """Phase index and phase containing the given instruction offset.

        Offsets past the end wrap around (applications loop over their
        input during long measurement runs, as the paper's 1000-sample
        experiments do).
        """
        if instruction < 0:
            raise ValueError(
                f"instruction offset must be non-negative, got {instruction}"
            )
        offset = instruction % self.total_instructions
        for index, phase in enumerate(self.phases):
            if offset < phase.instructions:
                return index, phase
            offset -= phase.instructions
        return len(self.phases) - 1, self.phases[-1]

    def phase_schedule(self) -> List[Tuple[float, float, Phase]]:
        """(start_instruction, end_instruction, phase) for one pass."""
        schedule = []
        cursor = 0.0
        for phase in self.phases:
            schedule.append((cursor, cursor + phase.instructions, phase))
            cursor += phase.instructions
        return schedule

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PhasedApplication({self.name!r}, phases={len(self.phases)}, "
            f"qos={self.qos_kind})"
        )
