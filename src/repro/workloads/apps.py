"""Models of the 13 evaluated applications (Section V-B).

Benchmarks: the SPEC CINT2006 suite (astar, bzip, gcc, h264ref, hmmer,
libquantum, mcf, omnetpp, sjeng), PARSEC members (ferret, x264), the
apache web server and the postal mail server.  Each factory builds a
:class:`~repro.workloads.phase.PhasedApplication` whose phases encode
the published microarchitectural character of the program (ILP,
memory intensity, working-set structure, branchiness), tuned so the
phase response surfaces reproduce the qualitative structure the paper
reports — most importantly the 10 x264 phases of Fig. 1, where six
phases exhibit local optima distinct from the global optimum and no two
consecutive phases share a global optimum.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.workloads.phase import Phase, PhasedApplication


def make_x264() -> PhasedApplication:
    """The x264 video encoder with the 10 phases of Fig. 1.

    Encoding alternates between compute-dominated motion
    estimation/transform phases (high ILP, small working set) and
    memory-dominated reference-frame phases (large, stepped working
    sets).  Phase 3 is the expensive one the paper highlights: its true
    optimum needs a large L2, far from its local optima (Fig. 8).
    """
    phases = [
        Phase(  # 1: lookahead / frame setup
            name="x264.p1",
            instructions_m=18,
            ilp=2.2,
            mem_refs_per_inst=0.30,
            l1_miss_rate=0.10,
            working_set=((96, 0.55), (1024, 0.60), (2048, 0.95)),
            mlp=2.0,
            comm_penalty=0.06,
        ),
        Phase(  # 2: motion estimation, compute bound
            name="x264.p2",
            instructions_m=20,
            ilp=5.0,
            mem_refs_per_inst=0.25,
            l1_miss_rate=0.04,
            working_set=((128, 0.90), (256, 0.95)),
            mlp=2.5,
            comm_penalty=0.02,
        ),
        Phase(  # 3: reference-frame search; expensive true optimum
            name="x264.p3",
            instructions_m=18,
            ilp=2.8,
            mem_refs_per_inst=0.35,
            l1_miss_rate=0.15,
            working_set=((64, 0.20), (512, 0.50), (1024, 0.52), (8192, 0.95)),
            mlp=2.0,
            comm_penalty=0.05,
        ),
        Phase(  # 4: entropy coding, serial and branchy
            name="x264.p4",
            instructions_m=14,
            ilp=1.4,
            mem_refs_per_inst=0.22,
            l1_miss_rate=0.06,
            working_set=((128, 0.85),),
            mlp=1.5,
            comm_penalty=0.35,
            branch_fraction=0.22,
            mispredict_rate=0.07,
        ),
        Phase(  # 5: transform + quantization
            name="x264.p5",
            instructions_m=20,
            ilp=3.5,
            mem_refs_per_inst=0.28,
            l1_miss_rate=0.08,
            working_set=((256, 0.50), (512, 0.90)),
            mlp=2.5,
            comm_penalty=0.04,
        ),
        Phase(  # 6: deblocking, streaming writes
            name="x264.p6",
            instructions_m=16,
            ilp=2.0,
            mem_refs_per_inst=0.33,
            l1_miss_rate=0.20,
            working_set=((64, 0.15),),
            mlp=4.0,
            comm_penalty=0.08,
        ),
        Phase(  # 7: sub-pel refinement over a medium reference window
            name="x264.p7",
            instructions_m=20,
            ilp=4.5,
            mem_refs_per_inst=0.30,
            l1_miss_rate=0.09,
            working_set=((1024, 0.90),),
            mlp=3.0,
            comm_penalty=0.03,
        ),
        Phase(  # 8: rate control, serial with a big cold structure
            name="x264.p8",
            instructions_m=14,
            ilp=1.8,
            mem_refs_per_inst=0.30,
            l1_miss_rate=0.12,
            working_set=((256, 0.60), (2048, 0.62), (4096, 0.90)),
            mlp=1.8,
            comm_penalty=0.30,
        ),
        Phase(  # 9: SIMD-friendly SATD kernels
            name="x264.p9",
            instructions_m=20,
            ilp=6.0,
            mem_refs_per_inst=0.24,
            l1_miss_rate=0.03,
            working_set=((128, 0.95),),
            mlp=2.5,
            comm_penalty=0.02,
        ),
        Phase(  # 10: B-frame reference blend over two frames
            name="x264.p10",
            instructions_m=20,
            ilp=2.5,
            mem_refs_per_inst=0.32,
            l1_miss_rate=0.13,
            working_set=((512, 0.55), (1024, 0.57), (8192, 0.90)),
            mlp=2.2,
            comm_penalty=0.05,
        ),
    ]
    return PhasedApplication(
        name="x264",
        phases=phases,
        qos_kind="throughput",
        description="H.264 video encoder (PARSEC); QoS = frame rate",
    )


def make_apache() -> PhasedApplication:
    """The apache httpd serving an oscillating request mix.

    Latency QoS: the paper sets 110 Kcycles per request — the smallest
    achievable worst-case latency.  Phases model shifts in the request
    mix (cached static pages vs. dynamic content touching more state).
    """
    phases = [
        Phase(
            name="apache.static",
            instructions_m=400,
            ilp=2.6,
            mem_refs_per_inst=0.30,
            l1_miss_rate=0.07,
            working_set=((256, 0.80), (512, 0.92)),
            mlp=2.5,
            comm_penalty=0.10,
            branch_fraction=0.18,
            mispredict_rate=0.04,
        ),
        Phase(
            name="apache.dynamic",
            instructions_m=400,
            ilp=2.2,
            mem_refs_per_inst=0.34,
            l1_miss_rate=0.11,
            working_set=((256, 0.45), (2048, 0.85)),
            mlp=2.0,
            comm_penalty=0.12,
            branch_fraction=0.20,
            mispredict_rate=0.05,
        ),
    ]
    return PhasedApplication(
        name="apache",
        phases=phases,
        qos_kind="latency",
        description="apache httpd, concurrency 30; QoS = request latency",
        instructions_per_request=40_000,
    )


def make_mailserver() -> PhasedApplication:
    """The postal mail server: parse, spool and deliver messages."""
    phases = [
        Phase(
            name="mail.receive",
            instructions_m=360,
            ilp=2.0,
            mem_refs_per_inst=0.32,
            l1_miss_rate=0.09,
            working_set=((128, 0.60), (1024, 0.85)),
            mlp=2.0,
            comm_penalty=0.15,
            branch_fraction=0.19,
            mispredict_rate=0.05,
        ),
        Phase(
            name="mail.deliver",
            instructions_m=360,
            ilp=2.4,
            mem_refs_per_inst=0.30,
            l1_miss_rate=0.12,
            working_set=((512, 0.55), (4096, 0.80)),
            mlp=2.2,
            comm_penalty=0.12,
        ),
    ]
    return PhasedApplication(
        name="mailserver",
        phases=phases,
        qos_kind="latency",
        description="postal mail server; QoS = message handling latency",
        instructions_per_request=45_000,
    )


def make_astar() -> PhasedApplication:
    """SPEC astar: pointer-chasing A* pathfinding, low ILP, big maps."""
    phases = [
        Phase(
            name="astar.way",
            instructions_m=30,
            ilp=1.6,
            mem_refs_per_inst=0.36,
            l1_miss_rate=0.14,
            working_set=((256, 0.40), (2048, 0.75), (8192, 0.85)),
            mlp=1.5,
            comm_penalty=0.22,
            branch_fraction=0.17,
            mispredict_rate=0.06,
        ),
        Phase(
            name="astar.region",
            instructions_m=26,
            ilp=1.9,
            mem_refs_per_inst=0.33,
            l1_miss_rate=0.10,
            working_set=((512, 0.70), (1024, 0.80)),
            mlp=1.8,
            comm_penalty=0.18,
        ),
    ]
    return PhasedApplication(
        name="astar", phases=phases, description="SPEC CINT2006 473.astar"
    )


def make_bzip() -> PhasedApplication:
    """SPEC bzip2: alternating compression / decompression phases."""
    phases = [
        Phase(
            name="bzip.compress",
            instructions_m=32,
            ilp=2.6,
            mem_refs_per_inst=0.30,
            l1_miss_rate=0.08,
            working_set=((512, 0.75), (1024, 0.90)),
            mlp=2.2,
            comm_penalty=0.08,
        ),
        Phase(
            name="bzip.sort",
            instructions_m=24,
            ilp=1.8,
            mem_refs_per_inst=0.35,
            l1_miss_rate=0.13,
            working_set=((1024, 0.45), (4096, 0.85)),
            mlp=2.0,
            comm_penalty=0.15,
        ),
        Phase(
            name="bzip.decompress",
            instructions_m=26,
            ilp=3.0,
            mem_refs_per_inst=0.28,
            l1_miss_rate=0.06,
            working_set=((256, 0.85),),
            mlp=2.5,
            comm_penalty=0.05,
        ),
    ]
    return PhasedApplication(
        name="bzip", phases=phases, description="SPEC CINT2006 401.bzip2"
    )


def make_ferret() -> PhasedApplication:
    """PARSEC ferret: content-similarity search pipeline (ROI only)."""
    phases = [
        Phase(
            name="ferret.segment",
            instructions_m=22,
            ilp=3.2,
            mem_refs_per_inst=0.28,
            l1_miss_rate=0.07,
            working_set=((512, 0.80),),
            mlp=2.5,
            comm_penalty=0.05,
        ),
        Phase(
            name="ferret.extract",
            instructions_m=24,
            ilp=4.5,
            mem_refs_per_inst=0.26,
            l1_miss_rate=0.05,
            working_set=((256, 0.85), (512, 0.92)),
            mlp=2.8,
            comm_penalty=0.03,
        ),
        Phase(
            name="ferret.index",
            instructions_m=26,
            ilp=2.2,
            mem_refs_per_inst=0.34,
            l1_miss_rate=0.14,
            working_set=((1024, 0.40), (8192, 0.85)),
            mlp=2.0,
            comm_penalty=0.10,
        ),
        Phase(
            name="ferret.rank",
            instructions_m=20,
            ilp=3.8,
            mem_refs_per_inst=0.30,
            l1_miss_rate=0.08,
            working_set=((2048, 0.88),),
            mlp=2.5,
            comm_penalty=0.06,
        ),
    ]
    return PhasedApplication(
        name="ferret", phases=phases, description="PARSEC ferret ROI"
    )


def make_gcc() -> PhasedApplication:
    """SPEC gcc: many irregular phases with shifting working sets."""
    phases = [
        Phase(
            name="gcc.parse",
            instructions_m=18,
            ilp=2.0,
            mem_refs_per_inst=0.32,
            l1_miss_rate=0.08,
            working_set=((256, 0.70), (512, 0.82)),
            mlp=2.0,
            comm_penalty=0.14,
            branch_fraction=0.21,
            mispredict_rate=0.06,
        ),
        Phase(
            name="gcc.ssa",
            instructions_m=22,
            ilp=2.8,
            mem_refs_per_inst=0.30,
            l1_miss_rate=0.11,
            working_set=((512, 0.50), (4096, 0.88)),
            mlp=2.2,
            comm_penalty=0.10,
        ),
        Phase(
            name="gcc.regalloc",
            instructions_m=20,
            ilp=1.7,
            mem_refs_per_inst=0.34,
            l1_miss_rate=0.13,
            working_set=((1024, 0.55), (2048, 0.58), (8192, 0.90)),
            mlp=1.8,
            comm_penalty=0.25,
        ),
        Phase(
            name="gcc.emit",
            instructions_m=16,
            ilp=2.4,
            mem_refs_per_inst=0.28,
            l1_miss_rate=0.06,
            working_set=((128, 0.80),),
            mlp=2.2,
            comm_penalty=0.08,
        ),
    ]
    return PhasedApplication(
        name="gcc", phases=phases, description="SPEC CINT2006 403.gcc"
    )


def make_h264ref() -> PhasedApplication:
    """SPEC h264ref: reference encoder, high-ILP streaming kernels."""
    phases = [
        Phase(
            name="h264ref.me",
            instructions_m=30,
            ilp=4.8,
            mem_refs_per_inst=0.27,
            l1_miss_rate=0.05,
            working_set=((256, 0.88), (512, 0.94)),
            mlp=2.8,
            comm_penalty=0.02,
        ),
        Phase(
            name="h264ref.interp",
            instructions_m=26,
            ilp=5.5,
            mem_refs_per_inst=0.30,
            l1_miss_rate=0.07,
            working_set=((512, 0.85), (1024, 0.92)),
            mlp=3.0,
            comm_penalty=0.02,
        ),
        Phase(
            name="h264ref.cabac",
            instructions_m=18,
            ilp=1.5,
            mem_refs_per_inst=0.24,
            l1_miss_rate=0.05,
            working_set=((128, 0.88),),
            mlp=1.5,
            comm_penalty=0.32,
            branch_fraction=0.24,
            mispredict_rate=0.08,
        ),
    ]
    return PhasedApplication(
        name="h264ref", phases=phases, description="SPEC CINT2006 464.h264ref"
    )


def make_hmmer() -> PhasedApplication:
    """SPEC hmmer: profile HMM search, compute bound, tiny working set."""
    phases = [
        Phase(
            name="hmmer.viterbi",
            instructions_m=40,
            ilp=5.5,
            mem_refs_per_inst=0.22,
            l1_miss_rate=0.02,
            working_set=((128, 0.95),),
            mlp=2.5,
            comm_penalty=0.02,
            branch_fraction=0.10,
            mispredict_rate=0.01,
        ),
        Phase(
            name="hmmer.post",
            instructions_m=16,
            ilp=3.0,
            mem_refs_per_inst=0.26,
            l1_miss_rate=0.05,
            working_set=((256, 0.90),),
            mlp=2.2,
            comm_penalty=0.05,
        ),
    ]
    return PhasedApplication(
        name="hmmer", phases=phases, description="SPEC CINT2006 456.hmmer"
    )


def make_lib() -> PhasedApplication:
    """SPEC libquantum ('lib'): streaming over a huge vector.

    The quantum-register vector never fits in L2, so extra cache is pure
    overhead — the cheapest cache is the best cache, and performance is
    bandwidth (MLP) bound.
    """
    phases = [
        Phase(
            name="lib.gate",
            instructions_m=36,
            ilp=1.9,
            mem_refs_per_inst=0.36,
            l1_miss_rate=0.25,
            working_set=((64, 0.05),),
            mlp=4.0,
            comm_penalty=0.06,
            branch_fraction=0.08,
            mispredict_rate=0.01,
        ),
        Phase(
            name="lib.toffoli",
            instructions_m=28,
            ilp=2.3,
            mem_refs_per_inst=0.34,
            l1_miss_rate=0.22,
            working_set=((64, 0.08),),
            mlp=4.5,
            comm_penalty=0.05,
        ),
    ]
    return PhasedApplication(
        name="lib", phases=phases, description="SPEC CINT2006 462.libquantum"
    )


def make_mcf() -> PhasedApplication:
    """SPEC mcf: network simplex, memory bound with a huge working set."""
    phases = [
        Phase(
            name="mcf.simplex",
            instructions_m=30,
            ilp=1.3,
            mem_refs_per_inst=0.40,
            l1_miss_rate=0.30,
            working_set=((2048, 0.30), (8192, 0.60)),
            mlp=2.0,
            comm_penalty=0.20,
            branch_fraction=0.16,
            mispredict_rate=0.07,
        ),
        Phase(
            name="mcf.refresh",
            instructions_m=22,
            ilp=1.6,
            mem_refs_per_inst=0.38,
            l1_miss_rate=0.24,
            working_set=((1024, 0.35), (4096, 0.65)),
            mlp=2.4,
            comm_penalty=0.15,
        ),
    ]
    return PhasedApplication(
        name="mcf", phases=phases, description="SPEC CINT2006 429.mcf"
    )


def make_omnetpp() -> PhasedApplication:
    """SPEC omnetpp: discrete-event network simulation, pointer heavy."""
    phases = [
        Phase(
            name="omnetpp.events",
            instructions_m=28,
            ilp=1.7,
            mem_refs_per_inst=0.36,
            l1_miss_rate=0.16,
            working_set=((512, 0.50), (4096, 0.80)),
            mlp=1.8,
            comm_penalty=0.25,
            branch_fraction=0.20,
            mispredict_rate=0.08,
        ),
        Phase(
            name="omnetpp.stats",
            instructions_m=18,
            ilp=2.2,
            mem_refs_per_inst=0.30,
            l1_miss_rate=0.09,
            working_set=((256, 0.75), (1024, 0.85)),
            mlp=2.0,
            comm_penalty=0.15,
        ),
    ]
    return PhasedApplication(
        name="omnetpp", phases=phases, description="SPEC CINT2006 471.omnetpp"
    )


def make_sjeng() -> PhasedApplication:
    """SPEC sjeng: chess tree search, branchy, modest working set."""
    phases = [
        Phase(
            name="sjeng.search",
            instructions_m=30,
            ilp=2.0,
            mem_refs_per_inst=0.28,
            l1_miss_rate=0.07,
            working_set=((128, 0.70), (1024, 0.80)),
            mlp=2.0,
            comm_penalty=0.18,
            branch_fraction=0.22,
            mispredict_rate=0.09,
        ),
        Phase(
            name="sjeng.eval",
            instructions_m=24,
            ilp=2.6,
            mem_refs_per_inst=0.26,
            l1_miss_rate=0.05,
            working_set=((256, 0.85),),
            mlp=2.2,
            comm_penalty=0.10,
        ),
    ]
    return PhasedApplication(
        name="sjeng", phases=phases, description="SPEC CINT2006 458.sjeng"
    )


_FACTORIES: Dict[str, Callable[[], PhasedApplication]] = {
    "apache": make_apache,
    "astar": make_astar,
    "bzip": make_bzip,
    "ferret": make_ferret,
    "gcc": make_gcc,
    "h264ref": make_h264ref,
    "hmmer": make_hmmer,
    "lib": make_lib,
    "mailserver": make_mailserver,
    "mcf": make_mcf,
    "omnetpp": make_omnetpp,
    "sjeng": make_sjeng,
    "x264": make_x264,
}

APP_NAMES: List[str] = sorted(_FACTORIES)
"""The 13 applications in the order Fig. 7 / Fig. 10 list them."""


def get_app(name: str) -> PhasedApplication:
    """Build the named application model."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown application {name!r}; choose from {APP_NAMES}"
        ) from None
    return factory()


def ALL_APPS() -> List[PhasedApplication]:
    """Fresh instances of all 13 applications."""
    return [get_app(name) for name in APP_NAMES]
