"""Workload models for the 13 evaluated applications.

The paper drives SSim with GEM5 full-system Alpha traces of SPEC
CINT2006, a PARSEC subset, the apache web server, the postal mail
server, and the x264 video encoder.  We model each application as a
sequence of *phases* — regions with stable instruction mix, intrinsic
ILP, and working-set behaviour — since the phase-level response surface
(IPC as a function of Slices and L2) is precisely what the CASH runtime
observes and optimizes over.  See DESIGN.md §2 for the substitution
rationale.
"""

from repro.workloads.phase import Phase, PhasedApplication
from repro.workloads.apps import (
    ALL_APPS,
    APP_NAMES,
    get_app,
    make_apache,
    make_x264,
)
from repro.workloads.requests import OscillatingLoad, RequestTrace

__all__ = [
    "Phase",
    "PhasedApplication",
    "ALL_APPS",
    "APP_NAMES",
    "get_app",
    "make_apache",
    "make_x264",
    "OscillatingLoad",
    "RequestTrace",
]
