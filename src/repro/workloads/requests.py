"""Open-loop request streams for the server workloads (Fig. 9).

The paper drives apache with an oscillating stream of requests, typical
of web servers (Wikipedia-like diurnal cycles), condensed in time so a
simulation can cover several oscillations.  The request rate swings
between a low trough and a peak that only briefly demands the
worst-case virtual core — exactly the situation where racing-to-idle
over-provisions and an adaptive runtime saves money.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Sequence


@dataclass(frozen=True)
class OscillatingLoad:
    """A sinusoidal request-rate profile with an occasional burst peak.

    Rates are in requests per second; time is in cycles (converted with
    ``cycles_per_second``).  The profile is
    ``mean + amplitude * sin(2*pi*t / period)``, optionally multiplied
    by a burst factor inside the burst window, clipped at ``floor``.
    """

    mean_rate: float = 800.0
    amplitude: float = 550.0
    period_cycles: float = 320e6
    floor: float = 100.0
    burst_factor: float = 1.0
    burst_start_cycle: float = 0.0
    burst_end_cycle: float = 0.0
    phase_offset: float = -math.pi / 2
    """Start at the trough, as in Fig. 9's request-rate trace."""

    def __post_init__(self) -> None:
        if self.mean_rate <= 0:
            raise ValueError(f"mean_rate must be positive, got {self.mean_rate}")
        if self.amplitude < 0:
            raise ValueError(f"amplitude must be non-negative, got {self.amplitude}")
        if self.period_cycles <= 0:
            raise ValueError(
                f"period_cycles must be positive, got {self.period_cycles}"
            )
        if self.floor < 0:
            raise ValueError(f"floor must be non-negative, got {self.floor}")
        if self.burst_factor < 1.0:
            raise ValueError(
                f"burst_factor must be >= 1, got {self.burst_factor}"
            )

    def rate_at(self, cycle: float) -> float:
        """Request rate (requests/second) at the given cycle."""
        if cycle < 0:
            raise ValueError(f"cycle must be non-negative, got {cycle}")
        rate = self.mean_rate + self.amplitude * math.sin(
            2.0 * math.pi * cycle / self.period_cycles + self.phase_offset
        )
        if self.burst_start_cycle <= cycle < self.burst_end_cycle:
            rate *= self.burst_factor
        return max(rate, self.floor)

    @property
    def peak_rate(self) -> float:
        """The highest rate the profile can produce."""
        return (self.mean_rate + self.amplitude) * self.burst_factor

    def sample(self, start: float, end: float, samples: int) -> List[float]:
        """Evenly spaced rates over ``[start, end)``."""
        if samples <= 0:
            raise ValueError(f"samples must be positive, got {samples}")
        if end <= start:
            raise ValueError("end must be after start")
        step = (end - start) / samples
        return [self.rate_at(start + i * step) for i in range(samples)]


@dataclass(frozen=True)
class RequestTrace:
    """An explicit request-rate trace (rates per fixed-length interval)."""

    rates: Sequence[float]
    interval_cycles: float

    def __post_init__(self) -> None:
        if not self.rates:
            raise ValueError("a request trace needs at least one interval")
        if any(rate < 0 for rate in self.rates):
            raise ValueError("request rates must be non-negative")
        if self.interval_cycles <= 0:
            raise ValueError(
                f"interval_cycles must be positive, got {self.interval_cycles}"
            )

    def rate_at(self, cycle: float) -> float:
        """Rate for the interval containing ``cycle`` (wraps around)."""
        if cycle < 0:
            raise ValueError(f"cycle must be non-negative, got {cycle}")
        index = int(cycle // self.interval_cycles) % len(self.rates)
        return self.rates[index]

    @property
    def peak_rate(self) -> float:
        return max(self.rates)

    @property
    def total_cycles(self) -> float:
        return len(self.rates) * self.interval_cycles

    def __iter__(self) -> Iterator[float]:
        return iter(self.rates)
