"""Cost-minimizing configuration scheduling (Section IV-C, Eqns. 5–6).

The optimizer maps a speedup demand s(t) into a schedule of
configurations over a quantum of τ time units:

    minimize   τ_idle·c_idle + (1/τ)·Σ_k τ_k·c_k
    subject to (1/τ)·Σ_k τ_k·s_k = s(t)
               τ_idle + Σ_k τ_k = τ,   τ_k ≥ 0            (Eqn. 5)

Linear-programming theory says a problem with two constraints has an
optimal solution with at most two non-zero τ_k — the paper names them
``over`` and ``under``:

    over  = argmin_k { c_k | s_k > s(t) }
    under = argmax_k { s_k / c_k | s_k < s(t) }
    t_over  = τ · (s(t) − s_under) / (s_over − s_under)
    t_under = τ − t_over                                   (Eqn. 6)

This module provides both the paper's over/under rule
(:func:`solve_two_config`) — what the CASH runtime executes with
*learned* speedups — and the exact LP optimum via the lower convex
envelope (:func:`lower_envelope_cost`), which the oracle uses with
*true* speedups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.vcore import VCoreConfig


@dataclass(frozen=True)
class ConfigPoint:
    """One configuration's operating point: speedup s_k and cost c_k."""

    config: Optional[VCoreConfig]
    speedup: float
    cost_rate: float

    def __post_init__(self) -> None:
        if self.speedup < 0:
            raise ValueError(f"speedup must be non-negative, got {self.speedup}")
        if self.cost_rate < 0:
            raise ValueError(
                f"cost_rate must be non-negative, got {self.cost_rate}"
            )

    @property
    def is_idle(self) -> bool:
        return self.config is None

    @property
    def efficiency(self) -> float:
        """Speedup per unit cost (the ``under`` selection metric)."""
        if self.cost_rate == 0.0:
            return float("inf") if self.speedup > 0 else 0.0
        return self.speedup / self.cost_rate


IDLE_POINT = ConfigPoint(config=None, speedup=0.0, cost_rate=0.0)


@dataclass(frozen=True)
class ScheduleEntry:
    """One leg of a schedule: run ``point`` for ``fraction`` of τ."""

    point: ConfigPoint
    fraction: float

    def __post_init__(self) -> None:
        if not -1e-12 <= self.fraction <= 1.0 + 1e-12:
            raise ValueError(f"fraction must be in [0, 1], got {self.fraction}")


@dataclass(frozen=True)
class Schedule:
    """A (at most two-leg) schedule over one quantum."""

    entries: Tuple[ScheduleEntry, ...]
    saturated: bool = False
    """True when the demand exceeded every configuration's speedup and
    the schedule was clamped to the fastest configuration."""

    def __post_init__(self) -> None:
        total = sum(entry.fraction for entry in self.entries)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"schedule fractions sum to {total}, not 1")

    @property
    def average_speedup(self) -> float:
        return sum(e.point.speedup * e.fraction for e in self.entries)

    @property
    def average_cost_rate(self) -> float:
        return sum(e.point.cost_rate * e.fraction for e in self.entries)

    @property
    def active_entries(self) -> Tuple[ScheduleEntry, ...]:
        return tuple(e for e in self.entries if not e.point.is_idle)

    def configs(self) -> List[VCoreConfig]:
        return [e.point.config for e in self.active_entries]


def solve_two_config(
    points: Sequence[ConfigPoint],
    target_speedup: float,
    idle: ConfigPoint = IDLE_POINT,
) -> Schedule:
    """The paper's over/under two-configuration rule (Eqn. 6).

    ``points`` are the candidate configurations with their (possibly
    learned) speedups and cost rates; ``idle`` is the do-nothing point
    (zero speedup and, optimistically, zero cost).
    """
    if target_speedup < 0:
        raise ValueError(
            f"target_speedup must be non-negative, got {target_speedup}"
        )
    if not points:
        raise ValueError("need at least one configuration point")
    if target_speedup == 0.0:
        return Schedule(entries=(ScheduleEntry(idle, 1.0),))

    # Exact hit: a single configuration meets the demand exactly.
    exact = [p for p in points if abs(p.speedup - target_speedup) <= 1e-12]
    if exact:
        cheapest = min(exact, key=lambda p: p.cost_rate)
        return Schedule(entries=(ScheduleEntry(cheapest, 1.0),))

    over_candidates = [p for p in points if p.speedup > target_speedup]
    under_candidates = [p for p in points if p.speedup < target_speedup]

    if not over_candidates:
        # Demand is unreachable; clamp to the fastest configuration and
        # flag saturation so the caller can surface the QoS risk.  With
        # noisy (learned) speedups several configurations tie for
        # fastest within the noise, so pick the cheapest of the
        # near-fastest set — this keeps the choice stable in tight
        # phases instead of churning on the noisy argmax.
        fastest_speed = max(p.speedup for p in points)
        fastest = min(
            (p for p in points if p.speedup >= 0.98 * fastest_speed),
            key=lambda p: p.cost_rate,
        )
        return Schedule(entries=(ScheduleEntry(fastest, 1.0),), saturated=True)

    over = min(over_candidates, key=lambda p: (p.cost_rate, p.speedup))
    if under_candidates:
        under = max(under_candidates, key=lambda p: (p.efficiency, -p.cost_rate))
    else:
        under = idle

    t_over = (target_speedup - under.speedup) / (over.speedup - under.speedup)
    t_over = min(max(t_over, 0.0), 1.0)
    return Schedule(
        entries=(
            ScheduleEntry(over, t_over),
            ScheduleEntry(under, 1.0 - t_over),
        )
    )


def _lower_hull(points: List[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Lower convex hull of 2D points sorted by x (Andrew's monotone chain)."""
    points = sorted(set(points))
    if len(points) <= 2:
        return points
    hull: List[Tuple[float, float]] = []
    for point in points:
        while len(hull) >= 2:
            (x1, y1), (x2, y2) = hull[-2], hull[-1]
            cross = (x2 - x1) * (point[1] - y1) - (y2 - y1) * (point[0] - x1)
            if cross <= 0:
                hull.pop()
            else:
                break
        hull.append(point)
    return hull


def lower_envelope_cost(
    points: Sequence[ConfigPoint],
    target_speedup: float,
    idle: ConfigPoint = IDLE_POINT,
) -> Tuple[float, Schedule]:
    """Exact optimum of Eqn. 5: minimal cost rate to average s(t).

    Time-sharing makes any point on a segment between two operating
    points reachable, so the optimum lies on the lower convex envelope
    of {(s_k, c_k)} ∪ {idle}.  Returns ``(cost_rate, schedule)``.
    Raises ``ValueError`` if the target exceeds every speedup.
    """
    if target_speedup < 0:
        raise ValueError(
            f"target_speedup must be non-negative, got {target_speedup}"
        )
    if not points:
        raise ValueError("need at least one configuration point")
    all_points = list(points) + [idle]
    best_at: Dict[Tuple[float, float], ConfigPoint] = {}
    for p in all_points:
        key = (p.speedup, p.cost_rate)
        if key not in best_at:
            best_at[key] = p
    hull = _lower_hull([(p.speedup, p.cost_rate) for p in best_at.values()])
    max_speed = hull[-1][0]
    if target_speedup > max_speed + 1e-12:
        raise ValueError(
            f"target speedup {target_speedup} exceeds the fastest "
            f"configuration ({max_speed})"
        )
    for (x1, y1), (x2, y2) in zip(hull, hull[1:]):
        if x1 - 1e-12 <= target_speedup <= x2 + 1e-12:
            span = x2 - x1
            weight = 0.0 if span == 0 else (target_speedup - x1) / span
            weight = min(max(weight, 0.0), 1.0)
            cost = y1 + weight * (y2 - y1)
            schedule = Schedule(
                entries=(
                    ScheduleEntry(best_at[(x2, y2)], weight),
                    ScheduleEntry(best_at[(x1, y1)], 1.0 - weight),
                )
            )
            return cost, schedule
    # target equals the single hull point (hull of length 1).
    point = best_at[hull[0]]
    return point.cost_rate, Schedule(entries=(ScheduleEntry(point, 1.0),))


class LearningOptimizer:
    """The runtime's optimizer: learned speedups through the LP rule.

    Holds the configuration catalogue (with cost rates from the cost
    model) and, given the learner's current speedup estimates, produces
    the over/under schedule for a speedup demand.
    """

    def __init__(
        self,
        configs: Sequence[VCoreConfig],
        cost_rates: Sequence[float],
        idle: ConfigPoint = IDLE_POINT,
    ) -> None:
        if len(configs) != len(cost_rates):
            raise ValueError(
                f"{len(configs)} configs but {len(cost_rates)} cost rates"
            )
        if not configs:
            raise ValueError("need at least one configuration")
        self.configs = list(configs)
        self.cost_rates = list(cost_rates)
        self.idle = idle

    def points(self, speedups: Dict[VCoreConfig, float]) -> List[ConfigPoint]:
        missing = [c for c in self.configs if c not in speedups]
        if missing:
            raise KeyError(f"no speedup estimate for {missing[:3]}...")
        return [
            ConfigPoint(config=c, speedup=speedups[c], cost_rate=rate)
            for c, rate in zip(self.configs, self.cost_rates)
        ]

    def schedule(
        self, speedups: Dict[VCoreConfig, float], target_speedup: float
    ) -> Schedule:
        return solve_two_config(self.points(speedups), target_speedup, self.idle)

    def optimal_cost(
        self, speedups: Dict[VCoreConfig, float], target_speedup: float
    ) -> Tuple[float, Schedule]:
        return lower_envelope_cost(
            self.points(speedups), target_speedup, self.idle
        )
