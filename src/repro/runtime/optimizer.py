"""Cost-minimizing configuration scheduling (Section IV-C, Eqns. 5–6).

The optimizer maps a speedup demand s(t) into a schedule of
configurations over a quantum of τ time units:

    minimize   τ_idle·c_idle + (1/τ)·Σ_k τ_k·c_k
    subject to (1/τ)·Σ_k τ_k·s_k = s(t)
               τ_idle + Σ_k τ_k = τ,   τ_k ≥ 0            (Eqn. 5)

Linear-programming theory says a problem with two constraints has an
optimal solution with at most two non-zero τ_k — the paper names them
``over`` and ``under``:

    over  = argmin_k { c_k | s_k > s(t) }
    under = argmax_k { s_k / c_k | s_k < s(t) }
    t_over  = τ · (s(t) − s_under) / (s_over − s_under)
    t_under = τ − t_over                                   (Eqn. 6)

This module provides both the paper's over/under rule
(:func:`solve_two_config`) — what the CASH runtime executes with
*learned* speedups — and the exact LP optimum via the lower convex
envelope (:func:`lower_envelope_cost`), which the oracle uses with
*true* speedups.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro import perf
from repro.arch.vcore import VCoreConfig


@dataclass(frozen=True)
class ConfigPoint:
    """One configuration's operating point: speedup s_k and cost c_k."""

    config: Optional[VCoreConfig]
    speedup: float
    cost_rate: float

    def __post_init__(self) -> None:
        if self.speedup < 0:
            raise ValueError(f"speedup must be non-negative, got {self.speedup}")
        if self.cost_rate < 0:
            raise ValueError(
                f"cost_rate must be non-negative, got {self.cost_rate}"
            )

    @property
    def is_idle(self) -> bool:
        return self.config is None

    @property
    def efficiency(self) -> float:
        """Speedup per unit cost (the ``under`` selection metric)."""
        # cost_rate is validated non-negative, so <= is the exact guard
        # without relying on float equality.
        if self.cost_rate <= 0.0:
            return float("inf") if self.speedup > 0 else 0.0
        return self.speedup / self.cost_rate


IDLE_POINT = ConfigPoint(config=None, speedup=0.0, cost_rate=0.0)


@dataclass(frozen=True)
class ScheduleEntry:
    """One leg of a schedule: run ``point`` for ``fraction`` of τ."""

    point: ConfigPoint
    fraction: float

    def __post_init__(self) -> None:
        if not -1e-12 <= self.fraction <= 1.0 + 1e-12:
            raise ValueError(f"fraction must be in [0, 1], got {self.fraction}")


@dataclass(frozen=True)
class Schedule:
    """A (at most two-leg) schedule over one quantum."""

    entries: Tuple[ScheduleEntry, ...]
    saturated: bool = False
    """True when the demand exceeded every configuration's speedup and
    the schedule was clamped to the fastest configuration."""

    def __post_init__(self) -> None:
        total = sum(entry.fraction for entry in self.entries)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"schedule fractions sum to {total}, not 1")

    @property
    def average_speedup(self) -> float:
        return sum(e.point.speedup * e.fraction for e in self.entries)

    @property
    def average_cost_rate(self) -> float:
        return sum(e.point.cost_rate * e.fraction for e in self.entries)

    @property
    def active_entries(self) -> Tuple[ScheduleEntry, ...]:
        return tuple(e for e in self.entries if not e.point.is_idle)

    def configs(self) -> List[VCoreConfig]:
        return [e.point.config for e in self.active_entries]


def solve_two_config(
    points: Sequence[ConfigPoint],
    target_speedup: float,
    idle: ConfigPoint = IDLE_POINT,
) -> Schedule:
    """The paper's over/under two-configuration rule (Eqn. 6).

    ``points`` are the candidate configurations with their (possibly
    learned) speedups and cost rates; ``idle`` is the do-nothing point
    (zero speedup and, optimistically, zero cost).
    """
    if target_speedup < 0:
        raise ValueError(
            f"target_speedup must be non-negative, got {target_speedup}"
        )
    if not points:
        raise ValueError("need at least one configuration point")
    if target_speedup <= 0.0:
        return Schedule(entries=(ScheduleEntry(idle, 1.0),))

    # Exact hit: a single configuration meets the demand exactly.
    exact = [p for p in points if abs(p.speedup - target_speedup) <= 1e-12]
    if exact:
        cheapest = min(exact, key=lambda p: p.cost_rate)
        return Schedule(entries=(ScheduleEntry(cheapest, 1.0),))

    over_candidates = [p for p in points if p.speedup > target_speedup]
    under_candidates = [p for p in points if p.speedup < target_speedup]

    if not over_candidates:
        # Demand is unreachable; clamp to the fastest configuration and
        # flag saturation so the caller can surface the QoS risk.  With
        # noisy (learned) speedups several configurations tie for
        # fastest within the noise, so pick the cheapest of the
        # near-fastest set — this keeps the choice stable in tight
        # phases instead of churning on the noisy argmax.
        fastest_speed = max(p.speedup for p in points)
        fastest = min(
            (p for p in points if p.speedup >= 0.98 * fastest_speed),
            key=lambda p: p.cost_rate,
        )
        return Schedule(entries=(ScheduleEntry(fastest, 1.0),), saturated=True)

    over = min(over_candidates, key=lambda p: (p.cost_rate, p.speedup))
    if under_candidates:
        under = max(under_candidates, key=lambda p: (p.efficiency, -p.cost_rate))
    else:
        under = idle

    t_over = (target_speedup - under.speedup) / (over.speedup - under.speedup)
    t_over = min(max(t_over, 0.0), 1.0)
    return Schedule(
        entries=(
            ScheduleEntry(over, t_over),
            ScheduleEntry(under, 1.0 - t_over),
        )
    )


def _lower_hull(points: List[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Lower convex hull of 2D points sorted by x (Andrew's monotone chain)."""
    return _lower_hull_presorted(sorted(set(points)))


def _lower_hull_presorted(
    points: Sequence[Tuple[float, float]],
) -> List[Tuple[float, float]]:
    """Monotone chain over already-sorted, already-deduplicated points.

    The incremental optimizer keeps its candidate keys sorted across
    steps, so the per-step hull rebuild pays only for this chain — the
    exact same comparisons (and therefore the exact same hull) as
    :func:`_lower_hull` on the equivalent input.
    """
    if len(points) <= 2:
        return list(points)
    hull: List[Tuple[float, float]] = []
    append = hull.append
    pop = hull.pop
    for point in points:
        px, py = point
        while len(hull) >= 2:
            x1, y1 = hull[-2]
            x2, y2 = hull[-1]
            cross = (x2 - x1) * (py - y1) - (y2 - y1) * (px - x1)
            if cross <= 0:
                pop()
            else:
                break
        append(point)
    return hull


def compute_envelope(
    points: Sequence[ConfigPoint],
    idle: ConfigPoint = IDLE_POINT,
) -> Tuple[List[Tuple[float, float]], Dict[Tuple[float, float], ConfigPoint]]:
    """Lower convex envelope of {(s_k, c_k)} ∪ {idle}.

    Returns ``(hull, best_at)``: the hull vertices sorted by speedup and
    the map from each distinct (speedup, cost) pair back to the first
    configuration point carrying it.  This is the target-independent
    part of :func:`lower_envelope_cost`, split out so callers that solve
    many targets against the same operating points (the oracle, the
    runtime's per-step over/under solve) can reuse one envelope.
    """
    best_at: Dict[Tuple[float, float], ConfigPoint] = {}
    for p in points:
        key = (p.speedup, p.cost_rate)
        if key not in best_at:
            best_at[key] = p
    idle_key = (idle.speedup, idle.cost_rate)
    if idle_key not in best_at:
        best_at[idle_key] = idle
    hull = _lower_hull(list(best_at))
    return hull, best_at


def lower_envelope_cost(
    points: Sequence[ConfigPoint],
    target_speedup: float,
    idle: ConfigPoint = IDLE_POINT,
) -> Tuple[float, Schedule]:
    """Exact optimum of Eqn. 5: minimal cost rate to average s(t).

    Time-sharing makes any point on a segment between two operating
    points reachable, so the optimum lies on the lower convex envelope
    of {(s_k, c_k)} ∪ {idle}.  Returns ``(cost_rate, schedule)``.
    Raises ``ValueError`` if the target exceeds every speedup.

    When ``points`` carries a memoized envelope (an
    :class:`~repro.sim.optables.OperatingPointTable` or a
    :class:`LearnedPoints`) and the fast paths are on, the cached hull
    is reused instead of being rebuilt per call.
    """
    if target_speedup < 0:
        raise ValueError(
            f"target_speedup must be non-negative, got {target_speedup}"
        )
    if not len(points):
        raise ValueError("need at least one configuration point")
    cached = getattr(points, "envelope", None)
    if cached is not None and perf.FAST:
        hull, best_at = cached(idle)
    else:
        hull, best_at = compute_envelope(points, idle)
    max_speed = hull[-1][0]
    if target_speedup > max_speed + 1e-12:
        raise ValueError(
            f"target speedup {target_speedup} exceeds the fastest "
            f"configuration ({max_speed})"
        )
    for (x1, y1), (x2, y2) in zip(hull, hull[1:]):
        if x1 - 1e-12 <= target_speedup <= x2 + 1e-12:
            span = x2 - x1
            weight = 0.0 if span == 0 else (target_speedup - x1) / span
            weight = min(max(weight, 0.0), 1.0)
            cost = y1 + weight * (y2 - y1)
            schedule = Schedule(
                entries=(
                    ScheduleEntry(best_at[(x2, y2)], weight),
                    ScheduleEntry(best_at[(x1, y1)], 1.0 - weight),
                )
            )
            return cost, schedule
    # target equals the single hull point (hull of length 1).
    point = best_at[hull[0]]
    return point.cost_rate, Schedule(entries=(ScheduleEntry(point, 1.0),))


class LearnedPoints:
    """A live, incrementally-maintained view of a learner's raw-QoS points.

    The seed runtime rebuilt the full ``ConfigPoint`` list (and the
    lower hull) from fresh ``qos_estimates()`` dictionaries on every
    step — ~130 dataclass constructions and two hull sorts per control
    interval.  A Q-learning update only touches the one or two
    configurations that actually executed, so this view keeps the point
    list materialized and patches exactly the entries whose estimates
    changed (tracked by the learner's ``estimates_version`` counter and
    per-config change log).  The lower envelope is likewise cached and
    recomputed only when some estimate moved since it was last built.

    Points are expressed in *raw QoS units* (q̂_k, not ŝ_k) — the units
    the CASH runtime solves in — so changes to the base-speed estimate
    alone do not invalidate anything.

    With :data:`repro.perf.FAST` off, every access rebuilds from
    scratch, reproducing the reference engine's behaviour for A/B
    benchmarking.
    """

    def __init__(
        self,
        learner: "SpeedupLearnerLike",
        configs: Sequence[VCoreConfig],
        cost_rates: Sequence[float],
    ) -> None:
        if len(configs) != len(cost_rates):
            raise ValueError(
                f"{len(configs)} configs but {len(cost_rates)} cost rates"
            )
        if not configs:
            raise ValueError("need at least one configuration")
        self._learner = learner
        self._configs = list(configs)
        self._cost_rates = list(cost_rates)
        self._index: Dict[VCoreConfig, int] = {}
        for position, config in enumerate(self._configs):
            self._index.setdefault(config, position)
        self._version: Optional[int] = None
        self._points: List[ConfigPoint] = []
        self._envelopes: Dict[tuple, tuple] = {}
        # Dedup-key index maintained across refreshes: the sorted list
        # of unique (speedup, cost_rate) keys and, per key, the point
        # positions carrying it (first position = first-wins owner).
        # Keeping these incremental means a hull rebuild costs only the
        # monotone chain, not a fresh dict + sort per step.
        self._key_positions: Dict[Tuple[float, float], List[int]] = {}
        self._keys_sorted: List[Tuple[float, float]] = []

    def __getstate__(self) -> Dict[str, object]:
        # The envelope cache holds read-only ``MappingProxyType`` views,
        # which cannot pickle (service checkpoints snapshot runtimes).
        # It is a pure function of the point list, so dropping it only
        # costs a rebuild on the next solve — same hull, bit for bit.
        state = dict(self.__dict__)
        state["_envelopes"] = {}
        return state

    def _rebuild_all(self) -> None:
        learner = self._learner
        self._points = [
            ConfigPoint(
                config=config,
                speedup=learner.qos_estimate(config),
                cost_rate=rate,
            )
            for config, rate in zip(self._configs, self._cost_rates)
        ]
        positions: Dict[Tuple[float, float], List[int]] = {}
        for position, point in enumerate(self._points):
            positions.setdefault(
                (point.speedup, point.cost_rate), []
            ).append(position)
        self._key_positions = positions
        self._keys_sorted = sorted(positions)

    def _apply_change(self, position: int, new_point: ConfigPoint) -> None:
        old_point = self._points[position]
        self._points[position] = new_point
        old_key = (old_point.speedup, old_point.cost_rate)
        new_key = (new_point.speedup, new_point.cost_rate)
        if old_key == new_key:
            return
        holders = self._key_positions[old_key]
        holders.remove(position)
        if not holders:
            del self._key_positions[old_key]
            index = bisect_left(self._keys_sorted, old_key)
            del self._keys_sorted[index]
        existing = self._key_positions.get(new_key)
        if existing is None:
            self._key_positions[new_key] = [position]
            insort(self._keys_sorted, new_key)
        else:
            existing.append(position)

    def _refresh(self) -> None:
        version = getattr(self._learner, "estimates_version", None)
        if not perf.FAST or version is None:
            self._rebuild_all()
            self._envelopes = {}
            self._version = None
            return
        if self._version == version and self._points:
            return
        changed = (
            self._learner.changes_since(self._version)
            if self._version is not None and self._points
            else None
        )
        if changed is None:
            self._rebuild_all()
        else:
            for config in changed:
                position = self._index.get(config)
                if position is None:
                    continue
                self._apply_change(
                    position,
                    ConfigPoint(
                        config=config,
                        speedup=self._learner.qos_estimate(config),
                        cost_rate=self._cost_rates[position],
                    ),
                )
        self._envelopes = {}
        self._version = version

    def points(self) -> List[ConfigPoint]:
        """The current operating points, patched up to date."""
        self._refresh()
        return self._points

    def __len__(self) -> int:
        return len(self._configs)

    def __iter__(self) -> Iterator[ConfigPoint]:
        return iter(self.points())

    def __getitem__(self, index):
        return self.points()[index]

    def envelope(self, idle: ConfigPoint = IDLE_POINT) -> tuple:
        """Cached ``(hull, best_at)``, rebuilt only on estimate change.

        The rebuild runs the monotone chain over the incrementally
        maintained sorted key list — the same input (and so the same
        hull) :func:`compute_envelope` derives from scratch — and
        resolves first-wins owners for hull vertices only (the solver
        never looks up points off the hull).
        """
        self._refresh()
        cache_key = (idle.config, idle.speedup, idle.cost_rate)
        cached = self._envelopes.get(cache_key)
        if cached is None:
            idle_key = (idle.speedup, idle.cost_rate)
            if idle_key in self._key_positions:
                keys: Sequence[Tuple[float, float]] = self._keys_sorted
            else:
                keys = list(self._keys_sorted)
                insort(keys, idle_key)
            hull = _lower_hull_presorted(keys)
            best_at: Dict[Tuple[float, float], ConfigPoint] = {}
            for vertex in hull:
                holders = self._key_positions.get(vertex)
                best_at[vertex] = (
                    self._points[min(holders)] if holders else idle
                )
            # Published frozen (tuple hull, read-only mapping view): the
            # envelope is shared by every consumer until the next
            # estimate change, so in-place edits must be impossible.
            cached = (tuple(hull), MappingProxyType(best_at))
            self._envelopes[cache_key] = cached
        return cached


class SpeedupLearnerLike:  # pragma: no cover - typing aid only
    """Protocol sketch of what :class:`LearnedPoints` needs."""

    estimates_version: int

    def qos_estimate(self, config: VCoreConfig) -> float: ...

    def changes_since(self, version: int) -> Optional[List[VCoreConfig]]: ...


class LearningOptimizer:
    """The runtime's optimizer: learned speedups through the LP rule.

    Holds the configuration catalogue (with cost rates from the cost
    model) and, given the learner's current speedup estimates, produces
    the over/under schedule for a speedup demand.
    """

    def __init__(
        self,
        configs: Sequence[VCoreConfig],
        cost_rates: Sequence[float],
        idle: ConfigPoint = IDLE_POINT,
    ) -> None:
        if len(configs) != len(cost_rates):
            raise ValueError(
                f"{len(configs)} configs but {len(cost_rates)} cost rates"
            )
        if not configs:
            raise ValueError("need at least one configuration")
        self.configs = list(configs)
        self.cost_rates = list(cost_rates)
        self.idle = idle

    def points(self, speedups: Dict[VCoreConfig, float]) -> List[ConfigPoint]:
        missing = [c for c in self.configs if c not in speedups]
        if missing:
            raise KeyError(f"no speedup estimate for {missing[:3]}...")
        return [
            ConfigPoint(config=c, speedup=speedups[c], cost_rate=rate)
            for c, rate in zip(self.configs, self.cost_rates)
        ]

    def schedule(
        self, speedups: Dict[VCoreConfig, float], target_speedup: float
    ) -> Schedule:
        return solve_two_config(self.points(speedups), target_speedup, self.idle)

    def optimal_cost(
        self, speedups: Dict[VCoreConfig, float], target_speedup: float
    ) -> Tuple[float, Schedule]:
        return lower_envelope_cost(
            self.points(speedups), target_speedup, self.idle
        )

    def learned_points(self, learner: "SpeedupLearnerLike") -> LearnedPoints:
        """An incremental point view bound to this catalogue's costs."""
        return LearnedPoints(learner, self.configs, self.cost_rates)

    def schedule_points(
        self, points: Sequence[ConfigPoint], target_speedup: float
    ) -> Schedule:
        """Over/under schedule from pre-built points (no dict round-trip)."""
        return solve_two_config(points, target_speedup, self.idle)

    def optimal_cost_points(
        self, points: Sequence[ConfigPoint], target_speedup: float
    ) -> Tuple[float, Schedule]:
        """Envelope LP from pre-built points (cache-aware via envelope)."""
        return lower_envelope_cost(points, target_speedup, self.idle)
