"""The CASH runtime (Section IV, Fig. 6, Algorithm 1).

The runtime closes the loop between a QoS goal and the configurable
hardware:

* the :class:`~repro.runtime.controller.DeadbeatController` turns QoS
  error into a speedup demand (Eqns. 1–2);
* the :class:`~repro.runtime.kalman.KalmanEstimator` tracks the
  application's base speed online, detecting phases (Eqns. 3–4);
* the :class:`~repro.runtime.qlearning.SpeedupLearner` learns each
  configuration's true speedup from observed QoS (Eqn. 7);
* the :class:`~repro.runtime.optimizer.LearningOptimizer` converts the
  speedup demand into a minimal-cost two-configuration schedule
  (Eqns. 5–6);
* :class:`~repro.runtime.cash.CASHRuntime` assembles them into
  Algorithm 1.
"""

from repro.runtime.controller import DeadbeatController
from repro.runtime.kalman import KalmanEstimator
from repro.runtime.qlearning import SpeedupLearner
from repro.runtime.optimizer import (
    ConfigPoint,
    LearningOptimizer,
    Schedule,
    ScheduleEntry,
    solve_two_config,
    lower_envelope_cost,
)
from repro.runtime.cash import CASHRuntime, RuntimeDecision

__all__ = [
    "DeadbeatController",
    "KalmanEstimator",
    "SpeedupLearner",
    "ConfigPoint",
    "LearningOptimizer",
    "Schedule",
    "ScheduleEntry",
    "solve_two_config",
    "lower_envelope_cost",
    "CASHRuntime",
    "RuntimeDecision",
]
