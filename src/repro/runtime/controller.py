"""Deadbeat QoS controller (Section IV-A, Eqns. 1–2).

The controller measures the error between the QoS goal and the
delivered QoS and computes the speedup — relative to the application's
base speed — that eliminates the error as fast as possible:

    e(t) = q0 - q(t)                                     (Eqn. 1)
    s(t) = s(t-1) + e(t) / b                             (Eqn. 2)

``b`` is the base QoS: the application's QoS on one Slice with a 64 KB
L2.  A deadbeat design drives the error to zero in one step under a
perfect model; the Kalman estimator supplies a continually updated
``b̂(t)`` so the controller stays deadbeat across phases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


class DeadbeatController:
    """Integrates QoS error into a speedup demand."""

    def __init__(
        self,
        qos_goal: float,
        base_qos: float,
        min_speedup: float = 0.0,
        max_speedup: float = 64.0,
        initial_speedup: Optional[float] = None,
        gain: float = 1.0,
    ) -> None:
        if qos_goal <= 0:
            raise ValueError(f"qos_goal must be positive, got {qos_goal}")
        if base_qos <= 0:
            raise ValueError(f"base_qos must be positive, got {base_qos}")
        if min_speedup < 0:
            raise ValueError(f"min_speedup must be non-negative, got {min_speedup}")
        if max_speedup <= min_speedup:
            raise ValueError(
                f"max_speedup ({max_speedup}) must exceed min_speedup "
                f"({min_speedup})"
            )
        if not 0.0 < gain <= 1.0:
            raise ValueError(f"gain must be in (0, 1], got {gain}")
        self.qos_goal = qos_goal
        self.base_qos = base_qos
        self.min_speedup = min_speedup
        self.max_speedup = max_speedup
        self.gain = gain
        """Integrator gain κ.  κ = 1 is the paper's deadbeat design
        (one-step correction under a perfect model); κ < 1 damps the
        loop, trading a slower (1/κ-step) response for a √(κ/(2−κ))
        attenuation of measurement noise at the output."""
        if initial_speedup is None:
            # Start at the speedup that would exactly meet the goal if
            # the base-speed estimate were correct.
            initial_speedup = qos_goal / base_qos
        self._speedup = self._clamp(initial_speedup)
        self.last_error = 0.0

    def _clamp(self, speedup: float) -> float:
        return max(self.min_speedup, min(self.max_speedup, speedup))

    @property
    def speedup(self) -> float:
        """The current speedup demand s(t)."""
        return self._speedup

    def error(self, measured_qos: float) -> float:
        """QoS error e(t) = q0 - q(t) (Eqn. 1)."""
        return self.qos_goal - measured_qos

    def update(
        self,
        measured_qos: float,
        base_estimate: Optional[float] = None,
        max_useful_speedup: Optional[float] = None,
    ) -> float:
        """Advance the control law one interval; returns the new s(t).

        ``base_estimate`` is the Kalman filter's b̂(t); when omitted the
        static base QoS is used (the limited controller of Section IV-A
        that reacts to phases only slowly).

        ``max_useful_speedup`` is an anti-windup bound: when no
        configuration can deliver more than this speedup, integrating
        error beyond it only delays recovery once the demand becomes
        satisfiable again, so the integrator is clamped there.
        """
        if measured_qos < 0:
            raise ValueError(
                f"measured_qos must be non-negative, got {measured_qos}"
            )
        base = self.base_qos if base_estimate is None else base_estimate
        if base <= 0:
            raise ValueError(f"base estimate must be positive, got {base}")
        self.last_error = self.error(measured_qos)
        speedup = self._clamp(self._speedup + self.gain * self.last_error / base)
        if max_useful_speedup is not None:
            if max_useful_speedup <= 0:
                raise ValueError(
                    "max_useful_speedup must be positive, "
                    f"got {max_useful_speedup}"
                )
            speedup = min(speedup, max_useful_speedup)
        self._speedup = speedup
        return self._speedup

    def retarget(self, qos_goal: float) -> None:
        """Change the QoS goal mid-run (e.g. a customer edits their SLO)."""
        if qos_goal <= 0:
            raise ValueError(f"qos_goal must be positive, got {qos_goal}")
        self.qos_goal = qos_goal

    def reset(self, speedup: Optional[float] = None) -> None:
        if speedup is None:
            speedup = self.qos_goal / self.base_qos
        self._speedup = self._clamp(speedup)
        self.last_error = 0.0
