"""Kalman estimation of the application's base speed (Eqns. 3–4).

The controller's key parameter is ``b``, the base QoS (QoS on one Slice
with 64 KB of L2).  A phase change is precisely a shift in ``b``, but
``b`` cannot be measured directly without dropping to the base
configuration — which would violate QoS.  CASH instead estimates it from
the observable pair (applied speedup, delivered QoS) with a scalar
Kalman filter over the time-varying model

    b(t) = b(t-1) + δb(t)
    q(t) = s(t-1) · b(t-1) + δq(t)                        (Eqn. 3)

The filter is statistically optimal and exponentially convergent: the
steps needed to detect a phase change are logarithmic in the base-speed
gap between consecutive phases (Section IV-B).  The only parameter not
measured from hardware is ``r``, the measurement noise, a constant
property of the architecture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


class KalmanEstimator:
    """Scalar Kalman filter tracking base QoS b(t)."""

    def __init__(
        self,
        initial_base: float,
        process_variance: float = 0.01,
        measurement_variance: float = 0.01,
        initial_error_variance: float = 1.0,
    ) -> None:
        if initial_base <= 0:
            raise ValueError(f"initial_base must be positive, got {initial_base}")
        if process_variance <= 0:
            raise ValueError(
                f"process_variance must be positive, got {process_variance}"
            )
        if measurement_variance <= 0:
            raise ValueError(
                f"measurement_variance must be positive, got {measurement_variance}"
            )
        if initial_error_variance <= 0:
            raise ValueError(
                f"initial_error_variance must be positive, "
                f"got {initial_error_variance}"
            )
        self._b_hat = initial_base
        self.process_variance = process_variance
        self.measurement_variance = measurement_variance
        self._error_variance = initial_error_variance
        self.last_gain = 0.0
        self.last_innovation = 0.0

    @property
    def estimate(self) -> float:
        """The a-posteriori base-speed estimate b̂(t)."""
        return self._b_hat

    @property
    def error_variance(self) -> float:
        """The a-posteriori error variance E(t)."""
        return self._error_variance

    def update(self, measured_qos: float, applied_speedup: float) -> float:
        """Fold in one observation q(t) taken under speedup s(t-1).

        Implements Eqn. 4:

            b̂⁻(t)  = b̂(t-1)
            E⁻(t)  = E(t-1) + v(t)
            Kal(t) = E⁻(t)·s / (s²·E⁻(t) + r)
            b̂(t)   = b̂⁻(t) + Kal(t)·[q(t) − s·b̂⁻(t)]
            E(t)   = [1 − Kal(t)·s]·E⁻(t)
        """
        if measured_qos < 0:
            raise ValueError(
                f"measured_qos must be non-negative, got {measured_qos}"
            )
        if applied_speedup < 0:
            raise ValueError(
                f"applied_speedup must be non-negative, got {applied_speedup}"
            )
        s = applied_speedup
        b_prior = self._b_hat
        e_prior = self._error_variance + self.process_variance
        gain = (e_prior * s) / (s * s * e_prior + self.measurement_variance)
        innovation = measured_qos - s * b_prior
        self._b_hat = b_prior + gain * innovation
        self._error_variance = (1.0 - gain * s) * e_prior
        # Keep the estimate physically meaningful: base speed is
        # positive, and a transient of bad observations must not wedge
        # the filter at a non-recoverable operating point.
        if self._b_hat <= 0:
            self._b_hat = max(measured_qos / max(s, 1e-9), 1e-12)
        if self._error_variance <= 0:
            self._error_variance = self.process_variance
        self.last_gain = gain
        self.last_innovation = innovation
        return self._b_hat

    def reset(self, base: float, error_variance: Optional[float] = None) -> None:
        if base <= 0:
            raise ValueError(f"base must be positive, got {base}")
        self._b_hat = base
        if error_variance is not None:
            if error_variance <= 0:
                raise ValueError(
                    f"error_variance must be positive, got {error_variance}"
                )
            self._error_variance = error_variance


@dataclass(frozen=True)
class PhaseChange:
    """A detected shift in base speed."""

    step: int
    previous_base: float
    new_base: float

    @property
    def magnitude(self) -> float:
        return abs(self.new_base - self.previous_base)


class PhaseChangeDetector:
    """Flags phase changes from the Kalman estimate's movement.

    A phase change is declared when the estimate moves by more than
    ``threshold`` (relative) from its reference value for ``confirm``
    consecutive observations — a single-step excursion is usually a
    disturbance (a page fault, a mis-estimated schedule), not a phase.
    The reference re-anchors after each detection, so repeated drift in
    one direction raises repeated detections, one per phase.
    """

    def __init__(
        self,
        estimator: KalmanEstimator,
        threshold: float = 0.2,
        confirm: int = 2,
    ) -> None:
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        if confirm <= 0:
            raise ValueError(f"confirm must be positive, got {confirm}")
        self.estimator = estimator
        self.threshold = threshold
        self.confirm = confirm
        self._reference = estimator.estimate
        self._previous = estimator.estimate
        self._streak = 0
        self._step = 0
        self.changes: List[PhaseChange] = []

    def observe(self) -> Optional[PhaseChange]:
        """Check the current estimate; returns a change if one fired.

        Besides the drift-from-reference test, the estimate must have
        locally *settled* (small step-to-step movement): the Kalman
        filter converges to a large shift over several steps, and
        firing mid-transit would report one phase change as many.
        """
        self._step += 1
        current = self.estimator.estimate
        previous = self._previous
        self._previous = current
        if self._reference <= 0:
            self._reference = current
            return None
        drift = abs(current - self._reference) / self._reference
        if drift > self.threshold:
            self._streak += 1
        else:
            self._streak = 0
        settled = (
            previous > 0
            and abs(current - previous) / previous < self.threshold / 4.0
        )
        if self._streak >= self.confirm and settled:
            change = PhaseChange(
                step=self._step,
                previous_base=self._reference,
                new_base=current,
            )
            self.changes.append(change)
            self._reference = current
            self._streak = 0
            return change
        return None
