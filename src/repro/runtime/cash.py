"""The CASH runtime loop (Algorithm 1).

Each control interval the runtime:

1. reads the delivered QoS q(t) (synthesized from remote performance
   counters over the Runtime Interface Network);
2. updates the Kalman estimate b̂(t) of base speed (Eqn. 3–4);
3. computes the speedup demand s(t) with the deadbeat controller,
   substituting b̂(t) for b (Eqn. 2);
4. solves for the over/under schedule using *learned* speedup
   estimates (Eqn. 6), occasionally exploring a stale configuration;
5. runs ``over`` for t_over and ``under`` for t_under;
6. folds the observed QoS of each leg into the speedup estimates
   (Eqn. 7).

The loop is O(1) per iteration — no search over the configuration
space — which is what makes the measured runtime overhead of ~1000–2000
cycles per iteration possible (Section VI-A).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import perf
from repro.arch.vcore import VCoreConfig
from repro.runtime.controller import DeadbeatController
from repro.runtime.kalman import KalmanEstimator, PhaseChangeDetector
from repro.runtime.optimizer import (
    ConfigPoint,
    LearningOptimizer,
    Schedule,
    ScheduleEntry,
    IDLE_POINT,
)
from repro.runtime.qlearning import ExplorationPolicy, SpeedupLearner


@dataclass(frozen=True)
class LegObservation:
    """Measured QoS for one executed schedule leg."""

    config: Optional[VCoreConfig]
    fraction: float
    qos: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0 + 1e-12:
            raise ValueError(f"fraction must be in [0, 1], got {self.fraction}")
        if self.qos < 0:
            raise ValueError(f"qos must be non-negative, got {self.qos}")


@dataclass(frozen=True)
class QoSMeasurement:
    """What the hardware reports for the previous control interval.

    ``signature`` carries configuration-independent workload
    fingerprints read from the performance-counter network (Section
    III-B2 lists cache miss rate and branch miss-predict rate among the
    counters the runtime can query) — the runtime uses them to
    recognize *which* phase it entered, not just that one changed.
    """

    overall_qos: float
    legs: Tuple[LegObservation, ...] = ()
    signature: Tuple[float, ...] = ()
    goal_scale: float = 1.0
    """For load-normalized QoS metrics (server capacity margin): the
    factor by which the normalization changed since the previous
    measurement.  The runtime observes arrival rates through its
    counters, so this is measured, not oracular — it lets the learner
    renormalize every estimate instead of waiting to re-visit each
    configuration as the load drifts."""

    def __post_init__(self) -> None:
        if self.overall_qos < 0:
            raise ValueError(
                f"overall_qos must be non-negative, got {self.overall_qos}"
            )


@dataclass(frozen=True)
class RuntimeDecision:
    """The runtime's output for one interval."""

    schedule: Schedule
    speedup_demand: float
    base_estimate: float
    explored: Optional[VCoreConfig] = None
    phase_change: bool = False


class CASHRuntime:
    """Controller + Estimator + LearningOptimizer, per Algorithm 1."""

    def __init__(
        self,
        configs: Sequence[VCoreConfig],
        cost_rates: Sequence[float],
        qos_goal: float,
        base_config: VCoreConfig,
        initial_base_qos: float,
        alpha: float = 0.3,
        process_variance: float = 1e-4,
        measurement_variance: float = 1e-3,
        phase_threshold: float = 0.2,
        epsilon: float = 0.15,
        seed: int = 0,
        explore: bool = True,
        controller_gain: float = 0.6,
        phase_memory: bool = True,
        learner_factory: Optional[type] = None,
    ) -> None:
        if qos_goal <= 0:
            raise ValueError(f"qos_goal must be positive, got {qos_goal}")
        self.configs = list(configs)
        self.qos_goal = qos_goal
        self.base_config = base_config
        # The control law runs in raw QoS units: Eqn. 2 multiplied
        # through by b is q_target(t) = q_target(t-1) + e(t), an
        # identity when b̂ is exact — but it keeps estimator transients
        # out of the control loop (dividing by b̂ and multiplying back
        # only injects estimation noise).  The speedup demand s(t)
        # reported in decisions is q_target / b̂, recovering the paper's
        # quantity.
        self.controller = DeadbeatController(
            qos_goal=qos_goal,
            base_qos=1.0,
            gain=controller_gain,
            max_speedup=1e12,
        )
        self.estimator = KalmanEstimator(
            initial_base=initial_base_qos,
            process_variance=process_variance,
            measurement_variance=measurement_variance,
        )
        self.detector = PhaseChangeDetector(
            self.estimator, threshold=phase_threshold
        )
        learner_cls = learner_factory if learner_factory else SpeedupLearner
        self.learner = learner_cls(
            configs=configs,
            base_config=base_config,
            base_qos=initial_base_qos,
            alpha=alpha,
            phase_memory=phase_memory,
        )
        self.optimizer = LearningOptimizer(
            configs=configs, cost_rates=cost_rates
        )
        # Incremental view of the learner's operating points: patched
        # in place as estimates change instead of being rebuilt (with
        # its lower envelope) from fresh dicts every interval.
        self.learned_points = self.optimizer.learned_points(self.learner)
        # First occurrence wins, matching ``self.configs.index(...)``.
        self._cost_rate_of: Dict[VCoreConfig, float] = {}
        for config, rate in zip(self.configs, cost_rates):
            self._cost_rate_of.setdefault(config, rate)
        self._initial_epsilon = epsilon if explore else 0.0
        self._reopen_epsilon = min(0.10, self._initial_epsilon)
        self.exploration = ExplorationPolicy(
            self.learner,
            epsilon=self._initial_epsilon,
            epsilon_floor=0.01 if explore else 0.0,
            decay=0.97,
            rng=random.Random(seed),
            cost_rates={
                config: rate for config, rate in zip(self.configs, cost_rates)
            },
        )
        self._last_schedule: Optional[Schedule] = None
        self._applied_speedup = qos_goal / initial_base_qos
        # Signature-based phase detection state: the reference counter
        # signature of the current phase, the confirmation streak, and
        # the base-speed estimate recorded when the phase was entered.
        self._signature_ref: Optional[Tuple[float, ...]] = None
        self._signature_streak = 0
        self._phase_entry_base = initial_base_qos
        self.decisions: List[RuntimeDecision] = []

    @property
    def last_schedule(self) -> Optional[Schedule]:
        return self._last_schedule

    def _phase_changed(self, measurement: QoSMeasurement) -> bool:
        """Detect a phase change from the counter signature.

        The base-speed estimate random-walks slightly even inside a
        stable phase (it is identified only through the learned
        schedule), so using it alone both fires spuriously and misses
        phases that happen to share a base speed.  The counter
        signature — memory intensity and branch mispredict rate, read
        over the Runtime Interface Network — changes decisively at real
        phase boundaries and is configuration-independent, so it is the
        trigger; the Kalman level remains the bank-matching key.  Two
        consecutive out-of-band signatures confirm a change.  Without a
        signature (degraded monitoring), the Kalman drift detector is
        the fallback.
        """
        kalman_change = self.detector.observe()
        if not measurement.signature:
            return kalman_change is not None
        if self._signature_ref is None:
            self._signature_ref = measurement.signature
            return False
        moved = not SpeedupLearner._signatures_match(
            self._signature_ref, measurement.signature, tolerance=0.10
        )
        if moved:
            # Counter noise is ~2% against a 10% band (a 5σ event), so
            # a single out-of-band signature is already decisive — and
            # reacting immediately means the triggering interval's
            # observations are credited to the *new* phase's table.
            self._signature_ref = measurement.signature
            self._signature_streak = 0
            return True
        return False

    def _absorb_measurement(self, measurement: QoSMeasurement) -> bool:
        """Steps 1–2 and 6 of Algorithm 1 (estimation + learning)."""
        self.estimator.update(measurement.overall_qos, self._applied_speedup)
        # Physical floor: base speed cannot be below the larger of the
        # measured QoS and the goal, divided by the largest speedup any
        # virtual core could provide (the goal is achievable, so some
        # configuration delivers it); without this a run of optimistic
        # schedule estimates can walk the filter into a collapse it
        # cannot recover from (the estimate only enters the innovation
        # multiplied by s).
        floor = max(measurement.overall_qos, self.qos_goal) / 64.0
        if self.estimator.estimate < floor:
            self.estimator.reset(floor)
        # Sentinel: goal_scale is exactly 1.0 iff the QoS normalization
        # did not change this interval (the simulator computes it as a
        # ratio of identical values); any other value is a real rescale.
        if measurement.goal_scale > 0 and measurement.goal_scale != 1.0:  # lint: allow(float-eq)
            # Known change in the QoS normalization (e.g. request rate
            # moved): every configuration's margin scales by the same
            # measured factor.
            self.learner.rescale_on_phase_change(1.0 / measurement.goal_scale)
        changed = self._phase_changed(measurement)
        if changed and self._phase_entry_base > 0:
            recalled = self.learner.on_phase_change(
                self._phase_entry_base,
                self.estimator.estimate,
                signature=measurement.signature,
                anchor_qos=min(
                    max(measurement.overall_qos, 0.25 * self.qos_goal),
                    self.qos_goal,
                ),
            )
            self._phase_entry_base = self.estimator.estimate
            if not recalled:
                # A genuinely new phase: re-open exploration so the
                # learner maps its (possibly non-convex) landscape.
                self.exploration.epsilon = max(
                    self.exploration.epsilon, self._reopen_epsilon
                )
        self.learner.set_base_qos(self.estimator.estimate)
        for leg in measurement.legs:
            if leg.config is not None and leg.fraction > 0:
                self.learner.observe(leg.config, leg.qos)
        return changed

    def _build_schedule(
        self, target_qos: float, speedup_demand: float
    ) -> Tuple[Schedule, Optional[VCoreConfig]]:
        """Steps 4–5: the two-configuration schedule plus exploration.

        Eqn. 5 is solved exactly on the learned estimates; LP theory
        guarantees the optimum has at most two non-zero legs (the
        ``over``/``under`` structure of Eqn. 6).  The solve runs in raw
        QoS units — Eqn. 5 is homogeneous in s, so the schedule is the
        same as in speedup units, but the learned landscape stays
        decoupled from base-estimate transients.  When the demand
        exceeds every learned estimate the schedule clamps to the
        believed-fastest configuration (``saturated``).
        """
        if perf.FAST:
            # Fast path: the incremental LearnedPoints view (with its
            # cached envelope) replaces per-step dict materialization.
            # Identical floats flow through an identical solve.
            points = self.learned_points

            def solve(target: float) -> Tuple[float, Schedule]:
                return self.optimizer.optimal_cost_points(points, target)

            def fallback(target: float) -> Schedule:
                return self.optimizer.schedule_points(points, target)

            believed_max = self.learner.max_qos_estimate()
        else:
            # Reference path: the seed's work profile — fresh estimate
            # dicts, point lists and hulls on every solve.
            estimates = self.learner.qos_estimates()

            def solve(target: float) -> Tuple[float, Schedule]:
                return self.optimizer.optimal_cost(estimates, target)

            def fallback(target: float) -> Schedule:
                return self.optimizer.schedule(estimates, target)

            believed_max = max(estimates.values(), default=0.0)
        try:
            _, schedule = solve(target_qos)
        except ValueError:
            schedule = fallback(target_qos)
        if schedule.saturated:
            # The demand exceeds every *believed* QoS.  Trusting the
            # estimates here is a trap: a pessimistically-wrong estimate
            # is never scheduled and therefore never corrected.  Some of
            # the time, split the quantum between the believed-fastest
            # configuration and the highest-potential (UCB) candidate —
            # this is how the learning escapes local optima (Section IV,
            # "prevents the system from getting trapped in local
            # optima").  Probing only probabilistically matters: if
            # every saturated interval probed, the probes themselves
            # would hold QoS down and keep the controller saturated — a
            # self-sustaining cycle.
            best_believed = believed_max
            # The bonus scale must reflect what success would look like
            # (the target), not the possibly-crushed estimates.
            scale = max(best_believed, target_qos)
            fastest = max(
                schedule.active_entries,
                key=lambda e: e.point.speedup,
                default=None,
            )
            candidate = self.learner.ucb_candidate(
                scale=scale,
                exclude=fastest.point.config if fastest else None,
            )
            # Probe only when the candidate's optimistic potential
            # exceeds the best *believed* QoS — i.e. the probe could
            # plausibly improve on what the runtime is already doing.
            # (Gating on the target instead would re-create the trap:
            # with a crushed table, nothing clears the target, so
            # nothing would ever be re-measured.)
            probe_now = (
                self.exploration.rng.random() < 0.3
                and self.learner.ucb_potential(candidate, scale=scale)
                > best_believed
            )
            if (
                probe_now
                and fastest is not None
                and candidate != fastest.point.config
            ):
                probe = ConfigPoint(
                    config=candidate,
                    speedup=self.learner.qos_estimate(candidate),
                    cost_rate=self._cost_rate_of[candidate],
                )
                schedule = Schedule(
                    entries=(
                        ScheduleEntry(probe, 0.5),
                        ScheduleEntry(fastest.point, 0.5),
                    ),
                    saturated=True,
                )
                return schedule, candidate
        explore_fraction = 0.15
        boosted = target_qos / (1.0 - explore_fraction)
        has_slack = believed_max >= boosted
        explored = (
            self.exploration.maybe_explore(speedup_demand) if has_slack else None
        )
        if explored is not None:
            # Dedicate a bounded slice of the quantum to the
            # exploration candidate.  The exploit remainder is re-solved
            # for a boosted target so QoS is met even if the candidate
            # delivers *nothing* — exploration must never be the cause
            # of a violation, only of (bounded) extra cost.  When no
            # configuration has that much slack (a tight phase), the
            # runtime does not explore at all.
            try:
                _, exploit = solve(boosted)
            except ValueError:
                exploit = fallback(boosted)
            point = ConfigPoint(
                config=explored,
                speedup=self.learner.qos_estimate(explored),
                cost_rate=self._cost_rate_of[explored],
            )
            entries = [ScheduleEntry(point, explore_fraction)] + [
                ScheduleEntry(e.point, e.fraction * (1.0 - explore_fraction))
                for e in exploit.entries
            ]
            schedule = Schedule(
                entries=tuple(entries), saturated=exploit.saturated
            )
        return schedule, explored

    def step(self, measurement: Optional[QoSMeasurement] = None) -> RuntimeDecision:
        """One iteration of Algorithm 1; returns the schedule to apply."""
        phase_change = False
        if measurement is not None:
            phase_change = self._absorb_measurement(measurement)
        base = self.estimator.estimate
        if phase_change:
            # The integrator state corrected the *previous* phase's
            # model bias; carrying it into a new phase only delays
            # convergence.  Restart at the goal (the deadbeat response
            # to the phase then happens through e(t) directly).
            self.controller.reset(self.qos_goal)
        # Anti-windup: targeting more QoS than ~the believed-fastest
        # configuration can deliver only winds the integrator up.  The
        # clamp never drops below the goal itself: if the whole table
        # is (wrongly) pessimistic, the unmet goal is exactly the
        # pressure that keeps the saturation probes searching.
        max_qhat = (
            self.learner.max_qos_estimate()
            if perf.FAST
            else max(self.learner.qos_estimates().values())
        )
        max_useful = max(1.05 * max_qhat, self.qos_goal)
        last = self.decisions[-1] if self.decisions else None
        if phase_change:
            # The measurement straddled a phase boundary; integrating it
            # would poison the freshly-reset integrator.  Start the new
            # phase at the goal and let its first clean measurement
            # drive the controller.
            target_qos = self.controller.speedup
        elif last is not None and last.explored is not None:
            # The previous interval's QoS was intentionally distorted
            # (an exploration leg plus a boosted exploit remainder);
            # integrating it would swing the demand.  Hold the target
            # and let the next clean measurement drive the controller.
            target_qos = self.controller.speedup
        else:
            target_qos = self.controller.update(
                measurement.overall_qos
                if measurement is not None
                else self.qos_goal,
                base_estimate=1.0,
                max_useful_speedup=max_useful,
            )
        speedup_demand = target_qos / base
        schedule, explored = self._build_schedule(target_qos, speedup_demand)
        self._last_schedule = schedule
        # What the runtime believes it applied — used as s(t-1) in the
        # next Kalman update.  Schedule entries carry raw QoS estimates,
        # so dividing by the base estimate recovers the speedup.
        self._applied_speedup = max(schedule.average_speedup / base, 1e-9)
        decision = RuntimeDecision(
            schedule=schedule,
            speedup_demand=speedup_demand,
            base_estimate=base,
            explored=explored,
            phase_change=phase_change,
        )
        self.decisions.append(decision)
        return decision

    def instruction_count_estimate(self, num_slices: int = 1) -> int:
        """Model of Algorithm 1's per-iteration instruction count.

        Used by the runtime-overhead microbenchmark (Section VI-A): the
        loop body is a fixed sequence of scalar arithmetic (Kalman and
        controller updates), two argmin/argmax scans bounded by the
        bracketing candidates the over/under rule actually inspects,
        and bookkeeping stores.  The count is not application-dependent.
        """
        if num_slices <= 0:
            raise ValueError(f"num_slices must be positive, got {num_slices}")
        kalman_ops = 60
        controller_ops = 25
        optimizer_ops = 30 + 6 * min(len(self.configs), 64)
        learning_ops = 40
        bookkeeping = 80
        return (
            kalman_ops + controller_ops + optimizer_ops + learning_ops + bookkeeping
        )
