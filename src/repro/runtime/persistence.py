"""Snapshot and restore of the CASH runtime's learned state.

Everything the runtime knows is cheap scalar state: the Kalman
estimate, the controller's integrator, and the per-phase bank of
learned configuration QoS values.  Persisting it means a runtime
restart (a migration, a crash, a redeploy — routine events in an IaaS
fleet) resumes with converged knowledge instead of relearning every
phase from priors.

Snapshots are plain JSON-serializable dictionaries keyed by a format
version, so they survive library upgrades loudly rather than silently.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.arch.vcore import VCoreConfig
from repro.runtime.cash import CASHRuntime
from repro.runtime.qlearning import _Estimate

SNAPSHOT_VERSION = 1


def _config_key(config: VCoreConfig) -> str:
    return f"{config.slices}:{config.l2_kb}"


def _parse_config(key: str) -> VCoreConfig:
    slices, l2_kb = key.split(":")
    return VCoreConfig(slices=int(slices), l2_kb=int(l2_kb))


def snapshot_runtime(runtime: CASHRuntime) -> Dict[str, Any]:
    """Capture the runtime's learned state as a JSON-serializable dict."""
    learner = runtime.learner
    bank: List[Dict[str, Any]] = []
    current_index = learner._current_phase
    for entry in learner._bank:
        bank.append(
            {
                "level": float(entry["level"]),
                "signature": list(entry["signature"]),
                "table": {
                    _config_key(config): {
                        "qos": estimate.qos,
                        "visits": estimate.visits,
                    }
                    for config, estimate in entry["table"].items()
                },
            }
        )
    return {
        "version": SNAPSHOT_VERSION,
        "qos_goal": runtime.qos_goal,
        "base_estimate": runtime.estimator.estimate,
        "error_variance": runtime.estimator.error_variance,
        "controller_target": runtime.controller.speedup,
        "learner": {
            "base_qos": learner.base_qos,
            "alpha": learner.alpha,
            "current_phase": current_index,
            "bank": bank,
        },
        "signature_ref": (
            list(runtime._signature_ref)
            if runtime._signature_ref is not None
            else None
        ),
        "phase_entry_base": runtime._phase_entry_base,
    }


class SnapshotError(ValueError):
    """Raised when a snapshot cannot be applied to a runtime."""


def restore_runtime(runtime: CASHRuntime, snapshot: Dict[str, Any]) -> None:
    """Load a snapshot into a runtime with the same configuration menu."""
    if snapshot.get("version") != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot version {snapshot.get('version')!r} is not "
            f"{SNAPSHOT_VERSION}"
        )
    learner = runtime.learner
    menu = {_config_key(config) for config in learner.configs}
    bank_payload = snapshot["learner"]["bank"]
    for entry in bank_payload:
        missing = menu - set(entry["table"])
        extra = set(entry["table"]) - menu
        if missing or extra:
            raise SnapshotError(
                "snapshot configuration menu does not match the "
                f"runtime's (missing {sorted(missing)[:3]}, "
                f"extra {sorted(extra)[:3]})"
            )

    new_bank = []
    for entry in bank_payload:
        table = {
            _parse_config(key): _Estimate(
                qos=float(value["qos"]), visits=int(value["visits"])
            )
            for key, value in entry["table"].items()
        }
        new_bank.append(
            {
                "level": float(entry["level"]),
                "signature": tuple(entry["signature"]),
                "table": table,
            }
        )
    current = int(snapshot["learner"]["current_phase"])
    if not 0 <= current < len(new_bank):
        raise SnapshotError(f"current phase index {current} out of range")
    learner._bank = new_bank
    learner._current_phase = current
    learner._estimates = new_bank[current]["table"]
    # The estimate tables were replaced wholesale behind the learner's
    # tracked mutators; incremental views must rebuild from scratch.
    learner.invalidate_estimates()
    learner.set_base_qos(float(snapshot["learner"]["base_qos"]))
    learner.alpha = float(snapshot["learner"]["alpha"])

    runtime.estimator.reset(
        float(snapshot["base_estimate"]),
        error_variance=float(snapshot["error_variance"]),
    )
    runtime.controller.reset(float(snapshot["controller_target"]))
    signature_ref = snapshot.get("signature_ref")
    runtime._signature_ref = (
        tuple(signature_ref) if signature_ref is not None else None
    )
    runtime._phase_entry_base = float(snapshot["phase_entry_base"])


def save_snapshot(runtime: CASHRuntime, path: str) -> None:
    """Write the runtime's snapshot to a JSON file."""
    with open(path, "w") as handle:
        json.dump(snapshot_runtime(runtime), handle)


def load_snapshot(runtime: CASHRuntime, path: str) -> None:
    """Restore a runtime from a JSON snapshot file."""
    with open(path) as handle:
        restore_runtime(runtime, json.load(handle))
