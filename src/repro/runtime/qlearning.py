"""Online learning of per-configuration speedups (Section IV-C, Eqn. 7).

The over/under rule needs each configuration's speedup s_k, which
varies tremendously across application phases.  CASH learns it online
with a Q-learning-style exponentially weighted average of observed QoS:

    q̂_k(t) = (1−α)·q̂_k(t−1) + α·q(t)
    ŝ_k(t) = q̂_k(t) / q̂_0(t)                              (Eqn. 7)

where q̂_0 is the estimate for the base configuration — supplied by the
Kalman filter's base-speed estimate, so the two learning mechanisms
stay consistent.  The learner is O(1) per update and treats
configurations as independent (the paper defers correlated models to
future work).

Configurations that have never been observed carry a *prior*: an
optimistic resource-proportional guess.  Exploration of stale
configurations is handled by :class:`ExplorationPolicy`.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import perf
from repro.arch.vcore import VCoreConfig


def resource_prior(config: VCoreConfig, base: VCoreConfig) -> float:
    """An a-priori speedup guess from resource ratios alone.

    Slices give near-linear gains at first and saturate; cache gives
    logarithmic gains.  The prior only has to be sane enough to seed
    the over/under rule — learning replaces it after one visit.
    """
    slice_gain = math.sqrt(config.slices / base.slices)
    cache_gain = 1.0 + 0.15 * math.log2(max(config.l2_kb / base.l2_kb, 1.0))
    return slice_gain * cache_gain


@dataclass
class _Estimate:
    qos: float
    visits: int = 0
    last_visit: int = -1


class SpeedupLearner:
    """Per-configuration QoS estimates with exponential forgetting."""

    def __init__(
        self,
        configs: Sequence[VCoreConfig],
        base_config: VCoreConfig,
        base_qos: float,
        alpha: float = 0.5,
        phase_memory: bool = True,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if base_qos <= 0:
            raise ValueError(f"base_qos must be positive, got {base_qos}")
        if base_config not in set(configs):
            raise ValueError("base_config must be one of the configurations")
        self.alpha = alpha
        self.base_config = base_config
        self.phase_memory = phase_memory
        """When False, phase changes always start a fresh table (the
        ablation baseline): nothing is recalled on revisits."""
        self._base_qos = base_qos
        self._step = 0
        self._estimates: Dict[VCoreConfig, _Estimate] = {
            config: _Estimate(qos=base_qos * resource_prior(config, base_config))
            for config in configs
        }
        # Phase bank: per-recognized-phase estimate tables, keyed by the
        # base-speed level the Kalman filter reported for the phase and
        # by the configuration-independent counter signature (cache-miss
        # intensity, branch mispredict rate) read over the Runtime
        # Interface Network.
        self._bank: List[Dict[str, object]] = [
            {"level": base_qos, "signature": (), "table": self._estimates}
        ]
        self._current_phase = 0
        # Estimate-change tracking for incremental consumers (the
        # optimizer's LearnedPoints view).  ``_version`` counts distinct
        # states of the raw-QoS estimate set; ``_change_log`` records,
        # for each version step, which configuration's estimate moved
        # (``None`` = everything, e.g. a table swap or global rescale).
        # The log is bounded; consumers that fall off its tail get a
        # full-rebuild signal instead of a per-config delta.
        self._version = 0
        self._change_log: List[Optional[VCoreConfig]] = []
        self._log_base = 0
        self._max_qos_cache: Optional[Tuple[int, float]] = None

    CHANGE_LOG_LIMIT = 256
    """Retained change-log entries before old deltas degrade to full
    rebuilds (a consumer that lags this far behind rebuilds anyway)."""

    def _record_change(self, config: Optional[VCoreConfig]) -> None:
        """Note that ``config``'s estimate moved (None = all of them)."""
        self._version += 1
        self._change_log.append(config)
        self._max_qos_cache = None
        overflow = len(self._change_log) - self.CHANGE_LOG_LIMIT
        if overflow > 0:
            del self._change_log[:overflow]
            self._log_base += overflow

    @property
    def estimates_version(self) -> int:
        """Monotone counter of raw-QoS estimate states."""
        return self._version

    def changes_since(self, version: int) -> Optional[List[VCoreConfig]]:
        """Configurations whose estimates moved since ``version``.

        Returns ``[]`` when nothing changed, a list of configurations
        for a small delta, or ``None`` when the caller must rebuild from
        scratch (table swap, global rescale, or a delta older than the
        retained log).
        """
        if version == self._version:
            return []
        if version > self._version or version < self._log_base:
            return None
        entries = self._change_log[version - self._log_base :]
        if any(entry is None for entry in entries):
            return None
        return list(entries)

    def invalidate_estimates(self) -> None:
        """Force incremental consumers to rebuild (external mutation).

        Call after touching ``_estimates`` through any path the tracked
        mutators don't cover — checkpoint restore, estimate smoothing.
        """
        self._record_change(None)

    def max_qos_estimate(self) -> float:
        """max_k q̂_k, cached against the estimates version."""
        if perf.FAST:
            cached = self._max_qos_cache
            if cached is not None and cached[0] == self._version:
                return cached[1]
        value = max(estimate.qos for estimate in self._estimates.values())
        self._max_qos_cache = (self._version, value)
        return value

    @property
    def configs(self) -> List[VCoreConfig]:
        return list(self._estimates)

    @property
    def base_qos(self) -> float:
        """q̂_0: the base configuration's QoS estimate."""
        return self._base_qos

    def set_base_qos(self, base_qos: float) -> None:
        """Adopt the Kalman filter's base-speed estimate as q̂_0.

        Speedups are ratios to base speed, so when a phase change moves
        the base estimate, every ŝ_k shifts coherently without touching
        the per-configuration QoS estimates.
        """
        if base_qos <= 0:
            raise ValueError(f"base_qos must be positive, got {base_qos}")
        self._base_qos = base_qos

    def observe(self, config: VCoreConfig, measured_qos: float) -> float:
        """Fold one observed QoS for ``config`` (Eqn. 7); returns q̂_k."""
        if measured_qos < 0:
            raise ValueError(
                f"measured_qos must be non-negative, got {measured_qos}"
            )
        try:
            estimate = self._estimates[config]
        except KeyError:
            raise KeyError(f"{config} is not a tracked configuration") from None
        self._step += 1
        previous_qos = estimate.qos
        if estimate.visits == 0:
            # First observation replaces the prior outright.
            estimate.qos = measured_qos
        else:
            estimate.qos = (1.0 - self.alpha) * estimate.qos + (
                self.alpha * measured_qos
            )
        estimate.visits += 1
        estimate.last_visit = self._step
        if estimate.qos != previous_qos:
            self._record_change(config)
        return estimate.qos

    def rescale_on_phase_change(self, ratio: float) -> None:
        """Scale all QoS estimates by the base-speed shift ratio.

        When the Kalman filter reports base speed changed by ``ratio``,
        the best first guess for every configuration is that its QoS
        scaled by the same factor (speedups are roughly
        phase-independent to first order; learning then corrects the
        second-order structure).
        """
        if ratio <= 0:
            raise ValueError(f"ratio must be positive, got {ratio}")
        # The normalization is global (every phase's margins share it),
        # so banked tables are rescaled too — otherwise a recalled
        # phase would return estimates frozen at the load level of its
        # last visit.
        for entry in self._bank:
            for estimate in entry["table"].values():  # type: ignore[union-attr]
                estimate.qos *= ratio
        # Sentinel: ratio is exactly 1.0 iff no rescale happened, in
        # which case no estimate moved and no change must be recorded.
        if ratio != 1.0:  # lint: allow(float-eq)
            self._record_change(None)

    SIGNATURE_ABS_FLOOR = 0.005
    """Counter rates below this differ mostly by sampling noise."""

    @staticmethod
    def _signatures_match(
        a: Sequence[float], b: Sequence[float], tolerance: float
    ) -> bool:
        """Component-wise relative match of two counter signatures.

        Small rates (e.g. a 3% mispredict rate) carry proportionally
        more sampling noise, so an absolute floor keeps tail noise
        draws from splitting one phase into several bank entries.
        """
        if len(a) != len(b):
            return False
        floor = SpeedupLearner.SIGNATURE_ABS_FLOOR
        for x, y in zip(a, b):
            scale = max(abs(x), abs(y))
            if scale < 1e-12:
                continue
            if abs(x - y) > max(tolerance * scale, floor):
                return False
        return True

    def on_phase_change(
        self,
        previous_base: float,
        new_base: float,
        signature: Sequence[float] = (),
        match_tolerance: float = 0.15,
        signature_tolerance: float = 0.08,
        anchor_qos: Optional[float] = None,
    ) -> bool:
        """Switch the estimate table on a detected phase change.

        Applications revisit phases (loops, request mixes).  A phase is
        recognized by two cheap observables: the Kalman base-speed level
        and the configuration-independent counter ``signature`` (memory
        intensity, branch mispredict rate) from the Runtime Interface
        Network — distinct phases can share a base speed while differing
        wildly in surface shape, so the signature is what keeps their
        learned tables from cross-contaminating.  On a match the banked
        table is recalled, so a revisited phase starts from converged
        estimates.  An unseen phase starts a fresh table: the current
        one rescaled by the base-speed ratio (first-order guess), with
        visit counts reset so real observations replace it immediately.

        Returns True if a banked phase was recalled, False for a new
        phase.
        """
        if previous_base <= 0 or new_base <= 0:
            raise ValueError("base levels must be positive")
        if match_tolerance <= 0:
            raise ValueError(
                f"match_tolerance must be positive, got {match_tolerance}"
            )
        self._bank[self._current_phase]["level"] = previous_base
        # Match on the counter signature; among multiple signature
        # matches (rare), prefer the closest base-speed level.
        best_index = None
        best_gap = float("inf")
        bank = self._bank if self.phase_memory else []
        for index, entry in enumerate(bank):
            if index == self._current_phase:
                continue
            if not entry["signature"]:
                continue
            if not self._signatures_match(
                tuple(entry["signature"]), tuple(signature), signature_tolerance
            ):
                continue
            level = float(entry["level"])
            gap = abs(level - new_base) / new_base
            if gap < best_gap:
                best_gap = gap
                best_index = index
        if best_index is not None:
            self._current_phase = best_index
            # Running average of the stored signature: each sample is
            # noisy, and averaging sharpens the fingerprint over visits.
            stored = tuple(self._bank[best_index]["signature"])
            blended = tuple(
                0.7 * old_component + 0.3 * new_component
                for old_component, new_component in zip(stored, signature)
            )
            self._bank[best_index]["signature"] = (
                blended if len(blended) == len(signature) else tuple(signature)
            )
            self._estimates = self._bank[best_index]["table"]  # type: ignore[assignment]
            self._record_change(None)
            return True
        # Seed the fresh table from the resource-proportional prior,
        # anchored to a *measured* QoS level (never to the base-speed
        # estimate, whose transients must not be able to crush the
        # table).  Optimistic seeds are self-correcting — a too-high
        # estimate gets scheduled, observed and corrected; pessimistic
        # seeds are traps — a too-low estimate is never scheduled, so
        # it is never corrected (the essence of the local-optima
        # problem).
        anchor = anchor_qos if anchor_qos and anchor_qos > 0 else new_base
        fresh = {
            config: _Estimate(
                qos=anchor * resource_prior(config, self.base_config),
                visits=0,
                last_visit=-1,
            )
            for config in self._estimates
        }
        self._bank.append(
            {"level": new_base, "signature": tuple(signature), "table": fresh}
        )
        self._current_phase = len(self._bank) - 1
        self._estimates = fresh
        self._record_change(None)
        return False

    @property
    def known_phases(self) -> int:
        return len(self._bank)

    def qos_estimate(self, config: VCoreConfig) -> float:
        return self._estimates[config].qos

    def speedup(self, config: VCoreConfig) -> float:
        """ŝ_k = q̂_k / q̂_0."""
        return self._estimates[config].qos / self._base_qos

    def speedups(self) -> Dict[VCoreConfig, float]:
        return {config: self.speedup(config) for config in self._estimates}

    def qos_estimates(self) -> Dict[VCoreConfig, float]:
        """Raw QoS estimates q̂_k (speedups × q̂_0).

        The optimizer can work in raw QoS units directly — the schedule
        produced is identical (Eqn. 5 is homogeneous in s), but raw
        units keep the learned landscape independent of transients in
        the base-speed estimate.
        """
        return {config: est.qos for config, est in self._estimates.items()}

    def visits(self, config: VCoreConfig) -> int:
        return self._estimates[config].visits

    def staleness(self, config: VCoreConfig) -> int:
        """Steps since this configuration was last observed."""
        estimate = self._estimates[config]
        if estimate.last_visit < 0:
            return self._step + 1
        return self._step - estimate.last_visit

    def ucb_candidate(
        self,
        exploration_weight: float = 0.8,
        scale: Optional[float] = None,
        exclude: Optional[VCoreConfig] = None,
    ) -> VCoreConfig:
        """The configuration with the highest optimistic potential.

        Potential is the QoS estimate plus an uncertainty bonus that
        shrinks with visits — an upper-confidence-bound rule.  Used
        when the demand exceeds every *believed* QoS: one of the barely-
        visited configurations may in truth be fast enough, and the only
        way out of the trap is to try the most promising of them.
        ``exclude`` drops the incumbent (already being measured every
        interval — probing it would teach nothing).
        """
        if exploration_weight < 0:
            raise ValueError(
                f"exploration_weight must be non-negative, "
                f"got {exploration_weight}"
            )
        candidates = [c for c in self._estimates if c != exclude]
        if not candidates:
            candidates = list(self._estimates)
        return max(
            candidates,
            key=lambda config: self.ucb_potential(
                config, exploration_weight, scale
            ),
        )

    def ucb_potential(
        self,
        config: VCoreConfig,
        exploration_weight: float = 0.8,
        scale: Optional[float] = None,
    ) -> float:
        """Optimistic QoS potential of one configuration.

        The bonus is *additive* on ``scale`` (default: the current
        maximum estimate).  A multiplicative bonus would be a trap: a
        configuration whose estimate was crushed toward zero would get
        a near-zero bonus and never look worth re-measuring, no matter
        how wrong the estimate is.
        """
        if exploration_weight < 0:
            raise ValueError(
                f"exploration_weight must be non-negative, "
                f"got {exploration_weight}"
            )
        estimate = self._estimates[config]
        if scale is None:
            scale = self.max_qos_estimate()
        bonus = (
            exploration_weight * scale / math.sqrt(estimate.visits + 1.0)
        )
        return estimate.qos + bonus


class ExplorationPolicy:
    """ε-greedy exploration of stale configurations.

    With probability ε (decaying over time) the runtime spends the
    quantum's ``over`` leg on a stale configuration near the demanded
    speedup instead of the believed-optimal one.  This is what lets the
    learner escape local optima: a configuration whose estimate is
    pessimistically wrong would otherwise never be revisited.
    """

    def __init__(
        self,
        learner: SpeedupLearner,
        epsilon: float = 0.15,
        epsilon_floor: float = 0.02,
        decay: float = 0.995,
        rng: Optional[random.Random] = None,
        cost_rates: Optional[Dict[VCoreConfig, float]] = None,
    ) -> None:
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError(f"epsilon must be in [0, 1], got {epsilon}")
        if not 0.0 <= epsilon_floor <= epsilon:
            raise ValueError(
                f"epsilon_floor must be in [0, epsilon], got {epsilon_floor}"
            )
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        self.learner = learner
        self.epsilon = epsilon
        self.epsilon_floor = epsilon_floor
        self.decay = decay
        self.rng = rng if rng is not None else random.Random(0)
        self.cost_rates = cost_rates or {}

    def maybe_explore(self, target_speedup: float) -> Optional[VCoreConfig]:
        """Pick a stale configuration to try, or None to exploit.

        Among the stalest candidates the *cheapest* is probed first:
        exploration exists to refresh doubtful estimates, and a cheap
        probe buys the same information for less rent.
        """
        explore = self.rng.random() < self.epsilon
        self.epsilon = max(self.epsilon * self.decay, self.epsilon_floor)
        if not explore:
            return None
        # Candidate filter on the *optimistic* view — the larger of the
        # learned speedup and the resource prior.  Filtering on the
        # learned estimate alone is a pessimism trap: a configuration
        # whose estimate once collapsed would be excluded from probing
        # forever, even if it is in truth the cheapest feasible one.
        candidates = [
            config
            for config in self.learner.configs
            if max(
                self.learner.speedup(config),
                resource_prior(config, self.learner.base_config),
            )
            >= target_speedup * 0.8
        ]
        if not candidates:
            candidates = self.learner.configs
        # Prefer the stalest candidates: their estimates are least
        # trustworthy and most likely to hide a better optimum.  Break
        # the choice toward cheap probes.
        candidates.sort(key=self.learner.staleness, reverse=True)
        top = candidates[: max(1, min(8, len(candidates)))]
        if self.learner.staleness(top[0]) == 0:
            return None
        if self.cost_rates:
            return min(top, key=lambda c: self.cost_rates.get(c, 0.0))
        return top[0]
