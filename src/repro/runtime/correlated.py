"""Correlation-aware speedup learning (the paper's future-work pointer).

Section IV-C: the Q-learning approach "is computationally cheap, but
treats all configurations as independent.  More sophisticated learning
methods that capture correlation between configurations and
applications (e.g., [40]) will be the subject of future work."

This module implements that extension: a learner that propagates each
observation across the configuration grid through a local response
model.  The insight is that neighbouring configurations' QoS values are
strongly correlated — one more Slice or one more cache step moves IPC
by a bounded, roughly prior-shaped factor — so a single measurement
carries information about the whole neighbourhood.  Concretely, after
folding an observation into configuration k (Eqn. 7 unchanged), the
learner nudges every *less-recently-observed* configuration j toward

    q(k) · prior(j) / prior(k)

with a weight that decays with grid distance and with j's own
freshness.  Direct observations always dominate: a configuration that
was just measured is never overwritten by propagation.

The payoff is cold-start behaviour: entering a new phase, a handful of
observations sketch the whole surface, so the optimizer's early
schedules are far less wrong.  The cost is bias in non-convex regions —
propagation smooths across knees — which direct observation then
corrects.  The ablation benchmark quantifies both effects.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence

from repro.arch.vcore import VCoreConfig
from repro.runtime.qlearning import SpeedupLearner, resource_prior


def grid_distance(a: VCoreConfig, b: VCoreConfig) -> float:
    """Distance between configurations in (slice, log-cache) steps."""
    slice_steps = abs(a.slices - b.slices)
    cache_steps = abs(math.log2(a.l2_kb) - math.log2(b.l2_kb))
    return slice_steps + cache_steps


class GridSmoothingLearner(SpeedupLearner):
    """A :class:`SpeedupLearner` that shares observations with
    neighbouring configurations through the resource-response prior."""

    def __init__(
        self,
        configs: Sequence[VCoreConfig],
        base_config: VCoreConfig,
        base_qos: float,
        alpha: float = 0.4,
        propagation: float = 0.35,
        radius: float = 3.0,
        **kwargs: object,
    ) -> None:
        if not 0.0 <= propagation <= 1.0:
            raise ValueError(
                f"propagation must be in [0, 1], got {propagation}"
            )
        if radius <= 0:
            raise ValueError(f"radius must be positive, got {radius}")
        super().__init__(
            configs=configs,
            base_config=base_config,
            base_qos=base_qos,
            alpha=alpha,
            **kwargs,
        )
        self.propagation = propagation
        self.radius = radius
        self._prior: Dict[VCoreConfig, float] = {
            config: resource_prior(config, base_config) for config in configs
        }

    def observe(self, config: VCoreConfig, measured_qos: float) -> float:
        updated = super().observe(config, measured_qos)
        self._propagate(config, measured_qos)
        return updated

    def _propagate(self, source: VCoreConfig, measured_qos: float) -> None:
        source_prior = self._prior[source]
        source_visits = self._estimates[source].visits
        for config, estimate in self._estimates.items():
            if config == source:
                continue
            distance = grid_distance(source, config)
            if distance > self.radius:
                continue
            # Direct knowledge dominates: the more often a neighbour has
            # been observed itself, the less a propagated guess moves it.
            freshness_discount = 1.0 / (1.0 + estimate.visits)
            if source_visits == 0:
                continue
            weight = (
                self.propagation
                * freshness_discount
                / (1.0 + distance)
            )
            predicted = measured_qos * self._prior[config] / source_prior
            estimate.qos = (1.0 - weight) * estimate.qos + weight * predicted
        # Propagation touches an unbounded neighbourhood; signal a full
        # refresh rather than enumerating every moved configuration.
        self.invalidate_estimates()
