"""Struct-of-arrays batch execution tier for the cycle simulator.

:func:`run_batch` advances **many independent pipeline cells in
lockstep**: per-cell fetch/issue/commit cursors, ROB/window occupancy,
operand-ready times, MSHR release heaps and cycle counters live as
2-D ``(cell, slice)`` arrays inside the compiled stepping kernel
(``sim/_batchcore.c``, loaded via :mod:`repro.native`), which walks an
active-cell mask per event epoch so the per-step dispatch cost
amortizes across the whole batch.  Genuinely irregular state — cache
tag arrays, wakeup lists, release heaps — is held per cell inside the
kernel rather than forced into rectangular form.

The object-based event-driven pipeline is untouched and remains the
twin: for every cell, :func:`run_batch` returns a bit-identical
:class:`~repro.sim.pipeline.PipelineResult`, per-Slice counter block
and memory-system stats versus ``MultiSlicePipeline.run`` on the same
trace (the parity suite asserts this over the whole tier-agreement
grid).  When the compiled core is unavailable — no host compiler,
``REPRO_NATIVE=0``, or a cell outside the kernel's envelope — the
batch API transparently runs each cell through the object pipeline,
so callers never need a compiler to be correct, only to be fast.

Scope: the kernel implements the scripted-mispredict front end only
(``dynamic_branches`` stays object-path territory) and requires the
standard 64-byte block size; op counts are bounded by the packed
``(time << 21) | op_id`` event-key layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro import native, perf
from repro.arch.counters import CounterKind, PerformanceCounters
from repro.arch.params import (
    DEFAULT_CACHE_PARAMS,
    DEFAULT_SLICE_PARAMS,
    CacheParams,
    SliceParams,
)
from repro.arch.vcore import VCoreConfig
from repro.sim.pipeline import (
    _FRONT_END_DEPTH,
    MultiSlicePipeline,
    PipelineResult,
)
from repro.sim.soa import TraceArrays

#: The native kernel packs future events as ``(time << 21) | op_id``;
#: traces must keep op ids below this bound to use it.
OP_ID_LIMIT = 1 << 21

#: Producer columns the kernel consumes (the trace generator emits at
#: most two sources per op).
_PRODUCER_WIDTH = 2

#: Cache block size the kernel hardcodes (address ``// 64``).
_BLOCK_BYTES = 64

# ``out_cell`` column layout of the native kernel.
_O_CYCLES = 0
_O_L1_HITS = 1
_O_L2_HITS = 2
_O_L2_MISSES = 3
_O_MISPREDICTS = 4
_O_L1I_HITS = 5
_O_L1I_MISSES = 6
_O_L2_WRITEBACKS = 7
_O_STATUS = 8
_OUT_CELL_WIDTH = 9

# ``out_slice`` column layout (per ``(cell, slice)``).
_S_COMMITTED = 0
_S_L2_ACCESSES = 1
_S_L2_MISSES = 2
_S_L1_MISSES = 3
_S_BRANCHES = 4
_S_BRANCH_MISPREDICTS = 5
_OUT_SLICE_WIDTH = 6


@dataclass(frozen=True)
class BatchCell:
    """One independent simulation: a trace on a VCore configuration."""

    trace: TraceArrays
    config: VCoreConfig


@dataclass(frozen=True)
class BatchCellResult:
    """Everything ``MultiSlicePipeline.run`` would have produced."""

    result: PipelineResult
    counters: Tuple[PerformanceCounters, ...]
    memory_stats: Dict[str, int]


def _params_block(
    slice_params: SliceParams, cache_params: CacheParams
) -> np.ndarray:
    """Pack the scalar architecture parameters the kernel consumes."""
    return np.array(
        [
            slice_params.issue_window,
            slice_params.rob_size,
            slice_params.fetch_width,
            slice_params.commit_width,
            slice_params.max_inflight_loads,
            slice_params.memory_delay,
            cache_params.l1_hit_delay,
            cache_params.l1d.num_sets,
            cache_params.l1d.associativity,
            cache_params.l1i.num_sets,
            cache_params.l1i.associativity,
            cache_params.l2_bank.num_sets,
            cache_params.l2_bank.associativity,
            cache_params.l2_base_delay,
            cache_params.l2_delay_per_hop,
            _FRONT_END_DEPTH,
        ],
        dtype=np.int64,
    )


def _native_supported(cells: Sequence[BatchCell], cache_params: CacheParams) -> bool:
    """Whether every cell fits the compiled kernel's envelope."""
    if (
        cache_params.l1d.block_bytes != _BLOCK_BYTES
        or cache_params.l1i.block_bytes != _BLOCK_BYTES
        or cache_params.l2_bank.block_bytes != _BLOCK_BYTES
    ):
        return False
    for cell in cells:
        n = len(cell.trace)
        if n == 0 or n >= OP_ID_LIMIT:
            return False
        if cell.trace.source_width > _PRODUCER_WIDTH:
            return False
    return True


def _dedupe_traces(cells: Sequence[BatchCell]) -> Tuple[List[TraceArrays], List[int]]:
    """Identity-dedupe the cells' trace bundles.

    Sweep cells sharing one trace across several configurations are the
    common case; encoding each distinct bundle once keeps the pooled
    buffers (and the rename/prewarm precomputation) proportional to the
    number of *traces*, not cells.  Shared bundles are adjacent in
    practice (configuration is the innermost sweep axis), so the
    last-seen fast path makes this linear.
    """
    unique: List[TraceArrays] = []
    indices: List[int] = []
    for cell in cells:
        trace = cell.trace
        if unique and unique[-1] is trace:
            indices.append(len(unique) - 1)
            continue
        for position, known in enumerate(unique):
            if known is trace:
                indices.append(position)
                break
        else:
            indices.append(len(unique))
            unique.append(trace)
    return unique, indices


def run_batch(
    cells: Sequence[BatchCell],
    slice_params: SliceParams = DEFAULT_SLICE_PARAMS,
    cache_params: CacheParams = DEFAULT_CACHE_PARAMS,
) -> List[BatchCellResult]:
    """Run every cell to completion; one result per cell, in order.

    With :data:`repro.perf.FAST` enabled and the compiled core
    available, all cells advance in lockstep through the native
    struct-of-arrays kernel; otherwise each cell runs through the
    object-based ``MultiSlicePipeline`` twin.  Both paths produce
    bit-identical results, counters and memory stats.
    """
    cells = list(cells)
    if not cells:
        return []
    if perf.FAST:
        core = native.batch_core()
        if core is not None and _native_supported(cells, cache_params):
            return _run_batch_native(core, cells, slice_params, cache_params)
        return _run_batch_objects(cells, slice_params, cache_params)
    return _run_batch_objects(cells, slice_params, cache_params)


def _run_batch_objects(
    cells: Sequence[BatchCell],
    slice_params: SliceParams,
    cache_params: CacheParams,
) -> List[BatchCellResult]:
    """Reference path: each cell through the object pipeline twin."""
    results: List[BatchCellResult] = []
    traces, trace_of = _dedupe_traces(cells)
    decoded = [trace.to_ops() for trace in traces]
    for cell, trace_index in zip(cells, trace_of):
        pipeline = MultiSlicePipeline(cell.config, slice_params, cache_params)
        result = pipeline.run(decoded[trace_index])
        results.append(
            BatchCellResult(
                result=result,
                counters=tuple(pipeline.counters),
                memory_stats=pipeline.memory.stats(),
            )
        )
    return results


def _run_batch_native(
    core: "native.NativeBatchCore",
    cells: Sequence[BatchCell],
    slice_params: SliceParams,
    cache_params: CacheParams,
) -> List[BatchCellResult]:
    """Pool the traces and step every cell through the compiled kernel."""
    traces, trace_of = _dedupe_traces(cells)
    kinds_pool: List[np.ndarray] = []
    mem_pool: List[np.ndarray] = []
    mis_pool: List[np.ndarray] = []
    addr_pool: List[np.ndarray] = []
    code_pool: List[np.ndarray] = []
    prod_pool: List[np.ndarray] = []
    warm_pool: List[np.ndarray] = []
    trace_offsets = np.zeros(len(traces) + 1, dtype=np.int64)
    warm_offsets = np.zeros(len(traces) + 1, dtype=np.int64)
    for index, trace in enumerate(traces):
        warm = trace.unique_code_addresses()
        kinds_pool.append(trace.kinds)
        mem_pool.append(trace.is_memory)
        mis_pool.append(trace.mispredicted.astype(np.int8))
        addr_pool.append(trace.addresses)
        code_pool.append(trace.code_addresses)
        prod_pool.append(trace.rename_producers(_PRODUCER_WIDTH))
        warm_pool.append(warm)
        trace_offsets[index + 1] = trace_offsets[index] + len(trace)
        warm_offsets[index + 1] = warm_offsets[index] + warm.shape[0]

    n_cells = len(cells)
    max_slices = max(cell.config.slices for cell in cells)
    conf = np.zeros((n_cells, 6), dtype=np.int64)
    for row, (cell, trace_index) in enumerate(zip(cells, trace_of)):
        conf[row, 0] = cell.config.slices
        conf[row, 1] = cell.config.l2_banks
        conf[row, 2] = trace_offsets[trace_index]
        conf[row, 3] = len(cells[row].trace)
        conf[row, 4] = warm_offsets[trace_index]
        conf[row, 5] = warm_pool[trace_index].shape[0]

    out_cell = np.zeros((n_cells, _OUT_CELL_WIDTH), dtype=np.int64)
    out_slice = np.zeros(
        (n_cells, max_slices, _OUT_SLICE_WIDTH), dtype=np.int64
    )
    status = core.run_batch(
        n_cells,
        max_slices,
        _PRODUCER_WIDTH,
        _params_block(slice_params, cache_params),
        conf,
        np.ascontiguousarray(np.concatenate(kinds_pool)),
        np.ascontiguousarray(np.concatenate(mem_pool)),
        np.ascontiguousarray(np.concatenate(mis_pool)),
        np.ascontiguousarray(np.concatenate(addr_pool)),
        np.ascontiguousarray(np.concatenate(code_pool)),
        np.ascontiguousarray(np.concatenate(prod_pool)),
        np.ascontiguousarray(np.concatenate(warm_pool)),
        out_cell,
        out_slice,
    )
    if status != 0:
        raise RuntimeError(f"native batch core failed (status {status})")

    cell_rows = out_cell.tolist()
    slice_rows = out_slice.tolist()
    return [
        _materialize_cell(cell, cell_rows[row], slice_rows[row])
        for row, cell in enumerate(cells)
    ]


def _materialize_cell(
    cell: BatchCell, fields: List[int], per_slice_rows: List[List[int]]
) -> BatchCellResult:
    """Rehydrate one cell's kernel output into the object-path shape."""
    if fields[_O_STATUS] != 0:  # pragma: no cover - defensive
        raise RuntimeError("pipeline failed to make progress")
    cycles = fields[_O_CYCLES]
    counters = []
    for slice_id in range(cell.config.slices):
        block = PerformanceCounters(slice_id)
        per_slice = per_slice_rows[slice_id]
        block.increment(CounterKind.CYCLES, cycles)
        block.increment(
            CounterKind.INSTRUCTIONS_COMMITTED, per_slice[_S_COMMITTED]
        )
        block.increment(CounterKind.L2_ACCESSES, per_slice[_S_L2_ACCESSES])
        block.increment(CounterKind.L2_MISSES, per_slice[_S_L2_MISSES])
        block.increment(CounterKind.L1_MISSES, per_slice[_S_L1_MISSES])
        block.increment(CounterKind.BRANCHES, per_slice[_S_BRANCHES])
        block.increment(
            CounterKind.BRANCH_MISPREDICTS,
            per_slice[_S_BRANCH_MISPREDICTS],
        )
        counters.append(block)
    return BatchCellResult(
        result=PipelineResult(
            cycles=cycles,
            instructions=len(cell.trace),
            config=cell.config,
            l1_hits=fields[_O_L1_HITS],
            l2_hits=fields[_O_L2_HITS],
            l2_misses=fields[_O_L2_MISSES],
            mispredicts=fields[_O_MISPREDICTS],
            l1i_misses=fields[_O_L1I_MISSES],
        ),
        counters=tuple(counters),
        memory_stats={
            "l1_hits": fields[_O_L1_HITS],
            "l2_hits": fields[_O_L2_HITS],
            "l2_misses": fields[_O_L2_MISSES],
            "l2_writebacks": fields[_O_L2_WRITEBACKS],
            "l1i_hits": fields[_O_L1I_HITS],
            "l1i_misses": fields[_O_L1I_MISSES],
        },
    )
