"""Struct-of-arrays trace encoding for the batch cycle tier.

:class:`TraceArrays` re-encodes a ``List[MicroOp]`` as one frozen
bundle of per-field numpy columns so many pipeline cells can share a
pooled, C-contiguous trace buffer (see :mod:`repro.sim.batchpipe`).
``None`` is encoded as ``-1`` throughout (registers, addresses and
code addresses are non-negative by :class:`repro.sim.isa.MicroOp`
validation, so the sentinel is unambiguous); ``taken`` is a ternary
``int8`` (``-1`` = None, ``0`` = False, ``1`` = True).  The encoding
is lossless: ``TraceArrays.from_ops(ops).to_ops() == ops``.

All arrays are sealed (``writeable=False``) at construction, matching
the engine-wide frozen-publish discipline, so a bundle can be shared
across cells and threads without defensive copies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro import perf
from repro.sim.isa import MicroOp, OpKind

#: Stable kind codes used by the SoA encoding and the native batch
#: kernel (``sim/_batchcore.c``) alike.  Do not reorder.
KIND_ALU = 0
KIND_LOAD = 1
KIND_STORE = 2
KIND_BRANCH = 3

_KIND_TO_CODE = {
    OpKind.ALU: KIND_ALU,
    OpKind.LOAD: KIND_LOAD,
    OpKind.STORE: KIND_STORE,
    OpKind.BRANCH: KIND_BRANCH,
}
_CODE_TO_KIND = (OpKind.ALU, OpKind.LOAD, OpKind.STORE, OpKind.BRANCH)


def _sealed(array: np.ndarray) -> np.ndarray:
    array.setflags(write=False)
    return array


def ordered_unique(code_addresses: np.ndarray) -> np.ndarray:
    """Distinct non-negative values in first-occurrence order.

    The vectorized dedup the prewarm paths share: ``np.unique`` sorts
    by value but reports each value's first index, so re-sorting those
    indices restores trace order — the order cache installation (and
    therefore LRU state) depends on.
    """
    present = code_addresses[code_addresses >= 0]
    _, first = np.unique(present, return_index=True)
    return _sealed(present[np.sort(first)])


@dataclass(frozen=True)
class TraceArrays:
    """Frozen per-field column encoding of a micro-op trace.

    ``sources`` is ``(n, width)`` with ``-1`` padding on the right;
    every other column is ``(n,)``.  ``dests``, ``addresses``,
    ``code_addresses`` and ``branch_targets`` use ``-1`` for ``None``;
    ``taken`` uses ``-1``/``0``/``1`` for ``None``/``False``/``True``.
    """

    kinds: np.ndarray
    sources: np.ndarray
    dests: np.ndarray
    addresses: np.ndarray
    mispredicted: np.ndarray
    code_addresses: np.ndarray
    taken: np.ndarray
    branch_targets: np.ndarray

    def __post_init__(self) -> None:
        n = self.kinds.shape[0]
        columns = {
            "kinds": (self.kinds, np.int8),
            "sources": (self.sources, np.int64),
            "dests": (self.dests, np.int64),
            "addresses": (self.addresses, np.int64),
            "mispredicted": (self.mispredicted, np.bool_),
            "code_addresses": (self.code_addresses, np.int64),
            "taken": (self.taken, np.int8),
            "branch_targets": (self.branch_targets, np.int64),
        }
        for name, (array, dtype) in columns.items():
            expected_ndim = 2 if name == "sources" else 1
            if array.ndim != expected_ndim or array.shape[0] != n:
                raise ValueError(
                    f"{name}: expected shape ({n},"
                    f"{' width)' if expected_ndim == 2 else ')'} got "
                    f"{array.shape}"
                )
            normalized = np.ascontiguousarray(array, dtype=dtype)
            object.__setattr__(self, name, _sealed(normalized))

    def __len__(self) -> int:
        return int(self.kinds.shape[0])

    @property
    def source_width(self) -> int:
        return int(self.sources.shape[1])

    @property
    def is_memory(self) -> np.ndarray:
        """``int8`` mask: 1 for loads and stores."""
        mask = (self.kinds == KIND_LOAD) | (self.kinds == KIND_STORE)
        return _sealed(mask.astype(np.int8))

    # ------------------------------------------------------------------
    # MicroOp round trip
    # ------------------------------------------------------------------

    @classmethod
    def from_ops(cls, ops: Sequence[MicroOp]) -> "TraceArrays":
        """Encode ``ops`` losslessly; ``to_ops`` inverts exactly."""
        n = len(ops)
        width = 1
        for op in ops:
            if len(op.sources) > width:
                width = len(op.sources)
        kinds = np.empty(n, dtype=np.int8)
        sources = np.full((n, width), -1, dtype=np.int64)
        dests = np.empty(n, dtype=np.int64)
        addresses = np.empty(n, dtype=np.int64)
        mispredicted = np.empty(n, dtype=np.bool_)
        code_addresses = np.empty(n, dtype=np.int64)
        taken = np.empty(n, dtype=np.int8)
        branch_targets = np.empty(n, dtype=np.int64)
        kind_code = _KIND_TO_CODE
        for i, op in enumerate(ops):
            kinds[i] = kind_code[op.kind]
            for col, reg in enumerate(op.sources):
                sources[i, col] = reg
            dests[i] = -1 if op.dest is None else op.dest
            addresses[i] = -1 if op.address is None else op.address
            mispredicted[i] = op.mispredicted
            code_addresses[i] = (
                -1 if op.code_address is None else op.code_address
            )
            taken[i] = -1 if op.taken is None else int(op.taken)
            branch_targets[i] = (
                -1 if op.branch_target is None else op.branch_target
            )
        return cls(
            kinds=kinds,
            sources=sources,
            dests=dests,
            addresses=addresses,
            mispredicted=mispredicted,
            code_addresses=code_addresses,
            taken=taken,
            branch_targets=branch_targets,
        )

    def to_ops(self) -> List[MicroOp]:
        """Decode back to validated :class:`MicroOp` objects."""
        kinds = self.kinds.tolist()
        sources = self.sources.tolist()
        dests = self.dests.tolist()
        addresses = self.addresses.tolist()
        mispredicted = self.mispredicted.tolist()
        code_addresses = self.code_addresses.tolist()
        taken = self.taken.tolist()
        branch_targets = self.branch_targets.tolist()
        ops: List[MicroOp] = []
        for i in range(len(kinds)):
            srcs = tuple(reg for reg in sources[i] if reg >= 0)
            ops.append(
                MicroOp(
                    op_id=i,
                    kind=_CODE_TO_KIND[kinds[i]],
                    sources=srcs,
                    dest=None if dests[i] < 0 else dests[i],
                    address=None if addresses[i] < 0 else addresses[i],
                    mispredicted=mispredicted[i],
                    code_address=(
                        None if code_addresses[i] < 0 else code_addresses[i]
                    ),
                    taken=None if taken[i] < 0 else bool(taken[i]),
                    branch_target=(
                        None if branch_targets[i] < 0 else branch_targets[i]
                    ),
                )
            )
        return ops

    # ------------------------------------------------------------------
    # Derived columns for the batch kernel
    # ------------------------------------------------------------------

    def unique_code_addresses(self) -> np.ndarray:
        """Distinct code addresses in first-occurrence order.

        This is the prewarm working set (`None` entries excluded); the
        order matters because cache installation order decides LRU
        state, so both paths preserve it exactly.
        """
        if perf.FAST:
            return self._unique_code_addresses_fast()
        return self._unique_code_addresses_reference()

    def _unique_code_addresses_reference(self) -> np.ndarray:
        seen = set()
        out: List[int] = []
        for address in self.code_addresses.tolist():
            if address >= 0 and address not in seen:
                seen.add(address)
                out.append(address)
        return _sealed(np.array(out, dtype=np.int64))

    def _unique_code_addresses_fast(self) -> np.ndarray:
        return ordered_unique(self.code_addresses)

    def rename_producers(self, width: Optional[int] = None) -> np.ndarray:
        """Per-op in-flight producer indices, ``(n, width)`` ``-1``-padded.

        Entry ``(i, k)`` is the op index of the most recent earlier
        writer of op ``i``'s ``k``-th *resolvable* source register —
        sources whose register has no earlier writer are skipped and
        the found producers are packed left, mirroring the pipeline's
        rename stage.
        """
        if width is None:
            width = self.source_width
        if perf.FAST:
            return self._rename_producers_fast(width)
        return self._rename_producers_reference(width)

    def _rename_producers_reference(self, width: int) -> np.ndarray:
        n = len(self)
        producers = np.full((n, width), -1, dtype=np.int64)
        sources = self.sources.tolist()
        dests = self.dests.tolist()
        last_writer: dict = {}
        for i in range(n):
            col = 0
            for reg in sources[i]:
                if reg < 0:
                    continue
                writer = last_writer.get(reg)
                if writer is not None:
                    if col >= width:
                        raise ValueError(
                            f"op {i}: more than {width} producers"
                        )
                    producers[i, col] = writer
                    col += 1
            dest = dests[i]
            if dest >= 0:
                last_writer[dest] = i
        return _sealed(producers)

    def _rename_producers_fast(self, width: int) -> np.ndarray:
        n = len(self)
        if n == 0:
            return _sealed(np.full((0, width), -1, dtype=np.int64))
        dests = self.dests
        writer_idx = np.nonzero(dests >= 0)[0]
        if writer_idx.shape[0] == 0:
            return _sealed(np.full((n, width), -1, dtype=np.int64))
        # Combo key (reg, writer index) packed into one int64; writer
        # indices are already ascending within each register, and
        # np.sort groups by register, so a right-bisect of
        # ``reg * (n + 1) + (i - 1)`` lands on the most recent writer
        # of ``reg`` strictly before op ``i``.
        stride = np.int64(n + 1)
        combo = np.sort(dests[writer_idx] * stride + writer_idx)
        found = np.full((n, self.source_width), -1, dtype=np.int64)
        rows = np.arange(n, dtype=np.int64)
        for col in range(self.source_width):
            regs = self.sources[:, col]
            valid = regs >= 0
            query = regs * stride + (rows - 1)
            slot = np.searchsorted(combo, query, side="right") - 1
            hit = valid & (slot >= 0)
            candidate = combo[np.where(hit, slot, 0)]
            hit &= (candidate // stride) == regs
            found[:, col] = np.where(hit, candidate % stride, -1)
        # Pack found producers left (stable: preserves source order).
        order = np.argsort(found < 0, axis=1, kind="stable")
        packed = np.take_along_axis(found, order, axis=1)
        if packed.shape[1] > width:
            if np.any(packed[:, width:] >= 0):
                raise ValueError(f"more than {width} producers")
            packed = packed[:, :width]
        elif packed.shape[1] < width:
            pad = np.full((n, width - packed.shape[1]), -1, dtype=np.int64)
            packed = np.concatenate([packed, pad], axis=1)
        return _sealed(np.ascontiguousarray(packed))
