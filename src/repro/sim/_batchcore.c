/* Struct-of-arrays batch core for the cycle-accurate tier.
 *
 * One exported entrypoint, repro_run_batch, advances many independent
 * pipeline cells in lockstep: every iteration of the outer loop steps
 * each still-active cell through exactly one processed cycle (an
 * "event epoch" -- the idle cycles in between are skipped exactly as
 * in the Python event-driven engine), with finished cells dropped
 * from the active list.
 *
 * The algorithm is a field-for-field port of
 * repro.sim.pipeline.MultiSlicePipeline._run_event_driven plus the
 * MemorySystem / CacheBank / ComposedL2 semantics it drives:
 *
 *   - same fetch/steer/capacity/misprediction ordering;
 *   - same issue arbitration (one ALU + one LSU per Slice per cycle,
 *     lowest op id first, MSHR cap on in-flight loads);
 *   - same in-order commit with per-cycle budget and the
 *     commit-wakeup ready-time relaxation for remote operands;
 *   - same LRU set-associative cache model, bank hashing, prewarm
 *     and bulk L1I replay on skipped cycles.
 *
 * Heap pops compare full packed values and every key in flight is
 * distinct (or duplicates are exact value duplicates), so any correct
 * binary heap reproduces CPython's heapq behaviour bit for bit; the
 * wake lists preserve append order via tail pointers.  Python-side
 * parity tests assert bit-identical PipelineResult, per-slice
 * counters and memory stats against MultiSlicePipeline.run for every
 * cell.
 *
 * All inputs are flat little-endian int64/int8 buffers prepared by
 * repro.sim.batchpipe from TraceArrays (see repro.sim.soa); -1 is the
 * None sentinel throughout.
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>

/* params block layout (shared across the batch) */
enum {
    P_WINDOW = 0,
    P_ROB,
    P_FETCH_WIDTH,
    P_COMMIT_WIDTH,
    P_MAX_LOADS,
    P_MEM_DELAY,
    P_L1_HIT_DELAY,
    P_L1D_SETS,
    P_L1D_ASSOC,
    P_L1I_SETS,
    P_L1I_ASSOC,
    P_L2_SETS,
    P_L2_ASSOC,
    P_L2_BASE_DELAY,
    P_L2_HOP_DELAY,
    P_FRONT_END_DEPTH,
    P_COUNT
};

/* cell_conf layout (per cell) */
enum {
    C_SLICES = 0,
    C_L2_BANKS,
    C_TRACE_OFF,
    C_TRACE_LEN,
    C_WARM_OFF,
    C_WARM_LEN,
    C_COUNT
};

/* out_cell layout (per cell) */
enum {
    O_CYCLES = 0,
    O_L1_HITS,
    O_L2_HITS,
    O_L2_MISSES,
    O_MISPREDICTS,
    O_L1I_HITS,
    O_L1I_MISSES,
    O_L2_WRITEBACKS,
    O_STATUS,
    O_COUNT
};

/* out_slice layout (per cell x slice) */
enum {
    S_COMMITTED = 0,
    S_L2_ACCESSES,
    S_L2_MISSES,
    S_L1_MISSES,
    S_BRANCHES,
    S_BRANCH_MISPREDICTS,
    S_COUNT
};

#define KIND_LOAD 1
#define KIND_STORE 2
#define KIND_BRANCH 3
#define STALL_FOREVER 1000000000LL
/* op ids are packed into the low bits of future-heap keys */
#define OP_SHIFT 21
#define OP_MASK ((1LL << OP_SHIFT) - 1)

/* ---- growable min-heap of int64 keys ------------------------------- */

typedef struct {
    int64_t *data;
    int64_t len;
    int64_t cap;
} Heap;

static int heap_init(Heap *h, int64_t cap) {
    h->data = (int64_t *)malloc((size_t)cap * sizeof(int64_t));
    h->len = 0;
    h->cap = cap;
    return h->data == NULL ? -1 : 0;
}

static int heap_push(Heap *h, int64_t value) {
    int64_t i, parent;
    if (h->len == h->cap) {
        int64_t cap = h->cap * 2;
        int64_t *grown = (int64_t *)realloc(
            h->data, (size_t)cap * sizeof(int64_t));
        if (grown == NULL)
            return -1;
        h->data = grown;
        h->cap = cap;
    }
    i = h->len++;
    while (i > 0) {
        parent = (i - 1) >> 1;
        if (h->data[parent] <= value)
            break;
        h->data[i] = h->data[parent];
        i = parent;
    }
    h->data[i] = value;
    return 0;
}

static int64_t heap_pop(Heap *h) {
    int64_t top = h->data[0];
    int64_t last = h->data[--h->len];
    int64_t i = 0, child;
    for (;;) {
        child = 2 * i + 1;
        if (child >= h->len)
            break;
        if (child + 1 < h->len && h->data[child + 1] < h->data[child])
            child++;
        if (h->data[child] >= last)
            break;
        h->data[i] = h->data[child];
        i = child;
    }
    h->data[i] = last;
    return top;
}

/* ---- append-ordered wake lists (arena linked lists) ---------------- */

typedef struct {
    int32_t *head;   /* per producer op: first arena slot or -1 */
    int32_t *tail;   /* per producer op: last arena slot or -1 */
    int32_t *consumer;
    int32_t *next;
    int64_t used;
    int64_t cap;
} WakeLists;

static int wake_init(WakeLists *w, int64_t ops, int64_t cap) {
    w->head = (int32_t *)malloc((size_t)ops * sizeof(int32_t));
    w->tail = (int32_t *)malloc((size_t)ops * sizeof(int32_t));
    w->consumer = (int32_t *)malloc((size_t)cap * sizeof(int32_t));
    w->next = (int32_t *)malloc((size_t)cap * sizeof(int32_t));
    w->used = 0;
    w->cap = cap;
    if (!w->head || !w->tail || !w->consumer || !w->next)
        return -1;
    memset(w->head, 0xff, (size_t)ops * sizeof(int32_t));
    memset(w->tail, 0xff, (size_t)ops * sizeof(int32_t));
    return 0;
}

static void wake_append(WakeLists *w, int64_t producer, int64_t consumer) {
    int32_t slot = (int32_t)w->used++;
    w->consumer[slot] = (int32_t)consumer;
    w->next[slot] = -1;
    if (w->head[producer] < 0)
        w->head[producer] = slot;
    else
        w->next[w->tail[producer]] = slot;
    w->tail[producer] = slot;
}

static void wake_free(WakeLists *w) {
    free(w->head);
    free(w->tail);
    free(w->consumer);
    free(w->next);
}

/* ---- LRU set-associative cache banks ------------------------------- */

typedef struct {
    int64_t *tag;    /* [banks * sets * assoc] */
    int64_t *last;   /* [banks * sets * assoc] */
    uint8_t *dirty;  /* [banks * sets * assoc] */
    uint8_t *cnt;    /* [banks * sets] occupied ways */
    int64_t *clock;  /* [banks] */
    int64_t sets;
    int64_t assoc;
} CacheArr;

static int cache_init(CacheArr *c, int64_t banks, int64_t sets,
                      int64_t assoc) {
    size_t lines = (size_t)(banks * sets * assoc);
    c->tag = (int64_t *)malloc(lines * sizeof(int64_t));
    c->last = (int64_t *)malloc(lines * sizeof(int64_t));
    c->dirty = (uint8_t *)calloc(lines, 1);
    c->cnt = (uint8_t *)calloc((size_t)(banks * sets), 1);
    c->clock = (int64_t *)calloc((size_t)banks, sizeof(int64_t));
    c->sets = sets;
    c->assoc = assoc;
    if (!c->tag || !c->last || !c->dirty || !c->cnt || !c->clock)
        return -1;
    return 0;
}

static void cache_free(CacheArr *c) {
    free(c->tag);
    free(c->last);
    free(c->dirty);
    free(c->cnt);
    free(c->clock);
}

/* Access one bank: returns 1 on hit, 0 on miss (installing the line,
 * counting a writeback into *wb if a dirty victim is evicted). */
static int cache_access(CacheArr *c, int64_t bank, int64_t block,
                        int is_write, int64_t *wb) {
    int64_t set = block % c->sets;
    int64_t tag = block / c->sets;
    int64_t base = (bank * c->sets + set) * c->assoc;
    int64_t clock = ++c->clock[bank];
    int64_t count = c->cnt[bank * c->sets + set];
    int64_t i, victim, victim_last;
    for (i = 0; i < count; i++) {
        if (c->tag[base + i] == tag) {
            c->last[base + i] = clock;
            if (is_write)
                c->dirty[base + i] = 1;
            return 1;
        }
    }
    if (count >= c->assoc) {
        victim = 0;
        victim_last = c->last[base];
        for (i = 1; i < count; i++) {
            if (c->last[base + i] < victim_last) {
                victim = i;
                victim_last = c->last[base + i];
            }
        }
        if (c->dirty[base + victim] && wb != NULL)
            (*wb)++;
        for (i = victim; i < count - 1; i++) {
            c->tag[base + i] = c->tag[base + i + 1];
            c->last[base + i] = c->last[base + i + 1];
            c->dirty[base + i] = c->dirty[base + i + 1];
        }
        count--;
    }
    c->tag[base + count] = tag;
    c->last[base + count] = clock;
    c->dirty[base + count] = (uint8_t)(is_write ? 1 : 0);
    c->cnt[bank * c->sets + set] = (uint8_t)(count + 1);
    return 0;
}

/* ---- one pipeline cell --------------------------------------------- */

typedef struct {
    /* static shape */
    int64_t n;          /* trace length */
    int64_t S;          /* slices */
    int64_t nb;         /* l2 banks */
    int64_t prod_width;
    const int8_t *kinds;
    const int8_t *is_mem;
    const int8_t *mis;
    const int64_t *addr;
    const int64_t *code;
    const int64_t *prod;
    const int64_t *params;
    int64_t *l2_delay;  /* [nb] */
    int64_t operand_hops;
    int64_t steer_cap;
    int64_t fetch_budget_max;
    int64_t commit_budget_max;
    int64_t max_cycles;

    /* memory system */
    CacheArr l1d;
    CacheArr l1i;
    CacheArr l2;
    int64_t l2_wb;
    int64_t l1_hits, l2_hits, mem_acc, l1i_hits, l1i_misses;

    /* scoreboard */
    int32_t *slice_of;
    int64_t *fetched_at;
    int64_t *complete;
    uint8_t *committed;
    uint8_t *issued;
    uint8_t *queued;
    int32_t *waiting;
    int64_t *ready_time;
    WakeLists wake_complete;
    WakeLists wake_commit;

    Heap *ready;        /* [S] heaps of op ids */
    Heap *future;       /* [S] heaps of (time << OP_SHIFT) | op */
    Heap *mshr;         /* [S] heaps of release times */
    int64_t *stash;     /* [n] issue-loop scratch */
    int64_t *rob_occ;
    int64_t *win_occ;
    int64_t *ready_events;

    /* per-slice counters */
    int64_t *committed_n;
    int64_t *l2_accesses_n;
    int64_t *l2_misses_n;
    int64_t *l1_misses_n;
    int64_t *branches_n;
    int64_t *branch_mispredicts_n;

    /* cursors */
    int64_t fetch_index;
    int64_t commit_index;
    int64_t fetch_stalled_until;
    int64_t mispredicts;
    int64_t cycle;
} Cell;

static void cell_free(Cell *c) {
    int64_t s;
    cache_free(&c->l1d);
    cache_free(&c->l1i);
    cache_free(&c->l2);
    free(c->l2_delay);
    free(c->slice_of);
    free(c->fetched_at);
    free(c->complete);
    free(c->committed);
    free(c->issued);
    free(c->queued);
    free(c->waiting);
    free(c->ready_time);
    wake_free(&c->wake_complete);
    wake_free(&c->wake_commit);
    if (c->ready != NULL)
        for (s = 0; s < c->S; s++)
            free(c->ready[s].data);
    if (c->future != NULL)
        for (s = 0; s < c->S; s++)
            free(c->future[s].data);
    if (c->mshr != NULL)
        for (s = 0; s < c->S; s++)
            free(c->mshr[s].data);
    free(c->ready);
    free(c->future);
    free(c->mshr);
    free(c->stash);
    free(c->rob_occ);
    free(c->win_occ);
    free(c->ready_events);
    free(c->committed_n);
    free(c->l2_accesses_n);
    free(c->l2_misses_n);
    free(c->l1_misses_n);
    free(c->branches_n);
    free(c->branch_mispredicts_n);
}

/* integer sqrt rounding matching Python's int(round(math.sqrt(x)))
 * for the small bank-distance arguments in play */
static int64_t rounded_sqrt(int64_t x) {
    int64_t r = 0;
    while ((r + 1) * (r + 1) <= x)
        r++;
    /* round half to even like Python's round(); sqrt(x) is exactly
     * r + 0.5 only when 4*x == (2r+1)^2 */
    {
        int64_t twice = 2 * r + 1;
        int64_t frac4 = 4 * x;
        if (frac4 > twice * twice)
            return r + 1;
        if (frac4 == twice * twice)
            return (r % 2 == 0) ? r : r + 1;
        return r;
    }
}

static int cell_init(Cell *c, const int64_t *params, int64_t S,
                     int64_t nb, int64_t n, int64_t prod_width,
                     const int8_t *kinds, const int8_t *is_mem,
                     const int8_t *mis, const int64_t *addr,
                     const int64_t *code, const int64_t *prod,
                     const int64_t *warm, int64_t warm_len) {
    int64_t s, i;
    memset(c, 0, sizeof(Cell));
    c->n = n;
    c->S = S;
    c->nb = nb;
    c->prod_width = prod_width;
    c->kinds = kinds;
    c->is_mem = is_mem;
    c->mis = mis;
    c->addr = addr;
    c->code = code;
    c->prod = prod;
    c->params = params;
    c->operand_hops = S == 1 ? 0 : (S <= 4 ? 1 : 2);
    c->steer_cap = params[P_WINDOW] / 4;
    if (c->steer_cap < 2)
        c->steer_cap = 2;
    c->fetch_budget_max = params[P_FETCH_WIDTH] * S;
    c->commit_budget_max = params[P_COMMIT_WIDTH] * S;
    c->max_cycles = 1000 * n + 100000;

    c->l2_delay = (int64_t *)malloc((size_t)nb * sizeof(int64_t));
    if (c->l2_delay == NULL)
        return -1;
    for (i = 0; i < nb; i++)
        c->l2_delay[i] = rounded_sqrt(i + S) * params[P_L2_HOP_DELAY]
            + params[P_L2_BASE_DELAY];

    if (cache_init(&c->l1d, S, params[P_L1D_SETS], params[P_L1D_ASSOC]))
        return -1;
    if (cache_init(&c->l1i, S, params[P_L1I_SETS], params[P_L1I_ASSOC]))
        return -1;
    if (cache_init(&c->l2, nb, params[P_L2_SETS], params[P_L2_ASSOC]))
        return -1;

    c->slice_of = (int32_t *)calloc((size_t)n, sizeof(int32_t));
    c->fetched_at = (int64_t *)malloc((size_t)n * sizeof(int64_t));
    c->complete = (int64_t *)malloc((size_t)n * sizeof(int64_t));
    c->committed = (uint8_t *)calloc((size_t)n, 1);
    c->issued = (uint8_t *)calloc((size_t)n, 1);
    c->queued = (uint8_t *)calloc((size_t)n, 1);
    c->waiting = (int32_t *)calloc((size_t)n, sizeof(int32_t));
    c->ready_time = (int64_t *)calloc((size_t)n, sizeof(int64_t));
    if (!c->slice_of || !c->fetched_at || !c->complete || !c->committed
        || !c->issued || !c->queued || !c->waiting || !c->ready_time)
        return -1;
    for (i = 0; i < n; i++) {
        c->fetched_at[i] = -1;
        c->complete[i] = -1;
    }
    if (wake_init(&c->wake_complete, n, n * prod_width + 1))
        return -1;
    if (wake_init(&c->wake_commit, n, n * prod_width + 1))
        return -1;

    c->ready = (Heap *)calloc((size_t)S, sizeof(Heap));
    c->future = (Heap *)calloc((size_t)S, sizeof(Heap));
    c->mshr = (Heap *)calloc((size_t)S, sizeof(Heap));
    c->stash = (int64_t *)malloc((size_t)n * sizeof(int64_t));
    c->rob_occ = (int64_t *)calloc((size_t)S, sizeof(int64_t));
    c->win_occ = (int64_t *)calloc((size_t)S, sizeof(int64_t));
    c->ready_events = (int64_t *)calloc((size_t)S, sizeof(int64_t));
    c->committed_n = (int64_t *)calloc((size_t)S, sizeof(int64_t));
    c->l2_accesses_n = (int64_t *)calloc((size_t)S, sizeof(int64_t));
    c->l2_misses_n = (int64_t *)calloc((size_t)S, sizeof(int64_t));
    c->l1_misses_n = (int64_t *)calloc((size_t)S, sizeof(int64_t));
    c->branches_n = (int64_t *)calloc((size_t)S, sizeof(int64_t));
    c->branch_mispredicts_n = (int64_t *)calloc((size_t)S, sizeof(int64_t));
    if (!c->ready || !c->future || !c->mshr || !c->stash
        || !c->rob_occ || !c->win_occ
        || !c->ready_events || !c->committed_n || !c->l2_accesses_n
        || !c->l2_misses_n || !c->l1_misses_n || !c->branches_n
        || !c->branch_mispredicts_n)
        return -1;
    for (s = 0; s < S; s++) {
        if (heap_init(&c->ready[s], 64))
            return -1;
        if (heap_init(&c->future[s], 64))
            return -1;
        if (heap_init(&c->mshr[s], params[P_MAX_LOADS] + 2))
            return -1;
    }

    /* prewarm: install the code footprint into every L1I bank and the
     * shared L2, then zero the writeback tally -- exactly
     * MemorySystem.prewarm_code */
    for (s = 0; s < S; s++)
        for (i = 0; i < warm_len; i++)
            cache_access(&c->l1i, s, warm[i] >> 6, 0, NULL);
    for (i = 0; i < warm_len; i++) {
        int64_t block = warm[i] >> 6;
        cache_access(&c->l2, block % nb, block / nb, 0, &c->l2_wb);
    }
    c->l2_wb = 0;
    return 0;
}

/* resolve_ready: compute an op's operand-ready time and queue it */
static int resolve_ready(Cell *c, int64_t consumer) {
    int64_t ready_at = c->fetched_at[consumer];
    int64_t consumer_slice = c->slice_of[consumer];
    const int64_t *prods = c->prod + consumer * c->prod_width;
    int64_t k;
    for (k = 0; k < c->prod_width; k++) {
        int64_t producer = prods[k];
        int64_t delay, arrival;
        if (producer < 0)
            break;
        if (c->committed[producer])
            continue;
        delay = c->slice_of[producer] == consumer_slice
            ? 0 : c->operand_hops;
        arrival = c->complete[producer] + delay;
        if (delay >= 2)
            wake_append(&c->wake_commit, producer, consumer);
        if (arrival > ready_at)
            ready_at = arrival;
    }
    c->ready_time[consumer] = ready_at;
    if (ready_at <= c->cycle) {
        c->queued[consumer] = 1;
        return heap_push(&c->ready[consumer_slice], consumer);
    }
    return heap_push(&c->future[consumer_slice],
                     (ready_at << OP_SHIFT) | consumer);
}

/* Advance one processed cycle (plus the trailing idle-cycle skip).
 * Returns 1 when the cell has committed its whole trace, 0 while
 * active, -1 on runaway, -2 on allocation failure. */
static int cell_epoch(Cell *c) {
    const int64_t *params = c->params;
    int64_t S = c->S;
    int64_t n = c->n;
    int64_t cycle, s;
    int fetch_blocked_capacity = 0;
    int activity = 0;
    int64_t commit_budget;
    int64_t earliest, no_event;

    c->cycle += 1;
    cycle = c->cycle;
    if (cycle > c->max_cycles)
        return -1;

    for (s = 0; s < S; s++) {
        Heap *m = &c->mshr[s];
        while (m->len > 0 && m->data[0] <= cycle)
            heap_pop(m);
    }

    /* ---- fetch & rename ---- */
    if (cycle >= c->fetch_stalled_until) {
        int64_t budget = c->fetch_budget_max;
        while (budget > 0 && c->fetch_index < n) {
            int64_t op = c->fetch_index;
            int64_t code_address = c->code[op];
            const int64_t *prods = c->prod + op * c->prod_width;
            int64_t slice_id, k, pending;
            if (code_address >= 0) {
                int64_t target = op % S;
                int64_t block = code_address >> 6;
                int64_t set = block % c->l1i.sets;
                int64_t tag = block / c->l1i.sets;
                int64_t base = (target * c->l1i.sets + set) * c->l1i.assoc;
                int64_t count = c->l1i.cnt[target * c->l1i.sets + set];
                int64_t w;
                int resident = 0;
                for (w = 0; w < count; w++) {
                    if (c->l1i.tag[base + w] == tag) {
                        int64_t clk = ++c->l1i.clock[target];
                        c->l1i.last[base + w] = clk;
                        c->l1i_hits += 1;
                        resident = 1;
                        break;
                    }
                }
                if (!resident) {
                    int64_t cost;
                    int hit;
                    cache_access(&c->l1i, target, block, 0, NULL);
                    c->l1i_misses += 1;
                    hit = cache_access(&c->l2, block % c->nb,
                                       block / c->nb, 0, &c->l2_wb);
                    cost = params[P_L1_HIT_DELAY]
                        + c->l2_delay[block % c->nb];
                    if (!hit)
                        cost += params[P_MEM_DELAY];
                    c->fetch_stalled_until = cycle + cost;
                    break;
                }
            }
            slice_id = -1;
            for (k = 0; k < c->prod_width; k++) {
                int64_t producer = prods[k];
                if (producer < 0)
                    break;
                if (!c->committed[producer]) {
                    int64_t candidate = c->slice_of[producer];
                    if (c->rob_occ[candidate] < params[P_ROB]
                        && c->win_occ[candidate] < c->steer_cap)
                        slice_id = candidate;
                    break;
                }
            }
            if (slice_id < 0) {
                int64_t best_window = c->win_occ[0];
                int64_t best_rob = c->rob_occ[0];
                int64_t candidate;
                slice_id = 0;
                for (candidate = 1; candidate < S; candidate++) {
                    int64_t cand_window = c->win_occ[candidate];
                    int64_t cand_rob;
                    if (cand_window > best_window)
                        continue;
                    cand_rob = c->rob_occ[candidate];
                    if (cand_window < best_window || cand_rob < best_rob) {
                        slice_id = candidate;
                        best_window = cand_window;
                        best_rob = cand_rob;
                    }
                }
            }
            if (c->rob_occ[slice_id] >= params[P_ROB]
                || c->win_occ[slice_id] >= params[P_WINDOW]) {
                fetch_blocked_capacity = 1;
                break;
            }
            c->slice_of[op] = (int32_t)slice_id;
            c->fetched_at[op] = cycle;
            pending = 0;
            for (k = 0; k < c->prod_width; k++) {
                int64_t producer = prods[k];
                if (producer < 0)
                    break;
                if (!c->committed[producer] && c->complete[producer] < 0) {
                    pending += 1;
                    wake_append(&c->wake_complete, producer, op);
                }
            }
            c->waiting[op] = (int32_t)pending;
            c->rob_occ[slice_id] += 1;
            c->win_occ[slice_id] += 1;
            c->fetch_index += 1;
            budget -= 1;
            if (pending == 0)
                if (resolve_ready(c, op))
                    return -2;
            if (c->kinds[op] == KIND_BRANCH && c->mis[op]) {
                c->fetch_stalled_until = cycle + STALL_FOREVER;
                break;
            }
        }
    }

    /* ---- issue & execute ---- */
    for (s = 0; s < S; s++) {
        Heap *matured = &c->future[s];
        Heap *heap = &c->ready[s];
        Heap *slice_mshr = &c->mshr[s];
        int alu_free = 1, lsu_free = 1;
        int blocked_resource = 0, blocked_mshr = 0;
        int64_t *stash = c->stash;
        int64_t stash_len = 0;
        while (matured->len > 0
               && (matured->data[0] >> OP_SHIFT) <= cycle) {
            int64_t op = heap_pop(matured) & OP_MASK;
            if (c->issued[op] || c->queued[op])
                continue;
            c->queued[op] = 1;
            if (heap_push(heap, op))
                return -2;
        }
        if (heap->len == 0) {
            c->ready_events[s] = 0;
            continue;
        }
        while (heap->len > 0) {
            int64_t op;
            if (!alu_free && !lsu_free)
                break;
            op = heap_pop(heap);
            if (c->is_mem[op]) {
                int64_t kind = c->kinds[op];
                int64_t address, block, done;
                int is_write, l1_hit;
                if (!lsu_free) {
                    stash[stash_len++] = op;
                    blocked_resource = 1;
                    continue;
                }
                if (kind == KIND_LOAD
                    && slice_mshr->len >= params[P_MAX_LOADS]) {
                    stash[stash_len++] = op;
                    blocked_mshr = 1;
                    continue;
                }
                address = c->addr[op];
                is_write = kind == KIND_STORE;
                block = address >> 6;
                l1_hit = cache_access(&c->l1d, s, block, is_write, NULL);
                if (l1_hit) {
                    c->l1_hits += 1;
                    done = cycle + params[P_L1_HIT_DELAY];
                } else {
                    int64_t bank = block % c->nb;
                    int l2_hit = cache_access(&c->l2, bank, block / c->nb,
                                              is_write, &c->l2_wb);
                    if (l2_hit) {
                        c->l2_hits += 1;
                        done = cycle + params[P_L1_HIT_DELAY]
                            + c->l2_delay[bank];
                    } else {
                        c->mem_acc += 1;
                        done = cycle + params[P_L1_HIT_DELAY]
                            + c->l2_delay[bank] + params[P_MEM_DELAY];
                        c->l2_misses_n[s] += 1;
                    }
                    c->l1_misses_n[s] += 1;
                }
                c->complete[op] = done;
                if (kind == KIND_LOAD)
                    if (heap_push(slice_mshr, done))
                        return -2;
                c->l2_accesses_n[s] += 1;
                lsu_free = 0;
            } else {
                if (!alu_free) {
                    stash[stash_len++] = op;
                    blocked_resource = 1;
                    continue;
                }
                c->complete[op] = cycle + 1;
                alu_free = 0;
                if (c->kinds[op] == KIND_BRANCH) {
                    c->branches_n[s] += 1;
                    if (c->mis[op]) {
                        c->mispredicts += 1;
                        c->branch_mispredicts_n[s] += 1;
                        c->fetch_stalled_until =
                            cycle + 1 + params[P_FRONT_END_DEPTH];
                    }
                }
            }
            c->issued[op] = 1;
            c->queued[op] = 0;
            activity = 1;
            c->win_occ[s] -= 1;
            {
                int32_t slot = c->wake_complete.head[op];
                c->wake_complete.head[op] = -1;
                while (slot >= 0) {
                    int64_t consumer = c->wake_complete.consumer[slot];
                    slot = c->wake_complete.next[slot];
                    if (--c->waiting[consumer] == 0)
                        if (resolve_ready(c, consumer))
                            return -2;
                }
            }
        }
        {
            int64_t i;
            for (i = 0; i < stash_len; i++)
                if (heap_push(heap, stash[i]))
                    return -2;
        }
        if (heap->len > 0) {
            if (blocked_mshr && !blocked_resource
                && stash_len == heap->len)
                c->ready_events[s] = slice_mshr->data[0];
            else
                c->ready_events[s] = cycle + 1;
        } else {
            c->ready_events[s] = 0;
        }
    }

    /* ---- commit ---- */
    commit_budget = c->commit_budget_max;
    while (commit_budget > 0 && c->commit_index < n) {
        int64_t op = c->commit_index;
        int64_t done, slice_id;
        int32_t slot;
        if (c->fetched_at[op] < 0)
            break;
        done = c->complete[op];
        if (done < 0 || done > cycle)
            break;
        c->committed[op] = 1;
        slice_id = c->slice_of[op];
        c->rob_occ[slice_id] -= 1;
        c->committed_n[slice_id] += 1;
        c->commit_index += 1;
        commit_budget -= 1;
        activity = 1;
        slot = c->wake_commit.head[op];
        c->wake_commit.head[op] = -1;
        while (slot >= 0) {
            int64_t consumer = c->wake_commit.consumer[slot];
            int64_t previous, consumer_slice, relaxed, k;
            slot = c->wake_commit.next[slot];
            if (c->issued[consumer] || c->queued[consumer]
                || c->waiting[consumer])
                continue;
            previous = c->ready_time[consumer];
            if (previous <= cycle + 1)
                continue;
            consumer_slice = c->slice_of[consumer];
            relaxed = c->fetched_at[consumer];
            if (cycle + 1 > relaxed)
                relaxed = cycle + 1;
            for (k = 0; k < c->prod_width; k++) {
                int64_t producer = c->prod[consumer * c->prod_width + k];
                int64_t delay, arrival;
                if (producer < 0)
                    break;
                if (c->committed[producer])
                    continue;
                delay = c->slice_of[producer] == consumer_slice
                    ? 0 : c->operand_hops;
                arrival = c->complete[producer] + delay;
                if (arrival > relaxed)
                    relaxed = arrival;
            }
            if (relaxed < previous) {
                c->ready_time[consumer] = relaxed;
                if (heap_push(&c->future[consumer_slice],
                              (relaxed << OP_SHIFT) | consumer))
                    return -2;
            }
        }
    }

    if (c->commit_index >= n)
        return 1;

    /* ---- next event & idle-cycle skip ---- */
    no_event = c->max_cycles + 2;
    earliest = no_event;
    if (c->fetch_index < n) {
        if (c->fetch_stalled_until > cycle) {
            if (c->fetch_stalled_until < earliest)
                earliest = c->fetch_stalled_until;
        } else if (!fetch_blocked_capacity || activity) {
            earliest = cycle + 1;
        }
    }
    for (s = 0; s < S; s++) {
        int64_t event = c->ready_events[s];
        if (event && event < earliest)
            earliest = event;
        if (c->future[s].len > 0) {
            int64_t at = c->future[s].data[0] >> OP_SHIFT;
            if (at < earliest)
                earliest = at;
        }
    }
    if (c->fetched_at[c->commit_index] >= 0) {
        int64_t done = c->complete[c->commit_index];
        if (done >= 0) {
            int64_t event = done > cycle ? done : cycle + 1;
            if (event < earliest)
                earliest = event;
        }
    }
    if (earliest >= no_event || earliest <= cycle + 1)
        return 0;
    {
        int64_t skipped = earliest - 1 - cycle;
        if (c->fetch_index < n && c->fetch_stalled_until <= cycle
            && fetch_blocked_capacity) {
            int64_t code_address = c->code[c->fetch_index];
            if (code_address >= 0) {
                int64_t target = c->fetch_index % S;
                int64_t block = code_address >> 6;
                int64_t set = block % c->l1i.sets;
                int64_t tag = block / c->l1i.sets;
                int64_t base = (target * c->l1i.sets + set) * c->l1i.assoc;
                int64_t count = c->l1i.cnt[target * c->l1i.sets + set];
                int64_t w;
                for (w = 0; w < count; w++) {
                    if (c->l1i.tag[base + w] == tag) {
                        int64_t clk = c->l1i.clock[target] + skipped;
                        c->l1i.clock[target] = clk;
                        c->l1i.last[base + w] = clk;
                        c->l1i_hits += skipped;
                        break;
                    }
                }
            }
        }
        c->cycle = earliest - 1;
    }
    return 0;
}

/* ---- batch driver --------------------------------------------------- */

int64_t repro_run_batch(
    int64_t n_cells,
    int64_t max_slices,
    int64_t prod_width,
    const int64_t *params,
    const int64_t *cell_conf,
    const int8_t *kinds,
    const int8_t *is_mem,
    const int8_t *mispredicted,
    const int64_t *addresses,
    const int64_t *code_addresses,
    const int64_t *producers,
    const int64_t *warm,
    int64_t *out_cell,
    int64_t *out_slice)
{
    Cell *cells;
    int64_t *active;
    int64_t i, remaining;
    int failed = 0;

    cells = (Cell *)calloc((size_t)n_cells, sizeof(Cell));
    active = (int64_t *)malloc((size_t)n_cells * sizeof(int64_t));
    if (cells == NULL || active == NULL) {
        free(cells);
        free(active);
        return -2;
    }
    for (i = 0; i < n_cells; i++) {
        const int64_t *conf = cell_conf + i * C_COUNT;
        int64_t off = conf[C_TRACE_OFF];
        if (cell_init(&cells[i], params, conf[C_SLICES], conf[C_L2_BANKS],
                      conf[C_TRACE_LEN], prod_width, kinds + off,
                      is_mem + off, mispredicted + off, addresses + off,
                      code_addresses + off, producers + off * prod_width,
                      warm + conf[C_WARM_OFF], conf[C_WARM_LEN])) {
            failed = 1;
            break;
        }
        active[i] = i;
    }
    if (failed) {
        for (i = 0; i < n_cells; i++)
            cell_free(&cells[i]);
        free(cells);
        free(active);
        return -2;
    }

    /* lockstep: every pass steps each still-active cell through one
     * event epoch, then compacts the active list in place */
    remaining = n_cells;
    while (remaining > 0 && !failed) {
        int64_t kept = 0;
        for (i = 0; i < remaining; i++) {
            int64_t cell_id = active[i];
            int status = cell_epoch(&cells[cell_id]);
            if (status == 0) {
                active[kept++] = cell_id;
            } else if (status == -2) {
                failed = 1;
                break;
            } else {
                out_cell[cell_id * O_COUNT + O_STATUS] =
                    status == 1 ? 0 : 1;
            }
        }
        remaining = kept;
    }

    if (!failed) {
        for (i = 0; i < n_cells; i++) {
            Cell *c = &cells[i];
            int64_t *row = out_cell + i * O_COUNT;
            int64_t s;
            row[O_CYCLES] = c->cycle;
            row[O_L1_HITS] = c->l1_hits;
            row[O_L2_HITS] = c->l2_hits;
            row[O_L2_MISSES] = c->mem_acc;
            row[O_MISPREDICTS] = c->mispredicts;
            row[O_L1I_HITS] = c->l1i_hits;
            row[O_L1I_MISSES] = c->l1i_misses;
            row[O_L2_WRITEBACKS] = c->l2_wb;
            for (s = 0; s < c->S; s++) {
                int64_t *srow = out_slice
                    + (i * max_slices + s) * S_COUNT;
                srow[S_COMMITTED] = c->committed_n[s];
                srow[S_L2_ACCESSES] = c->l2_accesses_n[s];
                srow[S_L2_MISSES] = c->l2_misses_n[s];
                srow[S_L1_MISSES] = c->l1_misses_n[s];
                srow[S_BRANCHES] = c->branches_n[s];
                srow[S_BRANCH_MISPREDICTS] = c->branch_mispredicts_n[s];
            }
        }
    }
    for (i = 0; i < n_cells; i++)
        cell_free(&cells[i]);
    free(cells);
    free(active);
    return failed ? -2 : 0;
}
