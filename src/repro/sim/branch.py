"""Branch prediction for the cycle tier (Fig. 4: ``Br_pred & btb``).

The trace-driven pipeline can either take mispredictions from the
trace (the default: the trace generator scripts them at the phase's
rate) or resolve them *dynamically* against this module: a classic
bimodal predictor (2-bit saturating counters) plus a branch target
buffer.  With dynamic prediction, mispredictions are an emergent
property of each branch's outcome history — biased branches train to
near-zero mispredicts, 50/50 branches stay hard — which is what lets
tests exercise the front end as real hardware would behave.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


class BimodalPredictor:
    """2-bit saturating counters indexed by branch address."""

    STRONG_NOT_TAKEN, WEAK_NOT_TAKEN, WEAK_TAKEN, STRONG_TAKEN = 0, 1, 2, 3

    def __init__(self, entries: int = 1024) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError(f"entries must be a positive power of two, got {entries}")
        self.entries = entries
        # Initialized weakly taken: loops are usually taken.
        self._counters = [self.WEAK_TAKEN] * entries
        self.predictions = 0
        self.mispredictions = 0

    def _index(self, address: int) -> int:
        # Addresses arrive at cache-block granularity; index on block
        # bits so neighbouring blocks map to distinct counters.
        return (address >> 6) & (self.entries - 1)

    def predict(self, address: int) -> bool:
        """Predicted direction for the branch at ``address``."""
        return self._counters[self._index(address)] >= self.WEAK_TAKEN

    def update(self, address: int, taken: bool) -> bool:
        """Resolve a branch; returns True if it was mispredicted."""
        index = self._index(address)
        predicted = self._counters[index] >= self.WEAK_TAKEN
        mispredicted = predicted != taken
        if taken:
            self._counters[index] = min(
                self._counters[index] + 1, self.STRONG_TAKEN
            )
        else:
            self._counters[index] = max(
                self._counters[index] - 1, self.STRONG_NOT_TAKEN
            )
        self.predictions += 1
        self.mispredictions += mispredicted
        return mispredicted

    @property
    def mispredict_rate(self) -> float:
        if self.predictions == 0:
            return 0.0
        return self.mispredictions / self.predictions


@dataclass
class _BtbEntry:
    tag: int
    target: int


class BranchTargetBuffer:
    """Direct-mapped BTB: taken branches need a target to redirect to.

    A taken branch that misses the BTB costs a front-end redirect even
    when its direction was predicted correctly.
    """

    def __init__(self, entries: int = 512) -> None:
        if entries <= 0 or entries & (entries - 1):
            raise ValueError(f"entries must be a positive power of two, got {entries}")
        self.entries = entries
        self._table: Dict[int, _BtbEntry] = {}
        self.lookups = 0
        self.misses = 0

    def _index_tag(self, address: int):
        index = (address >> 6) & (self.entries - 1)
        return index, address >> 6

    def lookup(self, address: int) -> Optional[int]:
        """Predicted target, or None on a BTB miss."""
        self.lookups += 1
        index, tag = self._index_tag(address)
        entry = self._table.get(index)
        if entry is None or entry.tag != tag:
            self.misses += 1
            return None
        return entry.target

    def install(self, address: int, target: int) -> None:
        index, tag = self._index_tag(address)
        self._table[index] = _BtbEntry(tag=tag, target=target)

    @property
    def miss_rate(self) -> float:
        return self.misses / self.lookups if self.lookups else 0.0


class FrontEndPredictor:
    """The composed front end: direction predictor + BTB."""

    def __init__(self, predictor_entries: int = 1024, btb_entries: int = 512):
        self.direction = BimodalPredictor(predictor_entries)
        self.btb = BranchTargetBuffer(btb_entries)

    def resolve(self, address: int, taken: bool, target: int) -> bool:
        """Resolve a branch; returns True if the front end must redirect
        (direction mispredict, or a taken branch with a BTB miss)."""
        direction_miss = self.direction.update(address, taken)
        if not taken:
            return direction_miss
        predicted_target = self.btb.lookup(address)
        self.btb.install(address, target)
        return direction_miss or predicted_target != target
