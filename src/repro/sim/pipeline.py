"""Cycle-level multi-Slice out-of-order pipeline (the SSim cycle tier).

Models the composed virtual core of Fig. 4 at cycle granularity with
the Table I resources per Slice:

* **fetch** — 2 instructions/cycle/Slice, steered round-robin across
  the Slices of the virtual core (distributed fetch);
* **rename** — global logical registers; each op records its producer
  ops, and cross-Slice operands pay the Scalar Operand Network hop
  latency;
* **issue** — per-Slice issue window (32), out-of-order, one ALU-class
  and one memory-class op per Slice per cycle (1 ALU + 1 LSU);
* **memory** — per-Slice L1D over the bank-hashed L2 with
  distance-dependent hit delays, at most 8 in-flight loads per Slice;
* **commit** — program order, 2/cycle/Slice, per-Slice ROB of 64;
* **branches** — a mispredict stalls fetch until the branch resolves
  plus the front-end redirect penalty.

This is deliberately a simplified out-of-order model — enough to
demonstrate the CASH mechanisms (composition scaling, distance-priced
cache, reconfiguration stalls) at cycle fidelity and to sanity-check
the fast analytic tier, not a validated microarchitectural twin.

Two implementations execute the same machine:

* :meth:`MultiSlicePipeline._run_reference` — the scalar reference: one
  loop iteration per simulated cycle, re-scanning every in-flight op.
* :meth:`MultiSlicePipeline._run_event_driven` — the
  :data:`repro.perf.FAST` twin: an incremental wakeup scoreboard (ops
  enter a per-Slice ready heap only when their last producer's
  completion time is known), min-heaps for MSHR release times, and
  cycle skipping that jumps simulated time to the next event while
  accounting per-Slice ``CYCLES`` counters — and the L1I touches of a
  capacity-stalled front end — exactly.  The equivalence suite asserts
  bit-identical :class:`PipelineResult`, counters, and memory state.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import perf
from repro.arch.counters import CounterKind, PerformanceCounters
from repro.arch.params import CacheParams, SliceParams
from repro.arch.params import DEFAULT_CACHE_PARAMS, DEFAULT_SLICE_PARAMS
from repro.arch.vcore import VCoreConfig
from repro.sim.isa import MicroOp, OpKind
from repro.sim.branch import FrontEndPredictor
from repro.sim.memsys import MemorySystem
from repro.sim.soa import ordered_unique

_FRONT_END_DEPTH = 7
"""Fetch/decode/rename depth: the redirect penalty after a mispredict
and the fixed part of a reconfiguration pipeline flush."""


@dataclass
class _InFlightOp:
    op: MicroOp
    slice_id: int
    producers: Tuple[int, ...]  # op_ids this op waits on
    fetched_at: int
    issued: bool = False
    complete_at: Optional[int] = None
    committed: bool = False


@dataclass(frozen=True)
class PipelineResult:
    """Outcome of running a trace on the cycle tier."""

    cycles: int
    instructions: int
    config: VCoreConfig
    l1_hits: int
    l2_hits: int
    l2_misses: int
    mispredicts: int
    l1i_misses: int = 0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


class MultiSlicePipeline:
    """A virtual core executing one micro-op trace."""

    def __init__(
        self,
        config: VCoreConfig,
        slice_params: SliceParams = DEFAULT_SLICE_PARAMS,
        cache_params: CacheParams = DEFAULT_CACHE_PARAMS,
        dynamic_branches: bool = False,
    ) -> None:
        self.config = config
        self.slice_params = slice_params
        self.cache_params = cache_params
        self.memory = MemorySystem(config, cache_params, slice_params)
        self.dynamic_branches = dynamic_branches
        self.front_end = FrontEndPredictor() if dynamic_branches else None
        self.counters = [
            PerformanceCounters(slice_id) for slice_id in range(config.slices)
        ]
        # Cross-Slice operand forwarding cost.  The Scalar Operand
        # Network is a fast switched interconnect (Section III-A);
        # within the compact Slice groups the runtime allocates,
        # forwarding costs one network cycle, plus one more only for
        # the widest groups.
        if config.slices == 1:
            self._operand_hops = 0
        elif config.slices <= 4:
            self._operand_hops = 1
        else:
            self._operand_hops = 2

    def _operand_delay(self, producer_slice: int, consumer_slice: int) -> int:
        if producer_slice == consumer_slice:
            return 0
        return self._operand_hops

    def _prewarm(self, trace: Sequence[MicroOp]) -> None:
        """Install the trace's code footprint (steady-state fetch).

        Install order decides LRU state, so both dedup paths preserve
        first-occurrence order: the FAST path through the SoA column
        dedup (``np.unique`` + first-index re-sort), the scalar twin
        through the seen-set loop.
        """
        if perf.FAST:
            columns = np.fromiter(
                (
                    -1 if op.code_address is None else op.code_address
                    for op in trace
                ),
                dtype=np.int64,
                count=len(trace),
            )
            code = ordered_unique(columns).tolist()
        else:
            code = []
            seen = set()
            for op in trace:
                if op.code_address is not None and op.code_address not in seen:
                    seen.add(op.code_address)
                    code.append(op.code_address)
        if code:
            self.memory.prewarm_code(code)

    def run(self, trace: Sequence[MicroOp]) -> PipelineResult:
        """Execute the trace to completion; returns cycle-level results.

        With :data:`repro.perf.FAST` enabled the event-driven engine
        runs; otherwise (or for traces whose ``op_id``s are not the
        positions the commit walk indexes by) the per-cycle scalar
        reference does.  Both produce bit-identical results and leave
        the memory system and counters in bit-identical states.
        """
        if perf.FAST:
            return self._run_event_driven(trace)
        return self._run_reference(trace)

    def _run_reference(self, trace: Sequence[MicroOp]) -> PipelineResult:
        """The scalar reference: one loop iteration per simulated cycle."""
        if not trace:
            raise ValueError("cannot run an empty trace")
        self._prewarm(trace)
        params = self.slice_params
        num_slices = self.config.slices
        window_cap = params.issue_window
        rob_cap = params.rob_size

        in_flight: Dict[int, _InFlightOp] = {}
        last_writer: Dict[int, int] = {}  # global reg -> op_id (rename view)
        rob_occupancy = [0] * num_slices
        window_occupancy = [0] * num_slices
        # Outstanding-load (MSHR) slots are freed when the load's data
        # returns, not at commit — freeing at commit would deadlock: a
        # younger issued load can hold a slot while an older load,
        # still waiting for it, blocks the commit head.
        load_release: List[List[int]] = [[] for _ in range(num_slices)]

        fetch_index = 0
        commit_index = 0
        fetch_stalled_until = 0
        mispredicts = 0
        cycle = 0
        total = len(trace)
        max_cycles = 1000 * total + 100_000  # runaway guard

        while commit_index < total:
            cycle += 1
            if cycle > max_cycles:  # pragma: no cover - defensive
                raise RuntimeError("pipeline failed to make progress")

            for slice_loads in load_release:
                # Rebuilding an empty list is a no-op; only Slices with
                # outstanding loads pay for the prune.
                if slice_loads:
                    slice_loads[:] = [t for t in slice_loads if t > cycle]

            # ---- fetch & rename ------------------------------------
            if cycle >= fetch_stalled_until:
                budget = params.fetch_width * num_slices
                while budget > 0 and fetch_index < total:
                    op = trace[fetch_index]
                    if op.code_address is not None:
                        target = fetch_index % num_slices
                        fetch_result = self.memory.fetch(
                            target, op.code_address
                        )
                        if fetch_result.level != "l1":
                            # Instruction miss: the front end stalls
                            # until the line arrives (it is installed
                            # by this access, so the retry hits).
                            fetch_stalled_until = (
                                cycle + fetch_result.cycles
                            )
                            break
                    producers = tuple(
                        last_writer[reg]
                        for reg in op.sources
                        if reg in last_writer
                    )
                    # Dependence-aware steering with load balance:
                    # place an op with its first in-flight producer
                    # (keeping dependence chains local to avoid
                    # operand-network hops) unless that Slice is
                    # congested, in which case the least-loaded Slice
                    # takes it — independent chains then spread across
                    # the virtual core.
                    slice_id = None
                    for producer_id in producers:
                        producer = in_flight.get(producer_id)
                        if producer is not None:
                            candidate = producer.slice_id
                            if (
                                rob_occupancy[candidate] < rob_cap
                                and window_occupancy[candidate]
                                < max(window_cap // 4, 2)
                            ):
                                slice_id = candidate
                            break
                    if slice_id is None:
                        slice_id = min(
                            range(num_slices),
                            key=lambda s: (
                                window_occupancy[s],
                                rob_occupancy[s],
                            ),
                        )
                    if (
                        rob_occupancy[slice_id] >= rob_cap
                        or window_occupancy[slice_id] >= window_cap
                    ):
                        break
                    in_flight[op.op_id] = _InFlightOp(
                        op=op,
                        slice_id=slice_id,
                        producers=producers,
                        fetched_at=cycle,
                    )
                    if op.dest is not None:
                        last_writer[op.dest] = op.op_id
                    rob_occupancy[slice_id] += 1
                    window_occupancy[slice_id] += 1
                    fetch_index += 1
                    budget -= 1
                    if (
                        not self.dynamic_branches
                        and op.kind is OpKind.BRANCH
                        and op.mispredicted
                    ):
                        # Scripted mode: stop fetching down the wrong
                        # path; resume a redirect-delay after the
                        # branch resolves.
                        fetch_stalled_until = cycle + 10**9
                        break

            # ---- issue & execute -----------------------------------
            for slice_id in range(num_slices):
                alu_free = True
                lsu_free = True
                for entry in sorted(
                    (
                        e
                        for e in in_flight.values()
                        if e.slice_id == slice_id and not e.issued
                    ),
                    key=lambda e: e.op.op_id,
                ):
                    if not alu_free and not lsu_free:
                        break
                    ready = True
                    ready_at = entry.fetched_at
                    for producer_id in entry.producers:
                        producer = in_flight.get(producer_id)
                        if producer is None:
                            continue  # already committed & drained
                        if producer.complete_at is None:
                            ready = False
                            break
                        arrival = producer.complete_at + self._operand_delay(
                            producer.slice_id, entry.slice_id
                        )
                        ready_at = max(ready_at, arrival)
                    if not ready or ready_at > cycle:
                        continue
                    op = entry.op
                    if op.is_memory:
                        if not lsu_free:
                            continue
                        if (
                            op.kind is OpKind.LOAD
                            and len(load_release[slice_id])
                            >= params.max_inflight_loads
                        ):
                            continue
                        result = self.memory.access(
                            slice_id, op.address, op.kind is OpKind.STORE
                        )
                        entry.complete_at = cycle + result.cycles
                        if op.kind is OpKind.LOAD:
                            load_release[slice_id].append(entry.complete_at)
                        self.counters[slice_id].increment(CounterKind.L2_ACCESSES)
                        if result.level == "memory":
                            self.counters[slice_id].increment(
                                CounterKind.L2_MISSES
                            )
                        if result.level != "l1":
                            self.counters[slice_id].increment(
                                CounterKind.L1_MISSES
                            )
                        lsu_free = False
                    else:
                        if not alu_free:
                            continue
                        entry.complete_at = cycle + 1
                        alu_free = False
                        if op.kind is OpKind.BRANCH:
                            self.counters[slice_id].increment(
                                CounterKind.BRANCHES
                            )
                            if (
                                self.dynamic_branches
                                and op.taken is not None
                            ):
                                redirect = self.front_end.resolve(
                                    op.code_address or 0,
                                    op.taken,
                                    op.branch_target or 0,
                                )
                            else:
                                redirect = op.mispredicted
                            if redirect:
                                mispredicts += 1
                                self.counters[slice_id].increment(
                                    CounterKind.BRANCH_MISPREDICTS
                                )
                                fetch_stalled_until = (
                                    cycle + 1 + _FRONT_END_DEPTH
                                )
                    entry.issued = True
                    window_occupancy[slice_id] -= 1

            # ---- commit --------------------------------------------
            commit_budget = params.commit_width * num_slices
            while commit_budget > 0 and commit_index < total:
                entry = in_flight.get(commit_index)
                if (
                    entry is None
                    or entry.complete_at is None
                    or entry.complete_at > cycle
                ):
                    break
                entry.committed = True
                rob_occupancy[entry.slice_id] -= 1
                self.counters[entry.slice_id].increment(
                    CounterKind.INSTRUCTIONS_COMMITTED
                )
                del in_flight[commit_index]
                commit_index += 1
                commit_budget -= 1

            for slice_counters in self.counters:
                slice_counters.increment(CounterKind.CYCLES)

        stats = self.memory.stats()
        return PipelineResult(
            cycles=cycle,
            instructions=total,
            config=self.config,
            l1_hits=stats["l1_hits"],
            l2_hits=stats["l2_hits"],
            l2_misses=stats["l2_misses"],
            mispredicts=mispredicts,
            l1i_misses=stats["l1i_misses"],
        )

    def _run_event_driven(self, trace: Sequence[MicroOp]) -> PipelineResult:
        """Event-driven twin of :meth:`_run_reference` (``perf.FAST``).

        Replaces the per-cycle re-scan of the in-flight window with an
        incremental wakeup scoreboard and skips cycles in which nothing
        can happen.  The invariants that keep it bit-identical:

        * an op enters its Slice's ready heap only once all producers
          have known completion times; its ready cycle is
          ``max(fetched_at, completion + operand_delay)`` over the
          producers still in flight — exactly the reference's
          ``ready_at``;
        * a committed producer drops out of the reference's readiness
          scan, which can only matter when the operand delay is >= 2
          (for delay <= 1 the arrival bound is never later than
          ``commit_cycle + 1``), so only those consumers register for a
          commit wakeup that relaxes their ready time;
        * issue picks the first ready ALU-class and first ready
          MEM-class op in ``op_id`` order per Slice — the heap pops in
          the same order the reference's ``sorted(...)`` scan visits;
        * the next processed cycle is never later than the earliest
          cycle at which the reference could fetch, issue, commit, or
          release an MSHR, so skipped cycles are provably dead;
        * skipped cycles still account per-Slice ``CYCLES`` (added in
          bulk at the end) and the L1I re-touches of a capacity-stalled
          front end (replayed in bulk via
          :meth:`~repro.sim.memsys.MemorySystem.refetch_resident`, which
          replicates hit bookkeeping exactly).
        """
        if not trace:
            raise ValueError("cannot run an empty trace")
        total = len(trace)
        for index, op in enumerate(trace):
            if op.op_id != index:
                # The commit walk indexes in-flight ops by op_id ==
                # position; irregular traces take the reference tier.
                return self._run_reference(trace)
        self._prewarm(trace)

        params = self.slice_params
        num_slices = self.config.slices
        window_cap = params.issue_window
        rob_cap = params.rob_size
        steer_cap = max(window_cap // 4, 2)
        fetch_budget_max = params.fetch_width * num_slices
        commit_budget_max = params.commit_width * num_slices
        max_loads = params.max_inflight_loads
        operand_hops = self._operand_hops
        memory = self.memory
        counters = self.counters
        dynamic = self.dynamic_branches
        front_end = self.front_end
        # Bound per-Slice L1I hit replays: `touch_resident(addr, 1)` is
        # exactly one `access(addr, False)` hit, so a resident fetch
        # can skip the full fetch path; misses fall through to it.
        l1i_touch = [bank.touch_resident for bank in memory.l1i]
        l1i_hit_tally = 0
        heappush = heapq.heappush
        heappop = heapq.heappop
        load = OpKind.LOAD
        store = OpKind.STORE
        branch = OpKind.BRANCH

        kinds = [op.kind for op in trace]
        mem_flags = [op.is_memory for op in trace]

        # Per-op scoreboard, indexed by op_id (== trace position).
        slice_of = [0] * total
        fetched_at = [-1] * total  # -1: not fetched yet
        complete = [-1] * total  # -1: not issued yet
        committed = bytearray(total)
        issued = bytearray(total)
        queued = bytearray(total)  # currently in a ready_now heap
        waiting = [0] * total  # producers with unknown completion
        ready_time = [0] * total
        producers: List[Tuple[int, ...]] = [()] * total

        wake_on_complete: Dict[int, List[int]] = {}
        wake_on_commit: Dict[int, List[int]] = {}

        ready_now: List[List[int]] = [[] for _ in range(num_slices)]
        future: List[List[Tuple[int, int]]] = [[] for _ in range(num_slices)]
        mshr: List[List[int]] = [[] for _ in range(num_slices)]

        last_writer: Dict[int, int] = {}
        rob_occupancy = [0] * num_slices
        window_occupancy = [0] * num_slices

        # Counter events accumulate in plain ints and land in the
        # PerformanceCounters in one bulk increment per kind at the
        # end — the counters only ever add, so the final state is
        # identical to the reference's per-event increments.
        l2_accesses_n = [0] * num_slices
        l2_misses_n = [0] * num_slices
        l1_misses_n = [0] * num_slices
        branches_n = [0] * num_slices
        branch_mispredicts_n = [0] * num_slices
        committed_n = [0] * num_slices

        fetch_index = 0
        commit_index = 0
        fetch_stalled_until = 0
        mispredicts = 0
        cycle = 0
        max_cycles = 1000 * total + 100_000  # runaway guard
        no_event = max_cycles + 2  # sentinel: no candidate event
        # Per-Slice "why is ready work still pending" marker, refreshed
        # each processed cycle: 0 (none), cycle + 1 (a unit was busy),
        # or an MSHR release time (every leftover is a stuck load).
        ready_events = [0] * num_slices

        def resolve_ready(consumer: int) -> None:
            """All producers known: queue the op at its ready cycle."""
            ready_at = fetched_at[consumer]
            consumer_slice = slice_of[consumer]
            prods = producers[consumer]
            if prods:
                for producer_id in prods:
                    if committed[producer_id]:
                        continue  # already committed & drained
                    delay = (
                        0 if slice_of[producer_id] == consumer_slice
                        else operand_hops
                    )
                    arrival = complete[producer_id] + delay
                    if delay >= 2:
                        # Committing the producer drops its constraint
                        # from the reference scan one cycle later; only
                        # a >= 2 hop delay can make that earlier than
                        # ``arrival``.
                        wake_on_commit.setdefault(producer_id, []).append(
                            consumer
                        )
                    if arrival > ready_at:
                        ready_at = arrival
            ready_time[consumer] = ready_at
            if ready_at <= cycle:
                queued[consumer] = 1
                heappush(ready_now[consumer_slice], consumer)
            else:
                heappush(future[consumer_slice], (ready_at, consumer))

        while True:
            cycle += 1
            if cycle > max_cycles:  # pragma: no cover - defensive
                raise RuntimeError("pipeline failed to make progress")

            for slice_mshr in mshr:
                while slice_mshr and slice_mshr[0] <= cycle:
                    heappop(slice_mshr)

            # ---- fetch & rename ------------------------------------
            fetch_blocked_capacity = False
            if cycle >= fetch_stalled_until:
                budget = fetch_budget_max
                while budget > 0 and fetch_index < total:
                    op = trace[fetch_index]
                    code_address = op.code_address
                    if code_address is not None:
                        target = fetch_index % num_slices
                        if l1i_touch[target](code_address, 1):
                            l1i_hit_tally += 1
                        else:
                            fetch_result = memory.fetch(target, code_address)
                            if fetch_result.level != "l1":
                                fetch_stalled_until = (
                                    cycle + fetch_result.cycles
                                )
                                break
                    prods = tuple(
                        last_writer[reg]
                        for reg in op.sources
                        if reg in last_writer
                    )
                    # Steering: first in-flight producer's Slice if
                    # uncongested, else the least-loaded Slice (first
                    # minimum of (window, rob) occupancy — the order
                    # ``min(range(...))`` resolves ties in).
                    slice_id = -1
                    for producer_id in prods:
                        if not committed[producer_id]:
                            candidate = slice_of[producer_id]
                            if (
                                rob_occupancy[candidate] < rob_cap
                                and window_occupancy[candidate] < steer_cap
                            ):
                                slice_id = candidate
                            break
                    if slice_id < 0:
                        slice_id = 0
                        best_window = window_occupancy[0]
                        best_rob = rob_occupancy[0]
                        for candidate in range(1, num_slices):
                            cand_window = window_occupancy[candidate]
                            if cand_window > best_window:
                                continue
                            cand_rob = rob_occupancy[candidate]
                            if cand_window < best_window or (
                                cand_rob < best_rob
                            ):
                                slice_id = candidate
                                best_window = cand_window
                                best_rob = cand_rob
                    if (
                        rob_occupancy[slice_id] >= rob_cap
                        or window_occupancy[slice_id] >= window_cap
                    ):
                        fetch_blocked_capacity = True
                        break
                    op_index = fetch_index
                    slice_of[op_index] = slice_id
                    fetched_at[op_index] = cycle
                    producers[op_index] = prods
                    pending = 0
                    for producer_id in prods:
                        if (
                            not committed[producer_id]
                            and complete[producer_id] < 0
                        ):
                            pending += 1
                            wake_on_complete.setdefault(
                                producer_id, []
                            ).append(op_index)
                    waiting[op_index] = pending
                    if op.dest is not None:
                        last_writer[op.dest] = op_index
                    rob_occupancy[slice_id] += 1
                    window_occupancy[slice_id] += 1
                    fetch_index += 1
                    budget -= 1
                    if pending == 0:
                        resolve_ready(op_index)
                    if (
                        not dynamic
                        and kinds[op_index] is branch
                        and op.mispredicted
                    ):
                        fetch_stalled_until = cycle + 10**9
                        break

            # ---- issue & execute -----------------------------------
            activity = False
            for slice_id in range(num_slices):
                matured = future[slice_id]
                heap = ready_now[slice_id]
                while matured and matured[0][0] <= cycle:
                    _, op_index = heappop(matured)
                    if issued[op_index] or queued[op_index]:
                        continue  # superseded by an earlier wakeup
                    queued[op_index] = 1
                    heappush(heap, op_index)
                if not heap:
                    ready_events[slice_id] = 0
                    continue
                alu_free = True
                lsu_free = True
                blocked_resource = False
                blocked_mshr = False
                stash: List[int] = []
                slice_mshr = mshr[slice_id]
                while heap:
                    if not alu_free and not lsu_free:
                        break
                    op_index = heappop(heap)
                    op = trace[op_index]
                    if mem_flags[op_index]:
                        if not lsu_free:
                            stash.append(op_index)
                            blocked_resource = True
                            continue
                        kind = kinds[op_index]
                        if kind is load and len(slice_mshr) >= max_loads:
                            stash.append(op_index)
                            blocked_mshr = True
                            continue
                        result = memory.access(
                            slice_id, op.address, kind is store
                        )
                        done = cycle + result.cycles
                        complete[op_index] = done
                        if kind is load:
                            heappush(slice_mshr, done)
                        l2_accesses_n[slice_id] += 1
                        if result.level == "memory":
                            l2_misses_n[slice_id] += 1
                        if result.level != "l1":
                            l1_misses_n[slice_id] += 1
                        lsu_free = False
                    else:
                        if not alu_free:
                            stash.append(op_index)
                            blocked_resource = True
                            continue
                        complete[op_index] = cycle + 1
                        alu_free = False
                        if kinds[op_index] is branch:
                            branches_n[slice_id] += 1
                            if dynamic and op.taken is not None:
                                redirect = front_end.resolve(
                                    op.code_address or 0,
                                    op.taken,
                                    op.branch_target or 0,
                                )
                            else:
                                redirect = op.mispredicted
                            if redirect:
                                mispredicts += 1
                                branch_mispredicts_n[slice_id] += 1
                                fetch_stalled_until = (
                                    cycle + 1 + _FRONT_END_DEPTH
                                )
                    issued[op_index] = 1
                    queued[op_index] = 0
                    activity = True
                    window_occupancy[slice_id] -= 1
                    watchers = wake_on_complete.pop(op_index, None)
                    if watchers:
                        for consumer in watchers:
                            remaining = waiting[consumer] - 1
                            waiting[consumer] = remaining
                            if remaining == 0:
                                resolve_ready(consumer)
                for op_index in stash:
                    heappush(heap, op_index)
                if heap:
                    if blocked_mshr and not blocked_resource and len(
                        stash
                    ) == len(heap):
                        # Every leftover is a load stuck on full MSHRs:
                        # nothing can issue before the next release.
                        ready_events[slice_id] = slice_mshr[0]
                    else:
                        ready_events[slice_id] = cycle + 1
                else:
                    ready_events[slice_id] = 0

            # ---- commit --------------------------------------------
            commit_budget = commit_budget_max
            while commit_budget > 0 and commit_index < total:
                op_index = commit_index
                if fetched_at[op_index] < 0:
                    break
                done = complete[op_index]
                if done < 0 or done > cycle:
                    break
                committed[op_index] = 1
                slice_id = slice_of[op_index]
                rob_occupancy[slice_id] -= 1
                committed_n[slice_id] += 1
                commit_index += 1
                commit_budget -= 1
                activity = True
                watchers = wake_on_commit.pop(op_index, None)
                if watchers:
                    for consumer in watchers:
                        if (
                            issued[consumer]
                            or queued[consumer]
                            or waiting[consumer]
                        ):
                            continue
                        previous = ready_time[consumer]
                        if previous <= cycle + 1:
                            continue
                        consumer_slice = slice_of[consumer]
                        relaxed = fetched_at[consumer]
                        if cycle + 1 > relaxed:
                            relaxed = cycle + 1
                        for producer_id in producers[consumer]:
                            if committed[producer_id]:
                                continue
                            delay = (
                                0
                                if slice_of[producer_id] == consumer_slice
                                else operand_hops
                            )
                            arrival = complete[producer_id] + delay
                            if arrival > relaxed:
                                relaxed = arrival
                        if relaxed < previous:
                            ready_time[consumer] = relaxed
                            heappush(
                                future[consumer_slice], (relaxed, consumer)
                            )

            if commit_index >= total:
                break

            # ---- next event & cycle skip ---------------------------
            earliest = no_event
            if fetch_index < total:
                if fetch_stalled_until > cycle:
                    if fetch_stalled_until < earliest:
                        earliest = fetch_stalled_until
                elif not fetch_blocked_capacity or activity:
                    # A capacity-blocked front end can only move again
                    # after occupancies change; any issue or commit this
                    # cycle may have unblocked (or re-steered) it.
                    earliest = cycle + 1
            for slice_id in range(num_slices):
                event = ready_events[slice_id]
                if event and event < earliest:
                    earliest = event
                matured = future[slice_id]
                if matured and matured[0][0] < earliest:
                    earliest = matured[0][0]
            if fetched_at[commit_index] >= 0:
                done = complete[commit_index]
                if done >= 0:
                    event = done if done > cycle else cycle + 1
                    if event < earliest:
                        earliest = event
            if earliest >= no_event or earliest <= cycle + 1:
                continue
            skipped = earliest - 1 - cycle
            if (
                fetch_index < total
                and fetch_stalled_until <= cycle
                and fetch_blocked_capacity
            ):
                # The reference re-attempts fetch on every skipped
                # cycle: the capacity-blocked head op re-hits the L1I
                # each time.  Replay those hits in bulk.
                code_address = trace[fetch_index].code_address
                if code_address is not None:
                    target = fetch_index % num_slices
                    if not memory.refetch_resident(
                        target, code_address, skipped
                    ):  # pragma: no cover - line is resident by construction
                        for _ in range(skipped):
                            memory.fetch(target, code_address)
            cycle = earliest - 1

        memory.l1i_hits += l1i_hit_tally
        # Counter events were tallied in plain ints; one bulk add per
        # (Slice, kind) lands the exact per-event totals, and the bulk
        # CYCLES add covers skipped cycles too.
        for slice_id in range(num_slices):
            slice_counters = counters[slice_id]
            slice_counters.increment(CounterKind.CYCLES, cycle)
            for kind_key, tally in (
                (CounterKind.INSTRUCTIONS_COMMITTED, committed_n),
                (CounterKind.L2_ACCESSES, l2_accesses_n),
                (CounterKind.L2_MISSES, l2_misses_n),
                (CounterKind.L1_MISSES, l1_misses_n),
                (CounterKind.BRANCHES, branches_n),
                (CounterKind.BRANCH_MISPREDICTS, branch_mispredicts_n),
            ):
                if tally[slice_id]:
                    slice_counters.increment(kind_key, tally[slice_id])

        stats = self.memory.stats()
        return PipelineResult(
            cycles=cycle,
            instructions=total,
            config=self.config,
            l1_hits=stats["l1_hits"],
            l2_hits=stats["l2_hits"],
            l2_misses=stats["l2_misses"],
            mispredicts=mispredicts,
            l1i_misses=stats["l1i_misses"],
        )

    def drain_cycles(self, trace: Sequence[MicroOp]) -> int:
        """Cycles to drain the pipeline once fetch stops (a pipeline
        flush — the cost of Slice expansion, Section VI-A).

        Measured as the tail latency after the last fetch: run the
        trace, then report the front-end depth plus the residual
        commit tail of a typical in-flight window.
        """
        result = self.run(trace)
        tail = min(
            self.slice_params.rob_size // (self.slice_params.commit_width * 4),
            result.cycles,
        )
        return _FRONT_END_DEPTH + tail
