"""Cycle-level multi-Slice out-of-order pipeline (the SSim cycle tier).

Models the composed virtual core of Fig. 4 at cycle granularity with
the Table I resources per Slice:

* **fetch** — 2 instructions/cycle/Slice, steered round-robin across
  the Slices of the virtual core (distributed fetch);
* **rename** — global logical registers; each op records its producer
  ops, and cross-Slice operands pay the Scalar Operand Network hop
  latency;
* **issue** — per-Slice issue window (32), out-of-order, one ALU-class
  and one memory-class op per Slice per cycle (1 ALU + 1 LSU);
* **memory** — per-Slice L1D over the bank-hashed L2 with
  distance-dependent hit delays, at most 8 in-flight loads per Slice;
* **commit** — program order, 2/cycle/Slice, per-Slice ROB of 64;
* **branches** — a mispredict stalls fetch until the branch resolves
  plus the front-end redirect penalty.

This is deliberately a simplified out-of-order model — enough to
demonstrate the CASH mechanisms (composition scaling, distance-priced
cache, reconfiguration stalls) at cycle fidelity and to sanity-check
the fast analytic tier, not a validated microarchitectural twin.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.counters import CounterKind, PerformanceCounters
from repro.arch.params import CacheParams, SliceParams
from repro.arch.params import DEFAULT_CACHE_PARAMS, DEFAULT_SLICE_PARAMS
from repro.arch.vcore import VCoreConfig
from repro.sim.isa import MicroOp, OpKind
from repro.sim.branch import FrontEndPredictor
from repro.sim.memsys import MemorySystem

_FRONT_END_DEPTH = 7
"""Fetch/decode/rename depth: the redirect penalty after a mispredict
and the fixed part of a reconfiguration pipeline flush."""


@dataclass
class _InFlightOp:
    op: MicroOp
    slice_id: int
    producers: Tuple[int, ...]  # op_ids this op waits on
    fetched_at: int
    issued: bool = False
    complete_at: Optional[int] = None
    committed: bool = False


@dataclass(frozen=True)
class PipelineResult:
    """Outcome of running a trace on the cycle tier."""

    cycles: int
    instructions: int
    config: VCoreConfig
    l1_hits: int
    l2_hits: int
    l2_misses: int
    mispredicts: int
    l1i_misses: int = 0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


class MultiSlicePipeline:
    """A virtual core executing one micro-op trace."""

    def __init__(
        self,
        config: VCoreConfig,
        slice_params: SliceParams = DEFAULT_SLICE_PARAMS,
        cache_params: CacheParams = DEFAULT_CACHE_PARAMS,
        dynamic_branches: bool = False,
    ) -> None:
        self.config = config
        self.slice_params = slice_params
        self.cache_params = cache_params
        self.memory = MemorySystem(config, cache_params, slice_params)
        self.dynamic_branches = dynamic_branches
        self.front_end = FrontEndPredictor() if dynamic_branches else None
        self.counters = [
            PerformanceCounters(slice_id) for slice_id in range(config.slices)
        ]
        # Cross-Slice operand forwarding cost.  The Scalar Operand
        # Network is a fast switched interconnect (Section III-A);
        # within the compact Slice groups the runtime allocates,
        # forwarding costs one network cycle, plus one more only for
        # the widest groups.
        if config.slices == 1:
            self._operand_hops = 0
        elif config.slices <= 4:
            self._operand_hops = 1
        else:
            self._operand_hops = 2

    def _operand_delay(self, producer_slice: int, consumer_slice: int) -> int:
        if producer_slice == consumer_slice:
            return 0
        return self._operand_hops

    def run(self, trace: Sequence[MicroOp]) -> PipelineResult:
        """Execute the trace to completion; returns cycle-level results."""
        if not trace:
            raise ValueError("cannot run an empty trace")
        code = []
        seen = set()
        for op in trace:
            if op.code_address is not None and op.code_address not in seen:
                seen.add(op.code_address)
                code.append(op.code_address)
        if code:
            self.memory.prewarm_code(code)
        params = self.slice_params
        num_slices = self.config.slices
        window_cap = params.issue_window
        rob_cap = params.rob_size

        in_flight: Dict[int, _InFlightOp] = {}
        last_writer: Dict[int, int] = {}  # global reg -> op_id (rename view)
        rob_occupancy = [0] * num_slices
        window_occupancy = [0] * num_slices
        # Outstanding-load (MSHR) slots are freed when the load's data
        # returns, not at commit — freeing at commit would deadlock: a
        # younger issued load can hold a slot while an older load,
        # still waiting for it, blocks the commit head.
        load_release: List[List[int]] = [[] for _ in range(num_slices)]

        fetch_index = 0
        commit_index = 0
        fetch_stalled_until = 0
        mispredicts = 0
        cycle = 0
        total = len(trace)
        max_cycles = 1000 * total + 100_000  # runaway guard

        while commit_index < total:
            cycle += 1
            if cycle > max_cycles:  # pragma: no cover - defensive
                raise RuntimeError("pipeline failed to make progress")

            for slice_loads in load_release:
                slice_loads[:] = [t for t in slice_loads if t > cycle]

            # ---- fetch & rename ------------------------------------
            if cycle >= fetch_stalled_until:
                budget = params.fetch_width * num_slices
                while budget > 0 and fetch_index < total:
                    op = trace[fetch_index]
                    if op.code_address is not None:
                        target = fetch_index % num_slices
                        fetch_result = self.memory.fetch(
                            target, op.code_address
                        )
                        if fetch_result.level != "l1":
                            # Instruction miss: the front end stalls
                            # until the line arrives (it is installed
                            # by this access, so the retry hits).
                            fetch_stalled_until = (
                                cycle + fetch_result.cycles
                            )
                            break
                    producers = tuple(
                        last_writer[reg]
                        for reg in op.sources
                        if reg in last_writer
                    )
                    # Dependence-aware steering with load balance:
                    # place an op with its first in-flight producer
                    # (keeping dependence chains local to avoid
                    # operand-network hops) unless that Slice is
                    # congested, in which case the least-loaded Slice
                    # takes it — independent chains then spread across
                    # the virtual core.
                    slice_id = None
                    for producer_id in producers:
                        producer = in_flight.get(producer_id)
                        if producer is not None:
                            candidate = producer.slice_id
                            if (
                                rob_occupancy[candidate] < rob_cap
                                and window_occupancy[candidate]
                                < max(window_cap // 4, 2)
                            ):
                                slice_id = candidate
                            break
                    if slice_id is None:
                        slice_id = min(
                            range(num_slices),
                            key=lambda s: (
                                window_occupancy[s],
                                rob_occupancy[s],
                            ),
                        )
                    if (
                        rob_occupancy[slice_id] >= rob_cap
                        or window_occupancy[slice_id] >= window_cap
                    ):
                        break
                    in_flight[op.op_id] = _InFlightOp(
                        op=op,
                        slice_id=slice_id,
                        producers=producers,
                        fetched_at=cycle,
                    )
                    if op.dest is not None:
                        last_writer[op.dest] = op.op_id
                    rob_occupancy[slice_id] += 1
                    window_occupancy[slice_id] += 1
                    fetch_index += 1
                    budget -= 1
                    if (
                        not self.dynamic_branches
                        and op.kind is OpKind.BRANCH
                        and op.mispredicted
                    ):
                        # Scripted mode: stop fetching down the wrong
                        # path; resume a redirect-delay after the
                        # branch resolves.
                        fetch_stalled_until = cycle + 10**9
                        break

            # ---- issue & execute -----------------------------------
            for slice_id in range(num_slices):
                alu_free = True
                lsu_free = True
                for entry in sorted(
                    (
                        e
                        for e in in_flight.values()
                        if e.slice_id == slice_id and not e.issued
                    ),
                    key=lambda e: e.op.op_id,
                ):
                    if not alu_free and not lsu_free:
                        break
                    ready = True
                    ready_at = entry.fetched_at
                    for producer_id in entry.producers:
                        producer = in_flight.get(producer_id)
                        if producer is None:
                            continue  # already committed & drained
                        if producer.complete_at is None:
                            ready = False
                            break
                        arrival = producer.complete_at + self._operand_delay(
                            producer.slice_id, entry.slice_id
                        )
                        ready_at = max(ready_at, arrival)
                    if not ready or ready_at > cycle:
                        continue
                    op = entry.op
                    if op.is_memory:
                        if not lsu_free:
                            continue
                        if (
                            op.kind is OpKind.LOAD
                            and len(load_release[slice_id])
                            >= params.max_inflight_loads
                        ):
                            continue
                        result = self.memory.access(
                            slice_id, op.address, op.kind is OpKind.STORE
                        )
                        entry.complete_at = cycle + result.cycles
                        if op.kind is OpKind.LOAD:
                            load_release[slice_id].append(entry.complete_at)
                        self.counters[slice_id].increment(CounterKind.L2_ACCESSES)
                        if result.level == "memory":
                            self.counters[slice_id].increment(
                                CounterKind.L2_MISSES
                            )
                        if result.level != "l1":
                            self.counters[slice_id].increment(
                                CounterKind.L1_MISSES
                            )
                        lsu_free = False
                    else:
                        if not alu_free:
                            continue
                        entry.complete_at = cycle + 1
                        alu_free = False
                        if op.kind is OpKind.BRANCH:
                            self.counters[slice_id].increment(
                                CounterKind.BRANCHES
                            )
                            if (
                                self.dynamic_branches
                                and op.taken is not None
                            ):
                                redirect = self.front_end.resolve(
                                    op.code_address or 0,
                                    op.taken,
                                    op.branch_target or 0,
                                )
                            else:
                                redirect = op.mispredicted
                            if redirect:
                                mispredicts += 1
                                self.counters[slice_id].increment(
                                    CounterKind.BRANCH_MISPREDICTS
                                )
                                fetch_stalled_until = (
                                    cycle + 1 + _FRONT_END_DEPTH
                                )
                    entry.issued = True
                    window_occupancy[slice_id] -= 1

            # ---- commit --------------------------------------------
            commit_budget = params.commit_width * num_slices
            while commit_budget > 0 and commit_index < total:
                entry = in_flight.get(commit_index)
                if (
                    entry is None
                    or entry.complete_at is None
                    or entry.complete_at > cycle
                ):
                    break
                entry.committed = True
                rob_occupancy[entry.slice_id] -= 1
                self.counters[entry.slice_id].increment(
                    CounterKind.INSTRUCTIONS_COMMITTED
                )
                del in_flight[commit_index]
                commit_index += 1
                commit_budget -= 1

            for slice_counters in self.counters:
                slice_counters.increment(CounterKind.CYCLES)

        stats = self.memory.stats()
        return PipelineResult(
            cycles=cycle,
            instructions=total,
            config=self.config,
            l1_hits=stats["l1_hits"],
            l2_hits=stats["l2_hits"],
            l2_misses=stats["l2_misses"],
            mispredicts=mispredicts,
            l1i_misses=stats["l1i_misses"],
        )

    def drain_cycles(self, trace: Sequence[MicroOp]) -> int:
        """Cycles to drain the pipeline once fetch stops (a pipeline
        flush — the cost of Slice expansion, Section VI-A).

        Measured as the tail latency after the last fetch: run the
        trace, then report the front-end depth plus the residual
        commit tail of a typical in-flight window.
        """
        result = self.run(trace)
        tail = min(
            self.slice_params.rob_size // (self.slice_params.commit_width * 4),
            result.cycles,
        )
        return _FRONT_END_DEPTH + tail
