"""Minimal cycle/event simulation core.

The cycle tier's pipeline is self-clocked, but cross-component
experiments (runtime Slice querying counters over the interface network
while client virtual cores execute) need a shared notion of time.  This
module provides it: a :class:`SimulationClock` that steps registered
:class:`Clocked` components cycle by cycle and a deadline-ordered event
queue for one-shot callbacks.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Protocol


class Clocked(Protocol):
    """A component advanced once per cycle."""

    def tick(self, cycle: int) -> None:
        """Advance to ``cycle``."""


@dataclass(order=True)
class _Event:
    fire_at: int
    sequence: int
    action: Callable[[int], None] = field(compare=False)


class SimulationClock:
    """Steps components and fires scheduled events in cycle order."""

    def __init__(self) -> None:
        self._cycle = 0
        self._components: List[Clocked] = []
        self._events: List[_Event] = []
        self._sequence = 0

    @property
    def now(self) -> int:
        return self._cycle

    def register(self, component: Clocked) -> None:
        self._components.append(component)

    def schedule(self, delay: int, action: Callable[[int], None]) -> None:
        """Run ``action(cycle)`` after ``delay`` cycles."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self._sequence += 1
        heapq.heappush(
            self._events,
            _Event(fire_at=self._cycle + delay, sequence=self._sequence,
                   action=action),
        )

    def step(self, cycles: int = 1) -> int:
        """Advance the clock; returns the new cycle count."""
        if cycles <= 0:
            raise ValueError(f"cycles must be positive, got {cycles}")
        for _ in range(cycles):
            self._cycle += 1
            while self._events and self._events[0].fire_at <= self._cycle:
                event = heapq.heappop(self._events)
                event.action(self._cycle)
            for component in self._components:
                component.tick(self._cycle)
        return self._cycle

    def run_until(self, predicate: Callable[[], bool], limit: int = 10**7) -> int:
        """Step until ``predicate()`` is true; returns the cycle."""
        steps = 0
        while not predicate():
            self.step()
            steps += 1
            if steps > limit:
                raise RuntimeError(
                    f"predicate not satisfied within {limit} cycles"
                )
        return self._cycle
