"""Analytic phase-level performance model (the fast SSim tier).

Predicts the IPC of a phase on a virtual core from first-order
microarchitectural balance, using exactly the latency parameters of
Tables I and II:

* **Compute**: the multi-Slice peak IPC follows a saturating scaling
  law toward the phase's intrinsic ILP, discounted by cross-Slice
  operand-forwarding cost that grows with the spatial extent of the
  Slice group (Section III-A: operand communication cost is why the
  runtime groups adjacent Slices).
* **Memory**: L1-miss traffic pays the distance-dependent L2 hit delay
  (``distance * 2 + 4``), and the un-captured remainder pays the 100
  cycle memory delay, divided by the memory-level parallelism the
  out-of-order window sustains (more Slices → more LSQ/ROB entries →
  more outstanding misses).

Because a bigger L2 is further away on average, the model reproduces the
paper's central tension: cache growth trades miss rate against hit
latency, producing the non-convex IPC surfaces of Fig. 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.arch.cache import mean_l2_hit_delay, mean_l2_hit_delay_array
from repro.arch.params import CacheParams, SliceParams
from repro.arch.params import DEFAULT_CACHE_PARAMS, DEFAULT_SLICE_PARAMS
from repro.arch.vcore import ConfigurationSpace, VCoreConfig, DEFAULT_CONFIG_SPACE
from repro.workloads.phase import Phase


def slice_extent(num_slices: int) -> float:
    """Mean operand-forwarding distance among ``num_slices`` Slices.

    Zero for a single Slice; grows with the radius of the Slice group
    (~``0.66 * sqrt(n)`` for a compact region), matching the fabric
    distance model in :mod:`repro.arch.cache`.
    """
    if num_slices <= 0:
        raise ValueError(f"num_slices must be positive, got {num_slices}")
    if num_slices == 1:
        return 0.0
    return 0.66 * (math.sqrt(num_slices) - 1.0) + 0.34


@dataclass(frozen=True)
class PerformanceModel:
    """IPC(phase, configuration) under Table I/II parameters."""

    slice_params: SliceParams = DEFAULT_SLICE_PARAMS
    cache_params: CacheParams = DEFAULT_CACHE_PARAMS

    def peak_ipc(self, phase: Phase, num_slices: int) -> float:
        """Compute-side IPC ceiling for ``num_slices`` Slices."""
        ilp = phase.ilp
        n = num_slices
        saturating = ilp * n / (n + ilp - 1.0)
        penalty = 1.0 + phase.comm_penalty * slice_extent(n)
        fetch_bound = n * self.slice_params.fetch_width
        return min(saturating / penalty, fetch_bound)

    def memory_cpi(self, phase: Phase, config: VCoreConfig) -> float:
        """Average memory-stall cycles per instruction."""
        refs = phase.mem_refs_per_inst
        l1_miss = phase.l1_miss_rate
        # Sentinel: phases with literally zero traffic pay zero memory
        # CPI; rates are exact trace-derived constants, never computed.
        if refs == 0.0 or l1_miss == 0.0:  # lint: allow(float-eq)
            return 0.0
        hit_fraction = phase.l2_hit_fraction(config.l2_kb)
        l2_delay = mean_l2_hit_delay(
            config.l2_banks, config.slices, self.cache_params
        )
        # Every L1 miss reaches L2 (hit or miss determines whether the
        # memory delay is added on top of the L2 lookup).
        average_miss_cost = l2_delay + (1.0 - hit_fraction) * (
            self.slice_params.memory_delay
        )
        mlp = self.effective_mlp(phase, config.slices)
        return refs * l1_miss * average_miss_cost / mlp

    def effective_mlp(self, phase: Phase, num_slices: int) -> float:
        """Outstanding-miss parallelism available to the virtual core."""
        ceiling = num_slices * self.slice_params.max_inflight_loads
        return min(phase.mlp * math.sqrt(num_slices), float(ceiling))

    def ipc(self, phase: Phase, config: VCoreConfig) -> float:
        """Predicted instructions per clock for ``phase`` on ``config``."""
        compute_cpi = 1.0 / self.peak_ipc(phase, config.slices)
        return 1.0 / (compute_cpi + self.memory_cpi(phase, config))

    def cycles_for(
        self, phase: Phase, config: VCoreConfig, instructions: float
    ) -> float:
        """Cycles to retire ``instructions`` of ``phase`` on ``config``."""
        if instructions < 0:
            raise ValueError(
                f"instructions must be non-negative, got {instructions}"
            )
        return instructions / self.ipc(phase, config)

    def ipc_grid(
        self,
        phase: Phase,
        space: ConfigurationSpace = DEFAULT_CONFIG_SPACE,
    ) -> np.ndarray:
        """IPC over the whole configuration grid, in one NumPy shot.

        Returns an array of shape ``(len(slice_counts), len(l2_sizes))``
        — rows are Slice counts, columns are L2 sizes — matching the
        axes of the Fig. 1 contour plots.

        Every arithmetic step mirrors the scalar :meth:`ipc` in operand
        order, so each grid cell is bit-identical to the per-config
        scalar evaluation (a property test enforces this).
        """
        slices = np.array(space.slice_counts, dtype=float)[:, np.newaxis]
        l2_kb = np.array(space.l2_sizes_kb, dtype=int)[np.newaxis, :]
        ilp = phase.ilp

        # Compute side (peak_ipc, vectorized over the Slice axis).
        saturating = ilp * slices / (slices + ilp - 1.0)
        extent = np.where(
            # Sentinel: slice counts are small integers stored as
            # floats, so == 1.0 is exact (single Slice = no fabric).
            slices == 1.0, 0.0, 0.66 * (np.sqrt(slices) - 1.0) + 0.34  # lint: allow(float-eq)
        )
        penalty = 1.0 + phase.comm_penalty * extent
        fetch_bound = slices * self.slice_params.fetch_width
        peak = np.minimum(saturating / penalty, fetch_bound)
        compute_cpi = 1.0 / peak

        # Memory side (memory_cpi, vectorized over the full grid).
        traffic = phase.mem_refs_per_inst
        l1_miss = phase.l1_miss_rate
        # Sentinel: same zero-traffic guard as the scalar memory_cpi —
        # the twins must take this branch on identical inputs.
        if traffic == 0.0 or l1_miss == 0.0:  # lint: allow(float-eq)
            memory_cpi = 0.0
        else:
            banks = l2_kb // self.cache_params.l2_bank.size_kb
            hit_fraction = phase.l2_hit_fraction_array(l2_kb)
            l2_delay = mean_l2_hit_delay_array(
                banks, slices, self.cache_params
            )
            average_miss_cost = l2_delay + (1.0 - hit_fraction) * (
                self.slice_params.memory_delay
            )
            mlp = np.minimum(
                phase.mlp * np.sqrt(slices),
                slices * self.slice_params.max_inflight_loads,
            )
            memory_cpi = traffic * l1_miss * average_miss_cost / mlp

        return 1.0 / (compute_cpi + memory_cpi)

    def best_config(
        self,
        phase: Phase,
        space: ConfigurationSpace = DEFAULT_CONFIG_SPACE,
    ) -> Tuple[VCoreConfig, float]:
        """Highest-IPC configuration for ``phase``.

        Grid argmax; ties resolve to the first configuration in space
        order, exactly as the original scalar scan did.
        """
        grid = self.ipc_grid(phase, space)
        flat = grid.ravel()
        winner = int(np.argmax(flat))
        return space[winner], float(flat[winner])

    def local_maxima(
        self,
        phase: Phase,
        space: ConfigurationSpace = DEFAULT_CONFIG_SPACE,
        tolerance: float = 1e-9,
    ) -> List[VCoreConfig]:
        """Configurations whose IPC beats all grid neighbors."""
        grid = self.ipc_grid(phase, space)
        # Pad with -inf so edge cells compare against a neighbor that
        # can never win, mirroring the scalar "all existing neighbors"
        # semantics.
        padded = np.pad(grid, 1, constant_values=-np.inf)
        is_max = (
            (grid >= padded[:-2, 1:-1] - tolerance)
            & (grid >= padded[2:, 1:-1] - tolerance)
            & (grid >= padded[1:-1, :-2] - tolerance)
            & (grid >= padded[1:-1, 2:] - tolerance)
        )
        flat = is_max.ravel()
        return [space[i] for i in np.flatnonzero(flat)]


DEFAULT_PERF_MODEL = PerformanceModel()
