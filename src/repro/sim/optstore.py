"""Cross-process tiers of the operating-point store (L2 shm, L3 disk).

:mod:`repro.sim.optables` keeps the per-process sealed LRU (L1).  This
module supplies the two tiers underneath it:

**L2 — shared memory.**  A *store* is one index segment plus one data
segment per published table, all under a common name prefix.  The
parent process creates the store (:func:`create`) and pool workers
attach (:func:`attach`); each data segment holds a 64-byte header
(magic word, schema version, element count, payload sha256) followed by
the sealed ``speedup_array`` payload, and attached tables map their
ndarray straight onto that buffer — zero copies, read-only views.  The
index segment carries a per-process counter matrix (one single-writer
row per attached process, so fleet-wide tier statistics need no write
sharing) and a registry of published digests the owner unlinks at
:func:`destroy`.

**L3 — disk.**  One ``.npz`` per table under the
:func:`repro.cacheconf.cache_dir` root (off unless ``REPRO_CACHE_DIR``
or ``--cache-dir`` is set), named by content digest, written via
temp-file + atomic rename, checksum-verified on every load.  A
truncated or bit-flipped file is treated as a miss (counted under
``corrupt``) and rebuilt — the rebuild overwrites the bad entry, so
the cache self-heals.

**Locking discipline.**  Two locks, strictly ordered:

* ``_STORE_LOCK`` (per-process ``threading.Lock``) — *every* access to
  this module's globals sits inside it; it is the innermost lock and
  nothing else is acquired while holding it.
* ``_CREATE_LOCK`` (cross-process ``multiprocessing.Lock``, bound at
  create/attach; :func:`build_guard` falls back to a process-local
  lock when no store is active) — serializes table creation fleet-wide
  so exactly one process builds each (phase-key, grid) table.
  :func:`publish` must only be called while holding it.

Nothing here ever changes a result: every entry is keyed by
:func:`table_digest` (a sha256 over the full value-typed table
identity plus :data:`~repro.cacheconf.SCHEMA_VERSION`), payloads are
verified on attach/load, and any verification failure degrades to a
rebuild.
"""

from __future__ import annotations

import atexit
import hashlib
import os
import threading
from contextlib import AbstractContextManager
from dataclasses import dataclass
from multiprocessing import shared_memory, synchronize
from pathlib import Path
from typing import Dict, List, Optional, Tuple
from zipfile import BadZipFile

import numpy as np
import numpy.typing as npt

from repro import cacheconf
from repro.analysis import sanitize

#: Tier counters, one slot per name in each process's index-matrix row.
COUNTERS: Tuple[str, ...] = (
    "l1_hits",
    "l1_misses",
    "l2_hits",
    "l2_misses",
    "l3_hits",
    "l3_misses",
    "builds",
    "publishes",
    "disk_writes",
    "corrupt",
    "shm_bytes",
    "disk_read_bytes",
    "disk_write_bytes",
)

_COUNTER_SLOTS = 16  # row width in the index matrix (padded for growth)
_DIGEST_CHARS = 20  # hex chars of sha256 kept in names and the registry

_MAGIC = 0x43415348_4F505431  # "CASHOPT1"

# Index-segment word layout (int64 words).
_W_MAGIC = 0
_W_SCHEMA = 1
_W_NSLOTS = 2
_W_CAPACITY = 3
_W_NCLAIMED = 4
_W_NREGISTERED = 5
_HEADER_WORDS = 8

# Data-segment layout: 4 int64 words + 32 checksum bytes, then payload.
_SEG_MAGIC = 0
_SEG_SCHEMA = 1
_SEG_COUNT = 2
_SEG_HEADER_BYTES = 4 * 8 + 32

_OWNER_SITE = "repro.sim.optstore"


@dataclass(frozen=True)
class StoreHandle:
    """Everything a worker needs to attach: names plus the creation
    lock.  Travels through ``ProcessPoolExecutor`` initializer args
    (fork inherits it directly; spawn pickles the lock through the
    process channel, which multiprocessing supports)."""

    prefix: str
    index_name: str
    lock: synchronize.Lock


@dataclass(frozen=True)
class Payload:
    """One table surface as loaded from a shared tier.

    ``speedups`` is read-only float64; ``hull`` (disk tier only) is the
    stored default-idle envelope hull as an (H, 2) float64 array;
    ``checksum`` is the surface fingerprint — the sha256 hex of the
    speedups payload bytes, identical for the same surface whether it
    came from a fresh build, a shm attach, or a disk load.
    """

    speedups: npt.NDArray[np.float64]
    hull: Optional[npt.NDArray[np.float64]]
    source: str
    checksum: str


def table_digest(key: object, values: int) -> str:
    """Content digest of one table identity.

    ``key`` is the value-typed cache key (frozen dataclasses and
    tuples, whose ``repr`` is deterministic across processes and hash
    seeds); ``values`` the grid size.  The schema version participates
    so layout/semantics bumps invalidate every stale entry at once.
    """
    text = f"cash-optable|v{cacheconf.SCHEMA_VERSION}|n{values}|{key!r}"
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:_DIGEST_CHARS]


_STORE_LOCK = threading.Lock()
_FALLBACK_GUARD = threading.Lock()

_CREATE_LOCK: Optional[synchronize.Lock] = None
_HANDLE: Optional[StoreHandle] = None
_INDEX: Optional[object] = None  # SharedMemory index segment, if attached
_WORDS: Optional[npt.NDArray[np.int64]] = None
_MATRIX: Optional[npt.NDArray[np.int64]] = None
_REGISTRY: Optional[npt.NDArray[np.uint8]] = None
_COUNTS: npt.NDArray[np.int64] = np.zeros(_COUNTER_SLOTS, dtype=np.int64)
_SLOT: Optional[int] = None
_OWNER = False
_ATEXIT_ARMED = False
_PID = os.getpid()
_SEGMENTS: Dict[str, object] = {}  # digest -> attached SharedMemory
_VIEW_CACHE: Dict[str, npt.NDArray[np.float64]] = {}  # digest -> sealed view
_CHECKSUMS: Dict[str, str] = {}  # digest -> surface fingerprint


def _counter_index(name: str) -> int:
    return COUNTERS.index(name)


def _unregister_attached(shm: object) -> None:
    """Drop a segment from the resource tracker's cleanup list.

    Python 3.11 registers shared memory with the tracker on *attach*
    as well as on create; the store owner is the only process that may
    unlink, so every other registration must be withdrawn or the
    tracker double-unlinks (and warns) at interpreter shutdown.
    """
    from multiprocessing import resource_tracker

    try:
        resource_tracker.unregister(getattr(shm, "_name"), "shared_memory")
    except Exception:  # pragma: no cover - tracker variations
        pass


def _ensure_process_locked() -> None:
    """Reset per-process state after a fork (caller holds _STORE_LOCK).

    A forked worker inherits the parent's mappings (still valid) and
    its claimed counter row (NOT valid: single-writer).  Counters drop
    to a local scratch row until the worker attaches properly via the
    pool initializer and claims its own slot.
    """
    global _PID, _SLOT, _COUNTS
    if _PID != os.getpid():
        _PID = os.getpid()
        _SLOT = None
        _COUNTS = np.zeros(_COUNTER_SLOTS, dtype=np.int64)


class _Segment(shared_memory.SharedMemory):
    """A shared-memory block whose ``close`` tolerates live views.

    ``mmap.close`` refuses (``BufferError``) while exported buffers
    exist — i.e. while some sealed table still aliases the segment.
    Swallowing that refusal makes garbage collection self-protecting:
    a mapping unmaps exactly when the last view is gone, and is left
    alone (silently) while anything real still points into it.
    """

    def close(self) -> None:
        try:
            super().close()
        except BufferError:
            pass


def _shared_memory(name: str, create: bool = False, size: int = 0) -> object:
    if create:
        return _Segment(name=name, create=True, size=size)
    return _Segment(name=name)


def _index_views(
    shm: object, slots: int, capacity: int
) -> Tuple[
    npt.NDArray[np.int64], npt.NDArray[np.int64], npt.NDArray[np.uint8]
]:
    buf = getattr(shm, "buf")
    nwords = _HEADER_WORDS + slots * _COUNTER_SLOTS
    words = np.frombuffer(buf, dtype=np.int64, count=nwords)
    matrix = words[_HEADER_WORDS:].reshape(slots, _COUNTER_SLOTS)
    registry = np.frombuffer(
        buf,
        dtype=np.uint8,
        count=capacity * _DIGEST_CHARS,
        offset=nwords * 8,
    )
    return words, matrix, registry


def create(slots: int = 64, capacity: int = 512) -> StoreHandle:
    """Create a fresh store and attach this (owner) process to slot 0.

    ``slots`` bounds the number of attached processes with their own
    counter rows; ``capacity`` bounds the number of published shared
    tables (beyond it, publishes quietly skip the shm tier).  Raises
    ``OSError`` when the platform offers no usable shared memory.
    """
    import multiprocessing

    global _CREATE_LOCK, _HANDLE, _INDEX, _WORDS, _MATRIX, _REGISTRY
    global _COUNTS, _SLOT, _OWNER, _ATEXIT_ARMED
    destroy()
    prefix = f"cashopt-{os.getpid()}-"
    size = (_HEADER_WORDS + slots * _COUNTER_SLOTS) * 8
    size += capacity * _DIGEST_CHARS
    index = None
    for attempt in range(16):
        try:
            index = _shared_memory(
                f"{prefix}idx{attempt}", create=True, size=size
            )
            break
        except FileExistsError:
            continue
    if index is None:  # pragma: no cover - 16 stale same-pid stores
        raise OSError("could not allocate a store index segment")
    lock = multiprocessing.Lock()
    with _STORE_LOCK:
        _ensure_process_locked()
        words, matrix, registry = _index_views(index, slots, capacity)
        matrix[:] = 0
        words[_W_SCHEMA] = cacheconf.SCHEMA_VERSION
        words[_W_NSLOTS] = slots
        words[_W_CAPACITY] = capacity
        words[_W_NCLAIMED] = 1
        words[_W_NREGISTERED] = 0
        words[_W_MAGIC] = _MAGIC
        row = matrix[0]
        row[:] = _COUNTS
        _CREATE_LOCK = lock
        _HANDLE = StoreHandle(
            prefix=prefix, index_name=getattr(index, "name"), lock=lock
        )
        _INDEX = index
        _WORDS = words
        _MATRIX = matrix
        _REGISTRY = registry
        _COUNTS = row
        _SLOT = 0
        _OWNER = True
        if not _ATEXIT_ARMED:
            atexit.register(_atexit_destroy)
            _ATEXIT_ARMED = True
        handle = _HANDLE
    return handle


def attach(handle: StoreHandle) -> None:
    """Attach this process to an existing store and claim a counter row.

    Idempotent for a process already attached to the same store; a
    forked child re-claims its own row (the inherited one belongs to
    the parent).  Local counters accumulated before attaching carry
    over into the claimed row.
    """
    global _CREATE_LOCK, _HANDLE, _INDEX, _WORDS, _MATRIX, _REGISTRY
    global _COUNTS, _SLOT, _OWNER
    with _STORE_LOCK:
        _ensure_process_locked()
        already = (
            _HANDLE is not None
            and _HANDLE.index_name == handle.index_name
            and _SLOT is not None
        )
        if already:
            return
        if _INDEX is None or _HANDLE is None or (
            _HANDLE.index_name != handle.index_name
        ):
            index = _shared_memory(handle.index_name)
            _unregister_attached(index)
        else:
            index = _INDEX  # fork-inherited mapping: reuse it
        probe, _, _ = _index_views(index, 1, 0)
        if int(probe[_W_MAGIC]) != _MAGIC or (
            int(probe[_W_SCHEMA]) != cacheconf.SCHEMA_VERSION
        ):
            raise ValueError(
                f"store index {handle.index_name!r} has an unexpected "
                f"magic/schema header"
            )
        slots = int(probe[_W_NSLOTS])
        capacity = int(probe[_W_CAPACITY])
        words, matrix, registry = _index_views(index, slots, capacity)
        _CREATE_LOCK = handle.lock
        _HANDLE = handle
        _INDEX = index
        _WORDS = words
        _MATRIX = matrix
        _REGISTRY = registry
        _OWNER = False
        _SLOT = None
    with handle.lock:
        with _STORE_LOCK:
            claimed = int(words[_W_NCLAIMED])
            if claimed < slots:
                words[_W_NCLAIMED] = claimed + 1
                row = matrix[claimed]
                row[:] = _COUNTS
                _COUNTS = row
                _SLOT = claimed
            # else: slots exhausted — keep counting locally.


def detach() -> None:
    """Drop this process's store bindings (mappings stay valid for any
    live table views; nothing is closed or unlinked)."""
    global _CREATE_LOCK, _HANDLE, _INDEX, _WORDS, _MATRIX, _REGISTRY
    global _COUNTS, _SLOT, _OWNER
    with _STORE_LOCK:
        _ensure_process_locked()
        _COUNTS = np.array(_COUNTS, dtype=np.int64)  # detach from the row
        _CREATE_LOCK = None
        _HANDLE = None
        _INDEX = None
        _WORDS = None
        _MATRIX = None
        _REGISTRY = None
        _SLOT = None
        _OWNER = False
        _SEGMENTS.clear()
        _VIEW_CACHE.clear()
        _CHECKSUMS.clear()


def destroy() -> None:
    """Owner: unlink every store segment, then detach.  Non-owners
    just detach.  Safe to call repeatedly (and from atexit).

    Call :func:`repro.sim.optables.cache_clear` first if cached tables
    may still alias shared buffers — the mappings stay valid for live
    views, but dropping the tables releases the memory promptly.
    """
    with _STORE_LOCK:
        _ensure_process_locked()
        owner = _OWNER and _INDEX is not None
        prefix = _HANDLE.prefix if _HANDLE is not None else ""
        digests: List[str] = []
        if owner and _WORDS is not None and _REGISTRY is not None:
            registered = int(_WORDS[_W_NREGISTERED])
            for i in range(registered):
                raw = bytes(
                    _REGISTRY[i * _DIGEST_CHARS : (i + 1) * _DIGEST_CHARS]
                )
                digests.append(raw.decode("ascii", errors="replace"))
        index = _INDEX if owner else None
    if owner:
        for digest in digests:
            _unlink_quietly(f"{prefix}{digest}")
        if index is not None:
            try:
                getattr(index, "unlink")()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
    detach()


def _unlink_quietly(name: str) -> None:
    try:
        segment = _shared_memory(name)
    except FileNotFoundError:
        return
    except ValueError:  # pragma: no cover - raced a mid-create publish
        # Attach saw a zero-size segment (creator between shm_open and
        # ftruncate); the creator still holds it — leave it alone.
        return
    # unlink() below withdraws the attach-time tracker registration
    # itself, so no separate unregister here.
    try:
        getattr(segment, "unlink")()
    except FileNotFoundError:  # pragma: no cover - raced another unlink
        pass


def _atexit_destroy() -> None:  # pragma: no cover - interpreter exit
    try:
        destroy()
    except Exception:
        pass


def ensure(slots: int = 64, capacity: int = 512) -> Optional[StoreHandle]:
    """The active store's handle, creating one if none is active.

    Returns None when shared memory is unavailable on the platform —
    the caller degrades to L1 + disk.
    """
    with _STORE_LOCK:
        _ensure_process_locked()
        current = _HANDLE
    if current is not None:
        return current
    try:
        return create(slots=slots, capacity=capacity)
    except OSError:
        return None


def active() -> bool:
    """Whether this process is attached to a shared-memory store."""
    with _STORE_LOCK:
        _ensure_process_locked()
        return _INDEX is not None


def handle() -> Optional[StoreHandle]:
    """The active store's handle (to pass to workers), or None."""
    with _STORE_LOCK:
        _ensure_process_locked()
        return _HANDLE


def build_guard() -> AbstractContextManager[bool]:
    """The fleet-wide table-creation lock (or a process-local fallback
    when no store is attached).  Hold it around the re-check + build +
    :func:`publish` sequence so each table is built exactly once."""
    with _STORE_LOCK:
        _ensure_process_locked()
        guard = _CREATE_LOCK
    if guard is None:
        return _FALLBACK_GUARD
    return guard


def bump(name: str, amount: int = 1) -> None:
    """Add to one tier counter (this process's row, single-writer)."""
    index = _counter_index(name)
    with _STORE_LOCK:
        _ensure_process_locked()
        _COUNTS[index] += amount


def _segment_name_locked(digest: str) -> Optional[str]:
    if _HANDLE is None:
        return None
    return f"{_HANDLE.prefix}{digest}"


def _validate_segment_locked(
    shm: object, digest: str, values: int
) -> Optional[Tuple[npt.NDArray[np.float64], str]]:
    """Header + checksum verification of one data segment.

    Returns ``(sealed view, checksum hex)`` or None (counted as
    ``corrupt``; a sanitized run raises instead, mirroring the L1
    publish verification).
    """
    buf = getattr(shm, "buf")
    head = np.frombuffer(buf, dtype=np.int64, count=4)
    if int(head[_SEG_MAGIC]) == 0:
        # Zero magic is not damage: segments are created zero-filled
        # and the magic word is the commit flag written last, so a
        # lock-free reader racing an in-flight publish lands here.
        # Report a plain miss — the caller re-checks under the build
        # guard, where the committed table becomes visible.
        return None
    detail = None
    if int(head[_SEG_MAGIC]) != _MAGIC:
        detail = "bad magic word"
    elif int(head[_SEG_SCHEMA]) != cacheconf.SCHEMA_VERSION:
        detail = "schema version mismatch"
    elif int(head[_SEG_COUNT]) != values:
        detail = f"expected {values} values, found {int(head[_SEG_COUNT])}"
    if detail is None:
        stored = bytes(buf[32:64])
        view = np.frombuffer(
            buf, dtype=np.float64, count=values, offset=_SEG_HEADER_BYTES
        )
        actual = hashlib.sha256(view.tobytes()).digest()
        if actual != stored:
            detail = "payload checksum mismatch"
        else:
            view.setflags(write=False)
            return view, actual.hex()
    _COUNTS[_counter_index("corrupt")] += 1
    if sanitize.ENABLED:
        sanitize.violation(
            "shm-attach", _OWNER_SITE, f"attach {digest}", detail
        )
    return None


def _shm_lookup_locked(digest: str, values: int) -> Optional[Payload]:
    if _INDEX is None:
        return None
    view = _VIEW_CACHE.get(digest)
    if view is not None and view.shape[0] == values:
        _COUNTS[_counter_index("l2_hits")] += 1
        return Payload(
            speedups=view,
            hull=None,
            source="shm",
            checksum=_CHECKSUMS.get(digest, ""),
        )
    name = _segment_name_locked(digest)
    if name is None:
        return None
    try:
        segment = _shared_memory(name)
    except (FileNotFoundError, ValueError):
        # ValueError ("cannot mmap an empty file"): the publisher in
        # another process is between shm_open and ftruncate — the
        # segment exists but has no size yet.  A miss, never an error:
        # the disk/build tiers below produce bit-identical tables.
        _COUNTS[_counter_index("l2_misses")] += 1
        return None
    _unregister_attached(segment)
    validated = _validate_segment_locked(segment, digest, values)
    if validated is None:
        _COUNTS[_counter_index("l2_misses")] += 1
        return None
    view, checksum = validated
    view.setflags(write=False)
    _SEGMENTS[digest] = segment
    _VIEW_CACHE[digest] = view
    _CHECKSUMS[digest] = checksum
    _COUNTS[_counter_index("l2_hits")] += 1
    return Payload(speedups=view, hull=None, source="shm", checksum=checksum)


def _disk_path(root: Path, digest: str) -> Path:
    return root / f"{digest}.npz"


def _disk_lookup_locked(digest: str, values: int) -> Optional[Payload]:
    root = cacheconf.cache_dir()
    if root is None:
        return None
    path = _disk_path(root, digest)
    try:
        size = path.stat().st_size
        with np.load(path, allow_pickle=False) as data:
            if str(data["digest"][()]) != digest:
                raise ValueError("digest mismatch")
            if int(data["schema"][()]) != cacheconf.SCHEMA_VERSION:
                raise ValueError("schema mismatch")
            speedups = np.asarray(data["speedups"], dtype=np.float64)
            hull = None
            if "hull" in data.files:
                hull = np.asarray(data["hull"], dtype=np.float64)
            stored = str(data["checksum"][()])
        if speedups.shape != (values,):
            raise ValueError("shape mismatch")
        if hull is not None and (hull.ndim != 2 or hull.shape[1] != 2):
            raise ValueError("hull shape mismatch")
        actual = _payload_checksum(speedups, hull)
        if actual != stored:
            raise ValueError("payload checksum mismatch")
    except FileNotFoundError:
        _COUNTS[_counter_index("l3_misses")] += 1
        return None
    except (OSError, ValueError, KeyError, EOFError, BadZipFile):
        # Truncated/bit-flipped entry: a miss, never an error — the
        # rebuild overwrites it and the cache self-heals.
        _COUNTS[_counter_index("corrupt")] += 1
        _COUNTS[_counter_index("l3_misses")] += 1
        return None
    speedups.setflags(write=False)
    if hull is not None:
        hull.setflags(write=False)
    fingerprint = hashlib.sha256(speedups.tobytes()).hexdigest()
    _COUNTS[_counter_index("l3_hits")] += 1
    _COUNTS[_counter_index("disk_read_bytes")] += size
    return Payload(
        speedups=speedups, hull=hull, source="disk", checksum=fingerprint
    )


def _payload_checksum(
    speedups: npt.NDArray[np.float64],
    hull: Optional[npt.NDArray[np.float64]],
) -> str:
    digest = hashlib.sha256(speedups.tobytes())
    if hull is not None:
        digest.update(np.ascontiguousarray(hull).tobytes())
    return digest.hexdigest()


def lookup(digest: str, values: int) -> Optional[Payload]:
    """Consult L2 then L3 for one table surface.

    Pure lookup — no promotion, no writes — so it is safe both outside
    and (for the post-acquire re-check) inside :func:`build_guard`.
    """
    with _STORE_LOCK:
        _ensure_process_locked()
        payload = _shm_lookup_locked(digest, values)
        if payload is not None:
            return payload
        return _disk_lookup_locked(digest, values)


def disk_probe(digest: str, values: int) -> Optional[Payload]:
    """Consult only the disk tier (the warm-up path's verification)."""
    with _STORE_LOCK:
        _ensure_process_locked()
        return _disk_lookup_locked(digest, values)


def _shm_publish_locked(
    digest: str, speedups: npt.NDArray[np.float64]
) -> None:
    if _INDEX is None or _WORDS is None or _REGISTRY is None:
        return
    if digest in _VIEW_CACHE:
        return
    registered = int(_WORDS[_W_NREGISTERED])
    if registered >= int(_WORDS[_W_CAPACITY]):
        return  # registry full: skip the shm tier, keep L1/L3
    name = _segment_name_locked(digest)
    if name is None:
        return
    payload = speedups.tobytes()
    size = _SEG_HEADER_BYTES + len(payload)
    try:
        segment = _shared_memory(name, create=True, size=size)
    except FileExistsError:
        # Only possible if a previous store with our prefix leaked this
        # name; the guarded lookup already missed it, so leave it be.
        return
    except OSError:
        return  # shm exhausted: degrade quietly
    buf = getattr(segment, "buf")
    head = np.frombuffer(buf, dtype=np.int64, count=4)
    head[_SEG_SCHEMA] = cacheconf.SCHEMA_VERSION
    head[_SEG_COUNT] = speedups.shape[0]
    buf[_SEG_HEADER_BYTES : _SEG_HEADER_BYTES + len(payload)] = payload
    buf[32:64] = hashlib.sha256(payload).digest()
    head[_SEG_MAGIC] = _MAGIC  # commit flag: written last
    # The store owner unlinks; withdraw this process's tracker claim.
    _unregister_attached(segment)
    row = _REGISTRY[
        registered * _DIGEST_CHARS : (registered + 1) * _DIGEST_CHARS
    ]
    row[:] = np.frombuffer(digest.encode("ascii"), dtype=np.uint8)
    _WORDS[_W_NREGISTERED] = registered + 1
    view = np.frombuffer(
        buf, dtype=np.float64, count=speedups.shape[0],
        offset=_SEG_HEADER_BYTES,
    )
    view.setflags(write=False)
    _SEGMENTS[digest] = segment
    _VIEW_CACHE[digest] = view
    _COUNTS[_counter_index("publishes")] += 1
    _COUNTS[_counter_index("shm_bytes")] += size


def _disk_write_locked(
    digest: str,
    speedups: npt.NDArray[np.float64],
    hull: Optional[npt.NDArray[np.float64]],
    checksum: str,
) -> None:
    root = cacheconf.cache_dir()
    if root is None:
        return
    path = _disk_path(root, digest)
    scratch = root / f".{digest}.{os.getpid()}.tmp"
    try:
        root.mkdir(parents=True, exist_ok=True)
        arrays: Dict[str, npt.NDArray[np.float64]] = {"speedups": speedups}
        if hull is not None:
            arrays["hull"] = np.ascontiguousarray(hull)
        with open(scratch, "wb") as sink:
            np.savez(
                sink,
                digest=np.array(digest),
                schema=np.array(cacheconf.SCHEMA_VERSION),
                checksum=np.array(checksum),
                **arrays,
            )
        os.replace(scratch, path)
    except OSError:
        try:
            scratch.unlink(missing_ok=True)
        except OSError:  # pragma: no cover - unwritable scratch dir
            pass
        return
    _COUNTS[_counter_index("disk_writes")] += 1
    _COUNTS[_counter_index("disk_write_bytes")] += path.stat().st_size


def publish(
    digest: str,
    speedups: npt.NDArray[np.float64],
    hull: Optional[npt.NDArray[np.float64]] = None,
) -> str:
    """Publish one freshly built surface into the shared tiers.

    Must be called under :func:`build_guard` — the guard is what makes
    the shm create + registry append race-free and the ``builds``
    counter mean "distinct fleet-wide builds" while a store is active.
    Counts the build even when both tiers are inactive (the surface
    was still computed).  Returns the surface fingerprint (sha256 hex
    of the speedups payload; the ``.npz`` integrity checksum
    additionally covers the hull).
    """
    fingerprint = hashlib.sha256(speedups.tobytes()).hexdigest()
    integrity = _payload_checksum(speedups, hull)
    with _STORE_LOCK:
        _ensure_process_locked()
        _COUNTS[_counter_index("builds")] += 1
        _shm_publish_locked(digest, speedups)
        _CHECKSUMS.setdefault(digest, fingerprint)
        _disk_write_locked(digest, speedups, hull, integrity)
    return fingerprint


def counters_local() -> Dict[str, int]:
    """This process's tier counters."""
    with _STORE_LOCK:
        _ensure_process_locked()
        return {
            name: int(_COUNTS[i]) for i, name in enumerate(COUNTERS)
        }


def counters_fleet() -> Dict[str, int]:
    """Tier counters summed over every process attached to the store
    (equal to :func:`counters_local` when no store is active).  Worker
    rows persist after the pool exits, so the parent reads the whole
    sweep's history."""
    with _STORE_LOCK:
        _ensure_process_locked()
        if _MATRIX is None or _WORDS is None:
            return {
                name: int(_COUNTS[i]) for i, name in enumerate(COUNTERS)
            }
        claimed = int(_WORDS[_W_NCLAIMED])
        total = _MATRIX[:claimed].sum(axis=0)
        if _SLOT is None:
            total = total + _COUNTS
        return {name: int(total[i]) for i, name in enumerate(COUNTERS)}


def reset_counters(fleet: bool = False) -> None:
    """Zero this process's counters; with ``fleet=True`` (owner,
    between benchmark passes) zero every claimed row."""
    with _STORE_LOCK:
        _ensure_process_locked()
        _COUNTS[:] = 0
        if fleet and _MATRIX is not None:
            _MATRIX[:] = 0


def stats() -> Dict[str, object]:
    """Per-tier statistics: local + fleet counters, shm and disk info."""
    fleet = counters_fleet()
    local = counters_local()
    with _STORE_LOCK:
        _ensure_process_locked()
        shm_info: Dict[str, object] = {
            "active": _INDEX is not None,
            "owner": _OWNER,
            "attached_segments": len(_VIEW_CACHE),
            "slot": _SLOT,
        }
        if _WORDS is not None:
            shm_info["processes"] = int(_WORDS[_W_NCLAIMED])
            shm_info["published"] = int(_WORDS[_W_NREGISTERED])
            shm_info["capacity"] = int(_WORDS[_W_CAPACITY])
    root = cacheconf.cache_dir()
    files = 0
    nbytes = 0
    if root is not None and root.is_dir():
        for entry in sorted(root.glob("*.npz")):
            try:
                nbytes += entry.stat().st_size
                files += 1
            except OSError:  # pragma: no cover - raced deletion
                continue
    disk_info: Dict[str, object] = {
        "enabled": root is not None,
        "dir": str(root) if root is not None else None,
        "files": files,
        "bytes": nbytes,
        "schema": cacheconf.SCHEMA_VERSION,
    }
    return {
        "local": local,
        "fleet": fleet,
        "shm": shm_info,
        "disk": disk_info,
    }


def disk_clear() -> int:
    """Delete every cache entry under the disk root; returns the count.
    A no-op (0) when the disk tier is off."""
    root = cacheconf.cache_dir()
    if root is None or not root.is_dir():
        return 0
    removed = 0
    for entry in sorted(root.glob("*.npz")):
        try:
            entry.unlink()
            removed += 1
        except OSError:  # pragma: no cover - raced deletion
            continue
    for entry in sorted(root.glob(".*.tmp")):
        try:
            entry.unlink()
        except OSError:  # pragma: no cover - raced deletion
            continue
    return removed
