"""SSim: the top-level simulator facade.

Exposes both tiers behind one object:

* :meth:`SSim.run_cycle_accurate` — trace-driven, cycle-level execution
  on the multi-Slice pipeline (microbenchmarks, mechanism studies);
* :meth:`SSim.predict_ipc` — the fast analytic tier used by the
  closed-loop experiments;
* :meth:`SSim.runtime_iteration_cycles` — the Section VI-A runtime
  overhead microbenchmark: Algorithm 1's loop body as an instruction
  stream, timed on 1..N-Slice virtual cores;
* :meth:`SSim.compare_tiers` — agreement check between the two tiers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.params import CacheParams, SliceParams
from repro.arch.params import DEFAULT_CACHE_PARAMS, DEFAULT_SLICE_PARAMS
from repro.arch.vcore import VCoreConfig
from repro.sim.isa import MicroOp
from repro.sim.perfmodel import PerformanceModel
from repro.sim.pipeline import MultiSlicePipeline, PipelineResult
from repro.sim.trace import TraceGenerator
from repro.workloads.phase import Phase

_RUNTIME_PHASE = Phase(
    name="cash.runtime",
    instructions_m=1.0,
    ilp=2.1,
    mem_refs_per_inst=0.18,
    l1_miss_rate=0.02,
    working_set=((16, 0.98),),
    mlp=1.5,
    comm_penalty=0.10,
    branch_fraction=0.12,
    mispredict_rate=0.02,
)
"""Algorithm 1's loop body: scalar Kalman/controller arithmetic, two
bounded scans, bookkeeping stores.  Small working set (the runtime's
state is a few KB), moderate ILP — not application-dependent."""

RUNTIME_ITERATION_OPS = 2000
"""Micro-ops per runtime iteration (Kalman update, controller update,
over/under selection over the configuration catalogue, Q-learning
update, schedule bookkeeping)."""


@dataclass(frozen=True)
class CycleResult:
    """One cycle-tier run, with the fast tier's prediction alongside."""

    pipeline: PipelineResult
    predicted_ipc: float

    @property
    def measured_ipc(self) -> float:
        return self.pipeline.ipc

    @property
    def relative_error(self) -> float:
        if self.measured_ipc == 0:
            return float("inf")
        return abs(self.predicted_ipc - self.measured_ipc) / self.measured_ipc


class SSim:
    """The two-tier CASH architecture simulator."""

    def __init__(
        self,
        slice_params: SliceParams = DEFAULT_SLICE_PARAMS,
        cache_params: CacheParams = DEFAULT_CACHE_PARAMS,
    ) -> None:
        self.slice_params = slice_params
        self.cache_params = cache_params
        self.perf_model = PerformanceModel(
            slice_params=slice_params, cache_params=cache_params
        )

    def build_pipeline(self, config: VCoreConfig) -> MultiSlicePipeline:
        return MultiSlicePipeline(
            config,
            slice_params=self.slice_params,
            cache_params=self.cache_params,
        )

    def run_cycle_accurate(
        self,
        phase: Phase,
        config: VCoreConfig,
        instructions: int = 4000,
        seed: int = 0,
        trace: Optional[Sequence[MicroOp]] = None,
    ) -> CycleResult:
        """Run a synthetic trace of ``phase`` on the cycle tier."""
        if trace is None:
            generator = TraceGenerator(
                phase, self.slice_params.physical_registers, seed=seed
            )
            trace = generator.generate(instructions)
        pipeline = self.build_pipeline(config)
        result = pipeline.run(trace)
        return CycleResult(
            pipeline=result,
            predicted_ipc=self.perf_model.ipc(phase, config),
        )

    def predict_ipc(self, phase: Phase, config: VCoreConfig) -> float:
        """Fast-tier IPC prediction."""
        return self.perf_model.ipc(phase, config)

    def runtime_iteration_cycles(
        self,
        slices: int = 1,
        iterations: int = 5,
        seed: int = 7,
    ) -> float:
        """Average cycles per CASH runtime iteration (Section VI-A).

        The paper times 1000 iterations of Algorithm 1's C
        implementation and reports ~2000 / 1100 / 977 cycles per
        iteration on 1 / 2 / 3 Slices.  Here the loop body is modelled
        as a fixed micro-op stream and timed on the cycle tier.
        """
        if slices <= 0:
            raise ValueError(f"slices must be positive, got {slices}")
        if iterations <= 0:
            raise ValueError(f"iterations must be positive, got {iterations}")
        config = VCoreConfig(slices=slices, l2_kb=64)
        generator = TraceGenerator(
            _RUNTIME_PHASE, self.slice_params.physical_registers, seed=seed
        )
        trace = generator.generate(RUNTIME_ITERATION_OPS * iterations)
        pipeline = self.build_pipeline(config)
        result = pipeline.run(trace)
        return result.cycles / iterations

    def compare_tiers(
        self,
        phase: Phase,
        configs: Sequence[VCoreConfig],
        instructions: int = 4000,
        seed: int = 0,
    ) -> List[CycleResult]:
        """Cycle-tier vs fast-tier IPC across configurations."""
        return [
            self.run_cycle_accurate(phase, config, instructions, seed)
            for config in configs
        ]
