"""Micro-op ISA for the trace-driven cycle tier.

SSim is trace driven (the paper drives it with GEM5 full-system Alpha
traces; we drive it with synthetic traces generated from the workload
phase models, see :mod:`repro.sim.trace`).  A trace is a sequence of
micro-ops over the global logical register namespace of the
distributed register file.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple


class OpKind(enum.Enum):
    ALU = "alu"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"


@dataclass(frozen=True)
class MicroOp:
    """One instruction of the synthetic trace.

    Registers are global logical register indices (the name space the
    distributed register file renames into per-Slice local registers).
    ``address`` is a byte address for memory operations.
    """

    op_id: int
    kind: OpKind
    sources: Tuple[int, ...] = ()
    dest: Optional[int] = None
    address: Optional[int] = None
    mispredicted: bool = False
    code_address: Optional[int] = None
    """Instruction address, for L1I modelling (None = assume resident)."""

    taken: Optional[bool] = None
    """Actual branch direction, for dynamic prediction (None = use the
    scripted ``mispredicted`` flag)."""

    branch_target: Optional[int] = None
    """Actual branch target address (for the BTB)."""

    def __post_init__(self) -> None:
        if self.op_id < 0:
            raise ValueError(f"op_id must be non-negative, got {self.op_id}")
        if self.kind in (OpKind.LOAD, OpKind.STORE) and self.address is None:
            raise ValueError(f"{self.kind.value} op needs an address")
        if self.kind is OpKind.LOAD and self.dest is None:
            raise ValueError("load needs a destination register")
        if self.mispredicted and self.kind is not OpKind.BRANCH:
            raise ValueError("only branches can be mispredicted")
        if self.taken is not None and self.kind is not OpKind.BRANCH:
            raise ValueError("only branches have a direction")
        for reg in self.sources:
            if reg < 0:
                raise ValueError(f"negative source register {reg}")
        if self.dest is not None and self.dest < 0:
            raise ValueError(f"negative dest register {self.dest}")

    @property
    def is_memory(self) -> bool:
        return self.kind in (OpKind.LOAD, OpKind.STORE)

    @property
    def uses_alu(self) -> bool:
        return self.kind in (OpKind.ALU, OpKind.BRANCH)
