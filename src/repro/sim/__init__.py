"""SSim: the simulation substrate.

The paper evaluates CASH on SSim, a custom cycle-accurate simulator of
the CASH architecture driven by GEM5 Alpha traces.  This package
provides a two-tier Python SSim:

* the **cycle tier** (:mod:`repro.sim.engine`, :mod:`repro.sim.pipeline`,
  :mod:`repro.sim.memsys`) — a trace-driven, cycle-level multi-Slice
  out-of-order model used for microbenchmarks (reconfiguration
  overheads, register flush, distance-dependent L2 hits) and for
  validating the fast tier;
* the **fast tier** (:mod:`repro.sim.perfmodel`) — an analytic
  phase-level IPC model built from the same Table I/II latency
  parameters, used to drive the closed-loop runtime experiments that
  would be intractable cycle-by-cycle in Python.

Both tiers are exposed through :class:`repro.sim.ssim.SSim`.
"""

from repro.sim.perfmodel import PerformanceModel, DEFAULT_PERF_MODEL
from repro.sim.ssim import SSim, CycleResult
from repro.sim.pipeline import MultiSlicePipeline, PipelineResult
from repro.sim.trace import TraceGenerator, TraceStats
from repro.sim.engine import SimulationClock

__all__ = [
    "PerformanceModel",
    "DEFAULT_PERF_MODEL",
    "SSim",
    "CycleResult",
    "MultiSlicePipeline",
    "PipelineResult",
    "TraceGenerator",
    "TraceStats",
    "SimulationClock",
]
