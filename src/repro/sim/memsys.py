"""Memory system for the cycle tier: per-Slice L1s over a composed L2.

Latencies follow Table II: L1 hits cost 3 cycles; L2 hits cost
``distance * 2 + 4`` cycles where distance is the bank's hop count from
the requesting Slice; L2 misses add the 100-cycle memory delay.
Addresses hash across the virtual core's banks exactly as the
architecture model's :class:`~repro.arch.cache.ComposedL2` does — this
module simply binds that functional model to the timing parameters and
per-Slice L1s.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.arch.cache import CacheBank, ComposedL2
from repro.arch.params import CacheParams, SliceParams
from repro.arch.params import DEFAULT_CACHE_PARAMS, DEFAULT_SLICE_PARAMS
from repro.arch.vcore import VCoreConfig


@dataclass(frozen=True)
class AccessResult:
    """Where an access hit and what it cost."""

    level: str  # "l1", "l2", "memory"
    cycles: int


class MemorySystem:
    """L1D per Slice, a bank-hashed L2, and main memory."""

    def __init__(
        self,
        config: VCoreConfig,
        cache_params: CacheParams = DEFAULT_CACHE_PARAMS,
        slice_params: SliceParams = DEFAULT_SLICE_PARAMS,
    ) -> None:
        self.config = config
        self.cache_params = cache_params
        self.slice_params = slice_params
        self.l1d: List[CacheBank] = [
            CacheBank(cache_params.l1d, bank_id=i, params=cache_params)
            for i in range(config.slices)
        ]
        self.l1i: List[CacheBank] = [
            CacheBank(cache_params.l1i, bank_id=100 + i, params=cache_params)
            for i in range(config.slices)
        ]
        banks = []
        for bank_id in range(config.l2_banks):
            # Banks of a compact region sit at increasing hop counts
            # from the Slice cluster: bank i at distance ~sqrt(i).
            distance = int(round(math.sqrt(bank_id + config.slices)))
            banks.append(
                CacheBank(
                    cache_params.l2_bank,
                    bank_id=bank_id,
                    distance=distance,
                    params=cache_params,
                )
            )
        self.l2 = ComposedL2(banks)
        self.l1_hits = 0
        self.l2_hits = 0
        self.memory_accesses = 0
        self.l1i_hits = 0
        self.l1i_misses = 0

    def access(self, slice_id: int, address: int, is_write: bool) -> AccessResult:
        """Perform one data access from ``slice_id``; returns its cost."""
        if not 0 <= slice_id < len(self.l1d):
            raise ValueError(
                f"slice_id {slice_id} out of range for "
                f"{len(self.l1d)}-Slice virtual core"
            )
        l1 = self.l1d[slice_id]
        if l1.access(address, is_write):
            self.l1_hits += 1
            return AccessResult(level="l1", cycles=self.cache_params.l1_hit_delay)
        hit, l2_delay = self.l2.access(address, is_write)
        total = self.cache_params.l1_hit_delay + l2_delay
        if hit:
            self.l2_hits += 1
            return AccessResult(level="l2", cycles=total)
        self.memory_accesses += 1
        return AccessResult(
            level="memory", cycles=total + self.slice_params.memory_delay
        )

    def prewarm_code(self, addresses) -> None:
        """Install code blocks into every Slice's L1I without charging
        misses.

        SSim measures steady-state phases: by the time a measurement
        interval starts, the loop body has been executing for millions
        of cycles, so its code is as resident as the L1I's capacity
        allows (LRU keeps the most recent 16 KB).  Cold-start fetch is
        not part of any phase-level quantity the runtime observes.
        """
        for l1i in self.l1i:
            for address in addresses:
                l1i.access(address, False)
            l1i.hits = 0
            l1i.misses = 0
        # Steady state also has the code resident in the (much larger)
        # L2 where it fits; reset the bank counters so the prewarm
        # leaves no trace in measured statistics.
        for address in addresses:
            self.l2.access(address, False)
        for bank in self.l2.banks:
            bank.hits = 0
            bank.misses = 0
            bank.writebacks = 0

    def fetch(self, slice_id: int, code_address: int) -> AccessResult:
        """Instruction fetch: L1I, then the shared L2 / memory path."""
        if not 0 <= slice_id < len(self.l1i):
            raise ValueError(
                f"slice_id {slice_id} out of range for "
                f"{len(self.l1i)}-Slice virtual core"
            )
        l1i = self.l1i[slice_id]
        if l1i.access(code_address, False):
            self.l1i_hits += 1
            return AccessResult(level="l1", cycles=self.cache_params.l1_hit_delay)
        self.l1i_misses += 1
        hit, l2_delay = self.l2.access(code_address, False)
        total = self.cache_params.l1_hit_delay + l2_delay
        if hit:
            return AccessResult(level="l2", cycles=total)
        return AccessResult(
            level="memory", cycles=total + self.slice_params.memory_delay
        )

    def refetch_resident(
        self, slice_id: int, code_address: int, count: int
    ) -> bool:
        """Replay ``count`` repeated L1I fetch hits on a resident line.

        The cycle tier's event-driven engine uses this when it skips
        cycles during which a capacity-stalled front end would re-fetch
        the same head-of-trace instruction every cycle: each of those
        fetches is an L1I hit (the line was installed or hit by the
        last real fetch and nothing else touches that L1I in between).
        Replaying them in bulk leaves the memory system bit-identical
        to ``count`` individual :meth:`fetch` calls.  Returns ``False``
        without side effects if the line is not resident.
        """
        if not 0 <= slice_id < len(self.l1i):
            raise ValueError(
                f"slice_id {slice_id} out of range for "
                f"{len(self.l1i)}-Slice virtual core"
            )
        if not self.l1i[slice_id].touch_resident(code_address, count):
            return False
        self.l1i_hits += count
        return True

    def stats(self) -> Dict[str, int]:
        l2_stats = self.l2.stats()
        return {
            "l1_hits": self.l1_hits,
            "l2_hits": self.l2_hits,
            "l2_misses": self.memory_accesses,
            "l2_writebacks": l2_stats["writebacks"],
            "l1i_hits": self.l1i_hits,
            "l1i_misses": self.l1i_misses,
        }
