"""Synthetic trace generation from workload phase models.

The paper drives SSim with GEM5 full-system Alpha traces of the
benchmark applications.  Offline we cannot replay those, so this module
synthesizes instruction streams with the same first-order statistics a
phase model specifies: instruction mix (memory references per
instruction, branch fraction), dependency structure targeting the
phase's intrinsic ILP, mispredict rate, and memory reuse matching the
working-set spectrum.  DESIGN.md §2 records this substitution.

Generation has two implementations behind :data:`repro.perf.FAST`:

* the scalar reference draws from :class:`random.Random` one call at a
  time (``_generate_reference``);
* the fast twin (``_generate_fast``) syncs a ``numpy`` MT19937 bit
  generator to the *same* Mersenne Twister state, pulls raw 32-bit
  words in bulk, and decodes CPython's ``random()`` / ``getrandbits``
  layouts from that word stream — so it consumes the identical RNG
  stream and emits the identical op sequence, then writes the advanced
  state back into ``self.rng``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from collections import deque

import numpy as np

from repro import perf
from repro.analysis import sanitize
from repro.sim.isa import MicroOp, OpKind
from repro.sim.soa import TraceArrays
from repro.workloads.phase import Phase

_BLOCK_BYTES = 64
_HOT_SET_BLOCKS = 96
"""Recently-touched blocks re-accessed to realize the phase's L1 hit
rate: ~96 blocks (6 KB) comfortably fit the 16 KB L1."""

_RAW_BLOCK = 1 << 16
"""Raw 32-bit MT words pulled per ``random_raw`` batch in the fast
generator."""

_RAW_MARGIN = 1 << 12
"""Headroom kept in the word buffer so one op's draws never run off the
end between refills (an op needs at most a few hundred words)."""

_RECIP_53 = 1.0 / 9007199254740992.0
"""``2**-53`` — the scale CPython's ``random()`` applies to its 53-bit
mantissa built from two MT output words."""


class _WordStream:
    """CPython-compatible draws decoded from a numpy MT19937 core.

    ``random.Random`` and ``numpy.random.MT19937`` share the Mersenne
    Twister state layout (624-word key + position), and numpy's
    ``random_raw`` yields exactly the 32-bit output words CPython's
    ``getrandbits(32)`` consumes.  This class syncs numpy to the
    CPython state, batches the raw words, and reimplements the two
    derived draws the trace generator uses:

    * ``random()`` — two words ``a, b``; value is
      ``((a >> 5) * 2**26 + (b >> 6)) * 2**-53`` (the batch refill
      precomputes this for every adjacent word pair, vectorized);
    * ``_randbelow(n)`` — top ``n.bit_length()`` bits of one word,
      rejection-sampled until ``< n``; recovered as
      ``int(floats[i] * 2**53) >> (53 - k)``, since the precomputed
      float at position ``i`` carries the top 27 bits of word ``i`` in
      its mantissa (every draw here needs at most 23 bits).

    ``resync`` replays the consumed words on a fresh clone and writes
    the resulting state back into the ``random.Random`` instance, so a
    scalar draw after a fast batch continues the same stream.
    """

    __slots__ = (
        "_state",
        "_bitgen",
        "_checkpoints",
        "_raw",
        "size",
        "floats",
        "cursor",
        "_drawn",
    )

    def __init__(self, state: tuple) -> None:
        self._state = state
        internal = state[1]
        bitgen = np.random.MT19937()
        bitgen.state = {
            "bit_generator": "MT19937",
            "state": {
                "key": np.asarray(internal[:-1], dtype=np.uint32),
                "pos": internal[-1],
            },
        }
        self._bitgen = bitgen
        # (state, words drawn so far) snapshots taken before each raw
        # block, so resync only replays the tail of the stream.  The
        # final consumed word can sit up to one carry (< _RAW_MARGIN)
        # before the last snapshot, hence two are kept.
        self._checkpoints = [(bitgen.state, 0)]
        self._raw = bitgen.random_raw(_RAW_BLOCK)
        self._drawn = _RAW_BLOCK
        self.cursor = 0
        self._decode()

    def _decode(self) -> None:
        raw = self._raw
        self.size = int(raw.shape[0])
        self.floats = (
            ((raw[:-1] >> 5) * 67108864.0 + (raw[1:] >> 6)) * _RECIP_53
        ).tolist()

    def _verify_checkpoints(self) -> None:
        """Sanitizer: replaying the older checkpoint must reproduce the
        newer one word-for-word (otherwise resync would silently land
        the CPython RNG on the wrong word)."""
        (old_state, old_pos), (new_state, new_pos) = self._checkpoints
        clone = np.random.MT19937()
        clone.state = old_state
        if new_pos > old_pos:
            clone.random_raw(new_pos - old_pos)
        replayed = clone.state["state"]
        recorded = new_state["state"]
        if int(replayed["pos"]) != int(recorded["pos"]) or not np.array_equal(
            replayed["key"], recorded["key"]
        ):
            sanitize.violation(
                "rng-checkpoint",
                "repro.sim.trace._WordStream",
                "refill",
                f"checkpoint replay of {new_pos - old_pos} words from "
                f"word {old_pos} does not reach the recorded state at "
                f"word {new_pos}",
            )

    def refill(self) -> None:
        """Extend the buffer, carrying over unconsumed words."""
        self._checkpoints = [
            self._checkpoints[-1],
            (self._bitgen.state, self._drawn),
        ]
        if sanitize.ENABLED:
            self._verify_checkpoints()
        fresh = self._bitgen.random_raw(_RAW_BLOCK)
        self._drawn += _RAW_BLOCK
        self._raw = np.concatenate((self._raw[self.cursor :], fresh))
        self.cursor = 0
        self._decode()

    @property
    def limit(self) -> int:
        return self.size - _RAW_MARGIN

    def consumed(self) -> int:
        return self._drawn - (self.size - self.cursor)

    def resync(self, rng: random.Random) -> None:
        """Advance ``rng`` past every word consumed from this stream."""
        used = self.consumed()
        for snapshot, position in reversed(self._checkpoints):
            if position <= used:
                break
        bitgen = np.random.MT19937()
        bitgen.state = snapshot
        if used > position:
            bitgen.random_raw(used - position)
        final = bitgen.state["state"]
        key = tuple(int(word) for word in final["key"])
        rng.setstate(
            (self._state[0], key + (int(final["pos"]),), self._state[2])
        )
        if sanitize.ENABLED and self.cursor < self.size - 1:
            # The handed-back RNG's next float must be the stream's next
            # undrawn float — proves the word-position arithmetic (and
            # the checkpoint it replayed from) is exact.
            probe = random.Random()
            probe.setstate(rng.getstate())
            expected = self.floats[self.cursor]
            actual = probe.random()
            if actual != expected:
                sanitize.violation(
                    "rng-checkpoint",
                    "repro.sim.trace._WordStream",
                    "resync",
                    f"after resync at word {used} the CPython RNG draws "
                    f"{actual!r} but the word stream holds {expected!r}",
                )


@dataclass(frozen=True)
class TraceStats:
    """First-order statistics of a generated trace."""

    instructions: int
    loads: int
    stores: int
    branches: int
    mispredicts: int

    @property
    def memory_fraction(self) -> float:
        if self.instructions == 0:
            return 0.0
        return (self.loads + self.stores) / self.instructions


class TraceGenerator:
    """Generates micro-op traces matching a phase's statistics."""

    def __init__(
        self,
        phase: Phase,
        num_registers: int = 128,
        seed: int = 0,
    ) -> None:
        if num_registers < 8:
            raise ValueError(f"need at least 8 registers, got {num_registers}")
        self.phase = phase
        self.num_registers = num_registers
        self.rng = random.Random(seed)
        self._hot_blocks: deque = deque(maxlen=_HOT_SET_BLOCKS)
        self._sweep_position = [0] * len(phase.working_set)
        self._pc = 0
        self._code_blocks = max(
            phase.code_footprint_kb * 1024 // _BLOCK_BYTES, 1
        )
        # Per-branch-address behaviour for dynamic prediction: a "hard"
        # branch is 50/50 (a bimodal predictor misses it half the
        # time); an easy one is strongly taken.  The hard fraction is
        # chosen so the emergent mispredict rate matches the phase's
        # specified rate: m ~= 0.5*f + 0.03*(1-f).
        self._branch_bias: dict = {}
        self._branch_target: dict = {}
        self._hard_fraction = min(
            max((phase.mispredict_rate - 0.03) / 0.47, 0.0), 1.0
        )

    def _code_address(self, is_taken_branch: bool) -> int:
        """The next instruction's address: straight-line code advances
        sequentially through the footprint; a taken branch jumps to a
        random block within it (loops, calls)."""
        if is_taken_branch:
            self._pc = self.rng.randrange(self._code_blocks)
        address = (2 << 40) + self._pc * _BLOCK_BYTES
        # ~16 four-byte instructions per block before advancing.
        if self.rng.random() < 1.0 / 16.0:
            self._pc = (self._pc + 1) % self._code_blocks
        return address

    def _branch_behaviour(self, address: int):
        """(taken, target) for the branch at ``address`` this time."""
        if address not in self._branch_bias:
            hard = self.rng.random() < self._hard_fraction
            self._branch_bias[address] = 0.5 if hard else 0.97
            self._branch_target[address] = (
                (2 << 40) + self.rng.randrange(self._code_blocks) * _BLOCK_BYTES
            )
        taken = self.rng.random() < self._branch_bias[address]
        return taken, self._branch_target[address]

    def _dependency_distance(self) -> int:
        """Distance (in ops) to the producer of a source operand.

        A geometric distribution with mean ≈ the phase's ILP: shorter
        dependencies serialize execution, longer ones expose
        parallelism — this is the standard knob for targeting an ILP
        level in synthetic traces.
        """
        mean = max(self.phase.ilp, 1.0)
        p = 1.0 / (mean + 1.0)
        # Geometric sample (at least 1).
        distance = 1
        while self.rng.random() > p and distance < 64:
            distance += 1
        return distance

    def _address(self) -> int:
        """A memory address with working-set-shaped reuse.

        Two levels of locality: with probability ``1 - l1_miss_rate``
        the access re-touches a recently-used block (temporal locality
        the L1 captures, matching the phase's specified L1 behaviour);
        otherwise it goes to the L2-level working set — with
        probability matching each working-set chunk's share, a block
        inside a region of that chunk's size, the remainder being
        streaming traffic over a very large region.
        """
        if self._hot_blocks and self.rng.random() > self.phase.l1_miss_rate:
            return self.rng.choice(self._hot_blocks)
        address = self._cold_address()
        self._hot_blocks.append(address)
        return address

    def _cold_address(self) -> int:
        """Pick an L2-level address: a cyclic sweep over one of the
        working-set regions, or streaming traffic.

        Sweeping (rather than sampling uniformly) matches the phase
        model's step-capture semantics: a region that fits in the L2
        hits on every revisit after the first sweep, while a region
        larger than the L2 thrashes an LRU cache and captures almost
        nothing — the knee structure behind Fig. 1.
        """
        draw = self.rng.random()
        cumulative = 0.0
        previous_fraction = 0.0
        base = 0
        for index, (size_kb, fraction) in enumerate(self.phase.working_set):
            share = fraction - previous_fraction
            cumulative += share
            if draw < cumulative:
                blocks = max(size_kb * 1024 // _BLOCK_BYTES, 1)
                position = self._sweep_position[index]
                self._sweep_position[index] = (position + 1) % blocks
                return base + position * _BLOCK_BYTES
            previous_fraction = fraction
            base += 1 << 30  # distinct region per chunk
        streaming_blocks = (256 << 20) // _BLOCK_BYTES
        return (1 << 34) + self.rng.randrange(streaming_blocks) * _BLOCK_BYTES

    def generate(self, count: int) -> List[MicroOp]:
        """Generate ``count`` micro-ops.

        With :data:`repro.perf.FAST` enabled the draws are decoded from
        bulk numpy MT19937 output; the op sequence and the generator's
        RNG state afterwards are bit-identical to the scalar path.
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        if perf.FAST:
            return self._generate_fast(count)
        return self._generate_reference(count)

    def _generate_reference(self, count: int) -> List[MicroOp]:
        """Scalar reference generator: one ``random.Random`` call per
        draw.  The FAST twin must replay this draw sequence exactly."""
        ops: List[MicroOp] = []
        for op_id in range(count):
            # The first source is the *critical* dependency, at a
            # geometric distance whose mean sets the trace's data-flow
            # ILP.  A possible second source points much further back
            # (usually already complete), so it widens the data-flow
            # graph without shortening the critical path — with two
            # near dependencies per op, the realized ILP would be
            # E[min(d1, d2)], roughly half the target.
            sources = []
            distance = self._dependency_distance()
            producer = op_id - distance
            if producer >= 0 and ops[producer].dest is not None:
                sources.append(ops[producer].dest)
            else:
                sources.append(self.rng.randrange(self.num_registers))
            if self.rng.random() < 0.6:
                stale = op_id - self.rng.randint(16, 64)
                if stale >= 0 and ops[stale].dest is not None:
                    sources.append(ops[stale].dest)
                else:
                    sources.append(self.rng.randrange(self.num_registers))
            dest = self.rng.randrange(self.num_registers)
            draw = self.rng.random()
            mem_fraction = self.phase.mem_refs_per_inst
            branch_fraction = self.phase.branch_fraction
            is_branch = mem_fraction <= draw < mem_fraction + branch_fraction
            code_address = self._code_address(
                is_taken_branch=is_branch and self.rng.random() < 0.6
            )
            if draw < mem_fraction:
                if self.rng.random() < 0.7:
                    ops.append(
                        MicroOp(
                            op_id=op_id,
                            kind=OpKind.LOAD,
                            sources=tuple(sources[:1]),
                            dest=dest,
                            address=self._address(),
                            code_address=code_address,
                        )
                    )
                else:
                    ops.append(
                        MicroOp(
                            op_id=op_id,
                            kind=OpKind.STORE,
                            sources=tuple(sources),
                            dest=None,
                            address=self._address(),
                            code_address=code_address,
                        )
                    )
            elif is_branch:
                taken, target = self._branch_behaviour(code_address)
                ops.append(
                    MicroOp(
                        op_id=op_id,
                        kind=OpKind.BRANCH,
                        sources=tuple(sources[:1]),
                        dest=None,
                        mispredicted=self.rng.random()
                        < self.phase.mispredict_rate,
                        code_address=code_address,
                        taken=taken,
                        branch_target=target,
                    )
                )
            else:
                ops.append(
                    MicroOp(
                        op_id=op_id,
                        kind=OpKind.ALU,
                        sources=tuple(sources),
                        dest=dest,
                        code_address=code_address,
                    )
                )
        return ops

    def _generate_fast(self, count: int) -> List[MicroOp]:
        """FAST twin of :meth:`_generate_reference`.

        Decodes the identical CPython draw sequence from batched numpy
        MT19937 words (see :class:`_WordStream`) and builds the ops
        without re-validating fields the construction already
        guarantees.  All generator state (PC, hot set, sweep positions,
        branch tables, RNG) is mirrored locally and written back only
        on success, so the stream and every subsequent scalar draw stay
        bit-identical.
        """
        stream = _WordStream(self.rng.getstate())
        try:
            ops, pc, hot = self._decode_ops(count, stream)
        except IndexError:  # pragma: no cover - needs ~4096-word op
            # One op overran the buffer margin (astronomically long
            # rejection run).  Nothing on ``self`` was touched yet, so
            # the scalar path can regenerate from the original state.
            return self._generate_reference(count)
        self._pc = pc
        self._hot_blocks.clear()
        self._hot_blocks.extend(hot)
        stream.resync(self.rng)
        return ops

    def _decode_ops(self, count: int, stream: _WordStream):
        """Decode ``count`` ops from ``stream``; returns (ops, pc, hot).

        Every piece of generator state (sweep positions, branch tables,
        PC, hot set) is mirrored locally; the sweep and branch tables
        are written back just before returning, the rest is handed to
        the caller — so an aborted decode leaves ``self`` untouched.
        """
        phase = self.phase
        mem_fraction = phase.mem_refs_per_inst
        branch_cut = mem_fraction + phase.branch_fraction
        mispredict_rate = phase.mispredict_rate
        l1_miss_rate = phase.l1_miss_rate
        num_registers = self.num_registers
        reg_shift = 53 - num_registers.bit_length()
        code_blocks = self._code_blocks
        code_shift = 53 - code_blocks.bit_length()
        hard_fraction = self._hard_fraction
        bias = dict(self._branch_bias)
        branch_target = dict(self._branch_target)
        sweep = list(self._sweep_position)
        working_set = phase.working_set
        region_blocks = [
            max(size_kb * 1024 // _BLOCK_BYTES, 1)
            for size_kb, _fraction in working_set
        ]
        streaming_blocks = (256 << 20) // _BLOCK_BYTES
        pc = self._pc
        hot = list(self._hot_blocks)
        mean = max(phase.ilp, 1.0)
        p_geo = 1.0 / (mean + 1.0)
        code_base = 2 << 40
        block_bytes = _BLOCK_BYTES
        hot_cap = _HOT_SET_BLOCKS
        micro_op = MicroOp

        floats = stream.floats
        cursor = stream.cursor
        limit = stream.limit

        new_op = object.__new__
        set_dict = object.__setattr__
        alu = OpKind.ALU
        load = OpKind.LOAD
        store = OpKind.STORE
        branch = OpKind.BRANCH

        ops: List[MicroOp] = []
        append_op = ops.append
        dests: List[Optional[int]] = []
        append_dest = dests.append

        for op_id in range(count):
            if cursor > limit:
                stream.cursor = cursor
                stream.refill()
                floats = stream.floats
                cursor = stream.cursor
                limit = stream.limit
            # _dependency_distance: geometric via repeated random().
            distance = 1
            value = floats[cursor]
            cursor += 2
            while value > p_geo and distance < 64:
                distance += 1
                value = floats[cursor]
                cursor += 2
            producer = op_id - distance
            src0 = dests[producer] if producer >= 0 else None
            if src0 is None:
                # randrange(num_registers): top-bits rejection sample.
                src0 = int(floats[cursor] * 9007199254740992.0) >> reg_shift
                cursor += 1
                while src0 >= num_registers:
                    src0 = int(floats[cursor] * 9007199254740992.0) >> reg_shift
                    cursor += 1
            src1 = -1
            value = floats[cursor]
            cursor += 2
            if value < 0.6:
                # randint(16, 64) == 16 + _randbelow(49).
                step = int(floats[cursor] * 9007199254740992.0) >> 47
                cursor += 1
                while step >= 49:
                    step = int(floats[cursor] * 9007199254740992.0) >> 47
                    cursor += 1
                stale = op_id - 16 - step
                back = dests[stale] if stale >= 0 else None
                if back is None:
                    back = int(floats[cursor] * 9007199254740992.0) >> reg_shift
                    cursor += 1
                    while back >= num_registers:
                        back = int(floats[cursor] * 9007199254740992.0) >> reg_shift
                        cursor += 1
                src1 = back
            dest = int(floats[cursor] * 9007199254740992.0) >> reg_shift
            cursor += 1
            while dest >= num_registers:
                dest = int(floats[cursor] * 9007199254740992.0) >> reg_shift
                cursor += 1
            draw = floats[cursor]
            cursor += 2
            # Triage ordered by frequency (ALU usually dominates); the
            # _code_address taken-branch draw only happens for
            # branches, exactly like the reference's short-circuit.
            if draw >= branch_cut:
                # ALU op.
                code_address = code_base + pc * block_bytes
                value = floats[cursor]
                cursor += 2
                if value < 1.0 / 16.0:
                    pc = (pc + 1) % code_blocks
                op = new_op(micro_op)
                set_dict(
                    op,
                    "__dict__",
                    {
                        "op_id": op_id,
                        "kind": alu,
                        "sources": (src0,) if src1 < 0 else (src0, src1),
                        "dest": dest,
                        "address": None,
                        "mispredicted": False,
                        "code_address": code_address,
                        "taken": None,
                        "branch_target": None,
                    },
                )
                append_dest(dest)
            elif draw < mem_fraction:
                code_address = code_base + pc * block_bytes
                value = floats[cursor]
                cursor += 2
                if value < 1.0 / 16.0:
                    pc = (pc + 1) % code_blocks
                value = floats[cursor]
                cursor += 2
                is_load = value < 0.7
                # _address: hot-set re-touch or cold sweep.
                address = -1
                if hot:
                    value = floats[cursor]
                    cursor += 2
                    if value > l1_miss_rate:
                        # choice(hot): _randbelow(len(hot)).
                        size = len(hot)
                        shift = 53 - size.bit_length()
                        pick = int(floats[cursor] * 9007199254740992.0) >> shift
                        cursor += 1
                        while pick >= size:
                            pick = int(floats[cursor] * 9007199254740992.0) >> shift
                            cursor += 1
                        address = hot[pick]
                if address < 0:
                    # _cold_address: working-set sweep or streaming.
                    value = floats[cursor]
                    cursor += 2
                    cumulative = 0.0
                    previous_fraction = 0.0
                    base = 0
                    for index, (_size_kb, fraction) in enumerate(working_set):
                        cumulative += fraction - previous_fraction
                        if value < cumulative:
                            blocks = region_blocks[index]
                            position = sweep[index]
                            sweep[index] = (position + 1) % blocks
                            address = base + position * block_bytes
                            break
                        previous_fraction = fraction
                        base += 1 << 30
                    else:
                        block = int(floats[cursor] * 9007199254740992.0) >> 30
                        cursor += 1
                        while block >= streaming_blocks:
                            block = int(floats[cursor] * 9007199254740992.0) >> 30
                            cursor += 1
                        address = (1 << 34) + block * block_bytes
                    hot.append(address)
                    if len(hot) > hot_cap:
                        del hot[0]
                if is_load:
                    op = new_op(micro_op)
                    set_dict(
                        op,
                        "__dict__",
                        {
                            "op_id": op_id,
                            "kind": load,
                            "sources": (src0,),
                            "dest": dest,
                            "address": address,
                            "mispredicted": False,
                            "code_address": code_address,
                            "taken": None,
                            "branch_target": None,
                        },
                    )
                    append_dest(dest)
                else:
                    op = new_op(micro_op)
                    set_dict(
                        op,
                        "__dict__",
                        {
                            "op_id": op_id,
                            "kind": store,
                            "sources": (src0,) if src1 < 0 else (src0, src1),
                            "dest": None,
                            "address": address,
                            "mispredicted": False,
                            "code_address": code_address,
                            "taken": None,
                            "branch_target": None,
                        },
                    )
                    append_dest(None)
            else:
                # Branch: a taken branch may jump the PC before the
                # code address is formed (_code_address).
                value = floats[cursor]
                cursor += 2
                if value < 0.6:
                    pc = int(floats[cursor] * 9007199254740992.0) >> code_shift
                    cursor += 1
                    while pc >= code_blocks:
                        pc = int(floats[cursor] * 9007199254740992.0) >> code_shift
                        cursor += 1
                code_address = code_base + pc * block_bytes
                value = floats[cursor]
                cursor += 2
                if value < 1.0 / 16.0:
                    pc = (pc + 1) % code_blocks
                # _branch_behaviour: first visit fixes bias + target.
                branch_bias = bias.get(code_address)
                if branch_bias is None:
                    value = floats[cursor]
                    cursor += 2
                    branch_bias = 0.5 if value < hard_fraction else 0.97
                    bias[code_address] = branch_bias
                    block = int(floats[cursor] * 9007199254740992.0) >> code_shift
                    cursor += 1
                    while block >= code_blocks:
                        block = int(floats[cursor] * 9007199254740992.0) >> code_shift
                        cursor += 1
                    branch_target[code_address] = (
                        code_base + block * block_bytes
                    )
                value = floats[cursor]
                cursor += 2
                taken = value < branch_bias
                value = floats[cursor]
                cursor += 2
                op = new_op(micro_op)
                set_dict(
                    op,
                    "__dict__",
                    {
                        "op_id": op_id,
                        "kind": branch,
                        "sources": (src0,),
                        "dest": None,
                        "address": None,
                        "mispredicted": value < mispredict_rate,
                        "code_address": code_address,
                        "taken": taken,
                        "branch_target": branch_target[code_address],
                    },
                )
                append_dest(None)
            append_op(op)
        stream.cursor = cursor
        self._sweep_position[:] = sweep
        self._branch_bias.update(bias)
        self._branch_target.update(branch_target)
        return ops, pc, hot

    def generate_arrays(self, count: int) -> TraceArrays:
        """Generate ``count`` micro-ops directly as :class:`TraceArrays`.

        Semantically identical to ``TraceArrays.from_ops(self.generate
        (count))`` — same RNG draw sequence, same generator state
        afterwards — but the FAST path decodes straight into columns,
        skipping :class:`MicroOp` construction entirely.  This is the
        entry the batch cycle tier uses, where per-object overhead
        would dominate the whole run.
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        if perf.FAST:
            return self._generate_arrays_fast(count)
        return TraceArrays.from_ops(self._generate_reference(count))

    def _generate_arrays_fast(self, count: int) -> TraceArrays:
        """FAST twin of the ``from_ops``-over-reference path.

        Mirrors :meth:`_generate_fast`'s state handling exactly: decode
        from a synced word stream, write back PC / hot set / RNG state
        only on success, fall back to the scalar path when one op
        overruns the refill margin.
        """
        stream = _WordStream(self.rng.getstate())
        try:
            columns, pc, hot = self._decode_fields(count, stream)
        except IndexError:  # pragma: no cover - needs ~4096-word op
            return TraceArrays.from_ops(self._generate_reference(count))
        self._pc = pc
        self._hot_blocks.clear()
        self._hot_blocks.extend(hot)
        stream.resync(self.rng)
        (kinds, src0, src1, dest, addr, mis, code, taken, target) = columns
        # ``from_ops`` sizes the source matrix to the widest op, so the
        # fast path must shrink to one column when no op drew a second
        # source (possible for tiny counts).
        if max(src1) >= 0:
            sources = np.stack(
                [
                    np.array(src0, dtype=np.int64),
                    np.array(src1, dtype=np.int64),
                ],
                axis=1,
            )
        else:
            sources = np.array(src0, dtype=np.int64).reshape(-1, 1)
        return TraceArrays(
            kinds=np.array(kinds, dtype=np.int8),
            sources=sources,
            dests=np.array(dest, dtype=np.int64),
            addresses=np.array(addr, dtype=np.int64),
            mispredicted=np.array(mis, dtype=np.bool_),
            code_addresses=np.array(code, dtype=np.int64),
            taken=np.array(taken, dtype=np.int8),
            branch_targets=np.array(target, dtype=np.int64),
        )

    def _decode_fields(self, count: int, stream: _WordStream):
        """Column-emitting variant of :meth:`_decode_ops`.

        Identical draw-for-draw decode, but each op appends nine scalar
        column entries (kind code, two sources, dest, address,
        mispredict, code address, taken, branch target — ``-1`` for
        ``None``) instead of building a :class:`MicroOp`.  Returns
        ``(columns, pc, hot)``; state write-back rules match
        ``_decode_ops``.
        """
        phase = self.phase
        mem_fraction = phase.mem_refs_per_inst
        branch_cut = mem_fraction + phase.branch_fraction
        mispredict_rate = phase.mispredict_rate
        l1_miss_rate = phase.l1_miss_rate
        num_registers = self.num_registers
        reg_shift = 53 - num_registers.bit_length()
        code_blocks = self._code_blocks
        code_shift = 53 - code_blocks.bit_length()
        hard_fraction = self._hard_fraction
        bias = dict(self._branch_bias)
        branch_target = dict(self._branch_target)
        sweep = list(self._sweep_position)
        working_set = phase.working_set
        region_blocks = [
            max(size_kb * 1024 // _BLOCK_BYTES, 1)
            for size_kb, _fraction in working_set
        ]
        streaming_blocks = (256 << 20) // _BLOCK_BYTES
        pc = self._pc
        hot = list(self._hot_blocks)
        mean = max(phase.ilp, 1.0)
        p_geo = 1.0 / (mean + 1.0)
        code_base = 2 << 40
        block_bytes = _BLOCK_BYTES
        hot_cap = _HOT_SET_BLOCKS

        floats = stream.floats
        cursor = stream.cursor
        limit = stream.limit

        kinds_col: List[int] = []
        src0_col: List[int] = []
        src1_col: List[int] = []
        dest_col: List[int] = []
        addr_col: List[int] = []
        mis_col: List[bool] = []
        code_col: List[int] = []
        taken_col: List[int] = []
        target_col: List[int] = []
        append_kind = kinds_col.append
        append_src0 = src0_col.append
        append_src1 = src1_col.append
        append_dest = dest_col.append
        append_addr = addr_col.append
        append_mis = mis_col.append
        append_code = code_col.append
        append_taken = taken_col.append
        append_target = target_col.append

        for op_id in range(count):
            if cursor > limit:
                stream.cursor = cursor
                stream.refill()
                floats = stream.floats
                cursor = stream.cursor
                limit = stream.limit
            # _dependency_distance: geometric via repeated random().
            distance = 1
            value = floats[cursor]
            cursor += 2
            while value > p_geo and distance < 64:
                distance += 1
                value = floats[cursor]
                cursor += 2
            producer = op_id - distance
            src0 = dest_col[producer] if producer >= 0 else -1
            if src0 < 0:
                # randrange(num_registers): top-bits rejection sample.
                src0 = int(floats[cursor] * 9007199254740992.0) >> reg_shift
                cursor += 1
                while src0 >= num_registers:
                    src0 = int(floats[cursor] * 9007199254740992.0) >> reg_shift
                    cursor += 1
            src1 = -1
            value = floats[cursor]
            cursor += 2
            if value < 0.6:
                # randint(16, 64) == 16 + _randbelow(49).
                step = int(floats[cursor] * 9007199254740992.0) >> 47
                cursor += 1
                while step >= 49:
                    step = int(floats[cursor] * 9007199254740992.0) >> 47
                    cursor += 1
                stale = op_id - 16 - step
                back = dest_col[stale] if stale >= 0 else -1
                if back < 0:
                    back = int(floats[cursor] * 9007199254740992.0) >> reg_shift
                    cursor += 1
                    while back >= num_registers:
                        back = int(floats[cursor] * 9007199254740992.0) >> reg_shift
                        cursor += 1
                src1 = back
            dest = int(floats[cursor] * 9007199254740992.0) >> reg_shift
            cursor += 1
            while dest >= num_registers:
                dest = int(floats[cursor] * 9007199254740992.0) >> reg_shift
                cursor += 1
            draw = floats[cursor]
            cursor += 2
            # Triage ordered by frequency, exactly like _decode_ops.
            if draw >= branch_cut:
                # ALU op.
                code_address = code_base + pc * block_bytes
                value = floats[cursor]
                cursor += 2
                if value < 1.0 / 16.0:
                    pc = (pc + 1) % code_blocks
                append_kind(0)
                append_src0(src0)
                append_src1(src1)
                append_dest(dest)
                append_addr(-1)
                append_mis(False)
                append_code(code_address)
                append_taken(-1)
                append_target(-1)
            elif draw < mem_fraction:
                code_address = code_base + pc * block_bytes
                value = floats[cursor]
                cursor += 2
                if value < 1.0 / 16.0:
                    pc = (pc + 1) % code_blocks
                value = floats[cursor]
                cursor += 2
                is_load = value < 0.7
                # _address: hot-set re-touch or cold sweep.
                address = -1
                if hot:
                    value = floats[cursor]
                    cursor += 2
                    if value > l1_miss_rate:
                        # choice(hot): _randbelow(len(hot)).
                        size = len(hot)
                        shift = 53 - size.bit_length()
                        pick = int(floats[cursor] * 9007199254740992.0) >> shift
                        cursor += 1
                        while pick >= size:
                            pick = int(floats[cursor] * 9007199254740992.0) >> shift
                            cursor += 1
                        address = hot[pick]
                if address < 0:
                    # _cold_address: working-set sweep or streaming.
                    value = floats[cursor]
                    cursor += 2
                    cumulative = 0.0
                    previous_fraction = 0.0
                    base = 0
                    for index, (_size_kb, fraction) in enumerate(working_set):
                        cumulative += fraction - previous_fraction
                        if value < cumulative:
                            blocks = region_blocks[index]
                            position = sweep[index]
                            sweep[index] = (position + 1) % blocks
                            address = base + position * block_bytes
                            break
                        previous_fraction = fraction
                        base += 1 << 30
                    else:
                        block = int(floats[cursor] * 9007199254740992.0) >> 30
                        cursor += 1
                        while block >= streaming_blocks:
                            block = int(floats[cursor] * 9007199254740992.0) >> 30
                            cursor += 1
                        address = (1 << 34) + block * block_bytes
                    hot.append(address)
                    if len(hot) > hot_cap:
                        del hot[0]
                if is_load:
                    append_kind(1)
                    append_src0(src0)
                    append_src1(-1)
                    append_dest(dest)
                else:
                    append_kind(2)
                    append_src0(src0)
                    append_src1(src1)
                    append_dest(-1)
                append_addr(address)
                append_mis(False)
                append_code(code_address)
                append_taken(-1)
                append_target(-1)
            else:
                # Branch: a taken branch may jump the PC before the
                # code address is formed (_code_address).
                value = floats[cursor]
                cursor += 2
                if value < 0.6:
                    pc = int(floats[cursor] * 9007199254740992.0) >> code_shift
                    cursor += 1
                    while pc >= code_blocks:
                        pc = int(floats[cursor] * 9007199254740992.0) >> code_shift
                        cursor += 1
                code_address = code_base + pc * block_bytes
                value = floats[cursor]
                cursor += 2
                if value < 1.0 / 16.0:
                    pc = (pc + 1) % code_blocks
                # _branch_behaviour: first visit fixes bias + target.
                branch_bias = bias.get(code_address)
                if branch_bias is None:
                    value = floats[cursor]
                    cursor += 2
                    branch_bias = 0.5 if value < hard_fraction else 0.97
                    bias[code_address] = branch_bias
                    block = int(floats[cursor] * 9007199254740992.0) >> code_shift
                    cursor += 1
                    while block >= code_blocks:
                        block = int(floats[cursor] * 9007199254740992.0) >> code_shift
                        cursor += 1
                    branch_target[code_address] = (
                        code_base + block * block_bytes
                    )
                value = floats[cursor]
                cursor += 2
                taken = value < branch_bias
                value = floats[cursor]
                cursor += 2
                append_kind(3)
                append_src0(src0)
                append_src1(-1)
                append_dest(-1)
                append_addr(-1)
                append_mis(value < mispredict_rate)
                append_code(code_address)
                append_taken(1 if taken else 0)
                append_target(branch_target[code_address])
        stream.cursor = cursor
        self._sweep_position[:] = sweep
        self._branch_bias.update(bias)
        self._branch_target.update(branch_target)
        columns = (
            kinds_col,
            src0_col,
            src1_col,
            dest_col,
            addr_col,
            mis_col,
            code_col,
            taken_col,
            target_col,
        )
        return columns, pc, hot

    @staticmethod
    def stats(ops: List[MicroOp]) -> TraceStats:
        return TraceStats(
            instructions=len(ops),
            loads=sum(op.kind is OpKind.LOAD for op in ops),
            stores=sum(op.kind is OpKind.STORE for op in ops),
            branches=sum(op.kind is OpKind.BRANCH for op in ops),
            mispredicts=sum(op.mispredicted for op in ops),
        )
