"""Synthetic trace generation from workload phase models.

The paper drives SSim with GEM5 full-system Alpha traces of the
benchmark applications.  Offline we cannot replay those, so this module
synthesizes instruction streams with the same first-order statistics a
phase model specifies: instruction mix (memory references per
instruction, branch fraction), dependency structure targeting the
phase's intrinsic ILP, mispredict rate, and memory reuse matching the
working-set spectrum.  DESIGN.md §2 records this substitution.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from collections import deque

from repro.sim.isa import MicroOp, OpKind
from repro.workloads.phase import Phase

_BLOCK_BYTES = 64
_HOT_SET_BLOCKS = 96
"""Recently-touched blocks re-accessed to realize the phase's L1 hit
rate: ~96 blocks (6 KB) comfortably fit the 16 KB L1."""


@dataclass(frozen=True)
class TraceStats:
    """First-order statistics of a generated trace."""

    instructions: int
    loads: int
    stores: int
    branches: int
    mispredicts: int

    @property
    def memory_fraction(self) -> float:
        if self.instructions == 0:
            return 0.0
        return (self.loads + self.stores) / self.instructions


class TraceGenerator:
    """Generates micro-op traces matching a phase's statistics."""

    def __init__(
        self,
        phase: Phase,
        num_registers: int = 128,
        seed: int = 0,
    ) -> None:
        if num_registers < 8:
            raise ValueError(f"need at least 8 registers, got {num_registers}")
        self.phase = phase
        self.num_registers = num_registers
        self.rng = random.Random(seed)
        self._hot_blocks: deque = deque(maxlen=_HOT_SET_BLOCKS)
        self._sweep_position = [0] * len(phase.working_set)
        self._pc = 0
        self._code_blocks = max(
            phase.code_footprint_kb * 1024 // _BLOCK_BYTES, 1
        )
        # Per-branch-address behaviour for dynamic prediction: a "hard"
        # branch is 50/50 (a bimodal predictor misses it half the
        # time); an easy one is strongly taken.  The hard fraction is
        # chosen so the emergent mispredict rate matches the phase's
        # specified rate: m ~= 0.5*f + 0.03*(1-f).
        self._branch_bias: dict = {}
        self._branch_target: dict = {}
        self._hard_fraction = min(
            max((phase.mispredict_rate - 0.03) / 0.47, 0.0), 1.0
        )

    def _code_address(self, is_taken_branch: bool) -> int:
        """The next instruction's address: straight-line code advances
        sequentially through the footprint; a taken branch jumps to a
        random block within it (loops, calls)."""
        if is_taken_branch:
            self._pc = self.rng.randrange(self._code_blocks)
        address = (2 << 40) + self._pc * _BLOCK_BYTES
        # ~16 four-byte instructions per block before advancing.
        if self.rng.random() < 1.0 / 16.0:
            self._pc = (self._pc + 1) % self._code_blocks
        return address

    def _branch_behaviour(self, address: int):
        """(taken, target) for the branch at ``address`` this time."""
        if address not in self._branch_bias:
            hard = self.rng.random() < self._hard_fraction
            self._branch_bias[address] = 0.5 if hard else 0.97
            self._branch_target[address] = (
                (2 << 40) + self.rng.randrange(self._code_blocks) * _BLOCK_BYTES
            )
        taken = self.rng.random() < self._branch_bias[address]
        return taken, self._branch_target[address]

    def _dependency_distance(self) -> int:
        """Distance (in ops) to the producer of a source operand.

        A geometric distribution with mean ≈ the phase's ILP: shorter
        dependencies serialize execution, longer ones expose
        parallelism — this is the standard knob for targeting an ILP
        level in synthetic traces.
        """
        mean = max(self.phase.ilp, 1.0)
        p = 1.0 / (mean + 1.0)
        # Geometric sample (at least 1).
        distance = 1
        while self.rng.random() > p and distance < 64:
            distance += 1
        return distance

    def _address(self) -> int:
        """A memory address with working-set-shaped reuse.

        Two levels of locality: with probability ``1 - l1_miss_rate``
        the access re-touches a recently-used block (temporal locality
        the L1 captures, matching the phase's specified L1 behaviour);
        otherwise it goes to the L2-level working set — with
        probability matching each working-set chunk's share, a block
        inside a region of that chunk's size, the remainder being
        streaming traffic over a very large region.
        """
        if self._hot_blocks and self.rng.random() > self.phase.l1_miss_rate:
            return self.rng.choice(self._hot_blocks)
        address = self._cold_address()
        self._hot_blocks.append(address)
        return address

    def _cold_address(self) -> int:
        """Pick an L2-level address: a cyclic sweep over one of the
        working-set regions, or streaming traffic.

        Sweeping (rather than sampling uniformly) matches the phase
        model's step-capture semantics: a region that fits in the L2
        hits on every revisit after the first sweep, while a region
        larger than the L2 thrashes an LRU cache and captures almost
        nothing — the knee structure behind Fig. 1.
        """
        draw = self.rng.random()
        cumulative = 0.0
        previous_fraction = 0.0
        base = 0
        for index, (size_kb, fraction) in enumerate(self.phase.working_set):
            share = fraction - previous_fraction
            cumulative += share
            if draw < cumulative:
                blocks = max(size_kb * 1024 // _BLOCK_BYTES, 1)
                position = self._sweep_position[index]
                self._sweep_position[index] = (position + 1) % blocks
                return base + position * _BLOCK_BYTES
            previous_fraction = fraction
            base += 1 << 30  # distinct region per chunk
        streaming_blocks = (256 << 20) // _BLOCK_BYTES
        return (1 << 34) + self.rng.randrange(streaming_blocks) * _BLOCK_BYTES

    def generate(self, count: int) -> List[MicroOp]:
        """Generate ``count`` micro-ops."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        ops: List[MicroOp] = []
        for op_id in range(count):
            # The first source is the *critical* dependency, at a
            # geometric distance whose mean sets the trace's data-flow
            # ILP.  A possible second source points much further back
            # (usually already complete), so it widens the data-flow
            # graph without shortening the critical path — with two
            # near dependencies per op, the realized ILP would be
            # E[min(d1, d2)], roughly half the target.
            sources = []
            distance = self._dependency_distance()
            producer = op_id - distance
            if producer >= 0 and ops[producer].dest is not None:
                sources.append(ops[producer].dest)
            else:
                sources.append(self.rng.randrange(self.num_registers))
            if self.rng.random() < 0.6:
                stale = op_id - self.rng.randint(16, 64)
                if stale >= 0 and ops[stale].dest is not None:
                    sources.append(ops[stale].dest)
                else:
                    sources.append(self.rng.randrange(self.num_registers))
            dest = self.rng.randrange(self.num_registers)
            draw = self.rng.random()
            mem_fraction = self.phase.mem_refs_per_inst
            branch_fraction = self.phase.branch_fraction
            is_branch = mem_fraction <= draw < mem_fraction + branch_fraction
            code_address = self._code_address(
                is_taken_branch=is_branch and self.rng.random() < 0.6
            )
            if draw < mem_fraction:
                if self.rng.random() < 0.7:
                    ops.append(
                        MicroOp(
                            op_id=op_id,
                            kind=OpKind.LOAD,
                            sources=tuple(sources[:1]),
                            dest=dest,
                            address=self._address(),
                            code_address=code_address,
                        )
                    )
                else:
                    ops.append(
                        MicroOp(
                            op_id=op_id,
                            kind=OpKind.STORE,
                            sources=tuple(sources),
                            dest=None,
                            address=self._address(),
                            code_address=code_address,
                        )
                    )
            elif is_branch:
                taken, target = self._branch_behaviour(code_address)
                ops.append(
                    MicroOp(
                        op_id=op_id,
                        kind=OpKind.BRANCH,
                        sources=tuple(sources[:1]),
                        dest=None,
                        mispredicted=self.rng.random()
                        < self.phase.mispredict_rate,
                        code_address=code_address,
                        taken=taken,
                        branch_target=target,
                    )
                )
            else:
                ops.append(
                    MicroOp(
                        op_id=op_id,
                        kind=OpKind.ALU,
                        sources=tuple(sources),
                        dest=dest,
                        code_address=code_address,
                    )
                )
        return ops

    @staticmethod
    def stats(ops: List[MicroOp]) -> TraceStats:
        return TraceStats(
            instructions=len(ops),
            loads=sum(op.kind is OpKind.LOAD for op in ops),
            stores=sum(op.kind is OpKind.STORE for op in ops),
            branches=sum(op.kind is OpKind.BRANCH for op in ops),
            mispredicts=sum(op.mispredicted for op in ops),
        )
