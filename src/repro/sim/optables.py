"""Phase-keyed operating-point tables with a process-global LRU cache.

Every consumer of the analytic model's ground truth — the harness's
``true_points``, the oracle's per-phase envelope, the QoS-target rule,
the race/convex baseline constructions — ultimately needs the same
object: the list of :class:`~repro.runtime.optimizer.ConfigPoint`
operating points of one phase over one configuration space under one
cost model.  The seed engine recomputed that table scalar-by-scalar in
each of those places; this module computes it once (with the vectorized
:meth:`~repro.sim.perfmodel.PerformanceModel.ipc_grid` kernel) and
memoizes it process-wide, keyed by the *values* of all four inputs
(``Phase``, ``PerformanceModel`` and ``CostModel`` are frozen
dataclasses, so value-hashing is exact and safe across instances).

Tables also memoize their lower convex envelope, so an oracle that
solves Eqn. 5 on the same phase a thousand times pays for one hull.

With :data:`repro.perf.FAST` disabled the cache is bypassed and tables
are rebuilt with the original scalar loop — the reference path used by
the equivalence tests and the speed benchmarks.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from types import MappingProxyType
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

import numpy as np

from repro import perf
from repro.analysis import sanitize
from repro.arch.cost import CostModel, DEFAULT_COST_MODEL
from repro.arch.vcore import ConfigurationSpace, VCoreConfig, DEFAULT_CONFIG_SPACE
from repro.runtime.optimizer import ConfigPoint, IDLE_POINT, compute_envelope
from repro.sim.perfmodel import PerformanceModel, DEFAULT_PERF_MODEL
from repro.workloads.phase import Phase


class OperatingPointTable:
    """Immutable per-phase operating points with memoized derived views.

    Behaves as a ``Sequence[ConfigPoint]`` (the harness hands it to
    allocators as ``true_points``), and additionally offers O(1) IPC
    lookup by configuration, the table's maximum QoS, and a cached
    lower convex envelope keyed by the idle point.
    """

    __slots__ = ("points", "_ipc", "max_qos", "speedup_array", "_envelopes", "_sealed")

    def __init__(self, points: Tuple[ConfigPoint, ...]) -> None:
        if not points:
            raise ValueError("an operating-point table needs at least one point")
        self.points: Tuple[ConfigPoint, ...] = tuple(points)
        self._ipc: Mapping[VCoreConfig, float] = {
            point.config: point.speedup for point in self.points
        }
        self.speedup_array: np.ndarray = np.array(
            [point.speedup for point in self.points], dtype=np.float64
        )
        self.max_qos: float = max(point.speedup for point in self.points)
        self._envelopes: Dict[
            Tuple[Optional[VCoreConfig], float, float], tuple
        ] = {}
        self._sealed: bool = False

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[ConfigPoint]:
        return iter(self.points)

    def __getitem__(self, index):
        return self.points[index]

    def get_ipc(self, config: VCoreConfig) -> Optional[float]:
        """The table's QoS (IPC) for ``config``, or None if absent."""
        return self._ipc.get(config)

    def envelope(self, idle: ConfigPoint = IDLE_POINT) -> tuple:
        """Cached ``(hull, best_at)`` lower envelope for this table.

        The cached entry is published frozen — ``hull`` as a tuple and
        ``best_at`` as a read-only mapping view — because this object
        sits in the process-global table cache and the envelope may be
        handed to many threads/consumers at once.  (The memo insert
        itself is an idempotent dict store: racing threads compute the
        same value, so last-writer-wins is harmless under the GIL.)
        """
        key = (idle.config, idle.speedup, idle.cost_rate)
        cached = self._envelopes.get(key)
        if cached is None:
            hull, best_at = compute_envelope(self.points, idle)
            cached = (tuple(hull), MappingProxyType(best_at))
            self._envelopes[key] = cached
        return cached

    @property
    def sealed(self) -> bool:
        """Whether :meth:`seal` has frozen this table for publication."""
        return self._sealed

    def seal(self) -> "OperatingPointTable":
        """Freeze the table for publication into a shared cache.

        Marks the speedup ndarray read-only and replaces the IPC map
        with a ``MappingProxyType`` view, so any later in-place write
        through a cached table raises instead of silently corrupting
        every other consumer.  Idempotent; returns ``self``.
        """
        if not self._sealed:
            self.speedup_array.setflags(write=False)
            self._ipc = MappingProxyType(dict(self._ipc))
            self._sealed = True
        return self


def build_table_scalar(
    phase: Phase,
    model: PerformanceModel = DEFAULT_PERF_MODEL,
    space: ConfigurationSpace = DEFAULT_CONFIG_SPACE,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> OperatingPointTable:
    """Reference scalar construction (one ``ipc()`` call per config)."""
    return OperatingPointTable(
        tuple(
            ConfigPoint(
                config=config,
                speedup=model.ipc(phase, config),
                cost_rate=config.cost_rate(cost_model),
            )
            for config in space
        )
    )


def build_table_vectorized(
    phase: Phase,
    model: PerformanceModel = DEFAULT_PERF_MODEL,
    space: ConfigurationSpace = DEFAULT_CONFIG_SPACE,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> OperatingPointTable:
    """Whole-grid construction through the vectorized IPC kernel."""
    ipc = model.ipc_grid(phase, space).ravel()
    return OperatingPointTable(
        tuple(
            ConfigPoint(
                config=config,
                speedup=float(ipc[index]),
                cost_rate=config.cost_rate(cost_model),
            )
            for index, config in enumerate(space)
        )
    )


_CACHE_LOCK = threading.Lock()
_TABLE_CACHE: "OrderedDict[tuple, OperatingPointTable]" = OrderedDict()
_TABLE_CACHE_MAXSIZE = 4096
_HITS = 0
_MISSES = 0


def _cache_key(
    phase: Phase,
    model: PerformanceModel,
    space: ConfigurationSpace,
    cost_model: CostModel,
) -> tuple:
    return (phase, model, space.slice_counts, space.l2_sizes_kb, cost_model)


def operating_point_table(
    phase: Phase,
    model: PerformanceModel = DEFAULT_PERF_MODEL,
    space: ConfigurationSpace = DEFAULT_CONFIG_SPACE,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> OperatingPointTable:
    """The memoized operating-point table for one (phase, space) pair."""
    global _HITS, _MISSES
    if not perf.FAST:
        return build_table_scalar(phase, model, space, cost_model)
    key = _cache_key(phase, model, space, cost_model)
    with _CACHE_LOCK:
        table = _TABLE_CACHE.get(key)
        if table is not None:
            _TABLE_CACHE.move_to_end(key)
            _HITS += 1
            if sanitize.ENABLED:
                _verify_published(table, site="cache hit")
            return table
    table = build_table_vectorized(phase, model, space, cost_model)
    table.seal()
    if sanitize.ENABLED:
        _verify_published(table, site="publish")
    with _CACHE_LOCK:
        _MISSES += 1
        _TABLE_CACHE[key] = table
        _TABLE_CACHE.move_to_end(key)
        while len(_TABLE_CACHE) > _TABLE_CACHE_MAXSIZE:
            _TABLE_CACHE.popitem(last=False)
    return table


def _verify_published(table: OperatingPointTable, site: str) -> None:
    """Sanitizer hook: a table in the shared cache must be sealed."""
    owner = "repro.sim.optables.operating_point_table"
    if not table.sealed:
        sanitize.violation(
            "cache-publish", owner, site, "table in cache was never sealed"
        )
    sanitize.verify_frozen(table.speedup_array, "cache-publish", owner, site)
    if not isinstance(table._ipc, MappingProxyType):
        sanitize.violation(
            "cache-publish", owner, site, "table IPC map is a bare dict"
        )


def cache_info() -> Dict[str, int]:
    """Hit/miss/size counters of the process-global table cache."""
    with _CACHE_LOCK:
        return {
            "hits": _HITS,
            "misses": _MISSES,
            "size": len(_TABLE_CACHE),
            "maxsize": _TABLE_CACHE_MAXSIZE,
        }


def cache_clear() -> None:
    """Drop every memoized table (benchmarks and tests)."""
    global _HITS, _MISSES
    with _CACHE_LOCK:
        _TABLE_CACHE.clear()
        _HITS = 0
        _MISSES = 0
