"""Phase-keyed operating-point tables with a process-global LRU cache.

Every consumer of the analytic model's ground truth — the harness's
``true_points``, the oracle's per-phase envelope, the QoS-target rule,
the race/convex baseline constructions — ultimately needs the same
object: the list of :class:`~repro.runtime.optimizer.ConfigPoint`
operating points of one phase over one configuration space under one
cost model.  The seed engine recomputed that table scalar-by-scalar in
each of those places; this module computes it once (with the vectorized
:meth:`~repro.sim.perfmodel.PerformanceModel.ipc_grid` kernel) and
memoizes it process-wide, keyed by the *values* of all four inputs
(``Phase``, ``PerformanceModel`` and ``CostModel`` are frozen
dataclasses, so value-hashing is exact and safe across instances).

Tables also memoize their lower convex envelope, so an oracle that
solves Eqn. 5 on the same phase a thousand times pays for one hull.

This module is the **L1** (front) tier of the three-tier operating-
point store.  On an L1 miss the lookup consults
:mod:`repro.sim.optstore`: **L2**, a cross-process read-only shared-
memory tier whose sealed payloads the rebuilt table's
``speedup_array`` aliases zero-copy, and **L3**, a content-hash-keyed
on-disk ``.npz`` cache that additionally persists the default-idle
envelope hull (see :meth:`OperatingPointTable.prime_envelope`).  Only
a verified tier miss pays for a build, and the build happens under the
fleet-wide :func:`repro.sim.optstore.build_guard` so each (phase-key,
grid) table is constructed exactly once across a whole worker pool.
:func:`ensure_surface` warms the shared tiers without constructing any
``ConfigPoint`` at all — the cheap path sweeps use to pre-heat a cache
directory.  :func:`optable_cache_stats` reports all tiers at once.

With :data:`repro.perf.FAST` disabled every tier is bypassed and
tables are rebuilt with the original scalar loop — the reference path
used by the equivalence tests and the speed benchmarks.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from types import MappingProxyType
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

import numpy as np

from repro import cacheconf, perf
from repro.analysis import sanitize
from repro.arch.cost import CostModel, DEFAULT_COST_MODEL
from repro.arch.vcore import ConfigurationSpace, VCoreConfig, DEFAULT_CONFIG_SPACE
from repro.runtime.optimizer import (
    ConfigPoint,
    IDLE_POINT,
    _lower_hull,
    compute_envelope,
)
from repro.sim import optstore
from repro.sim.perfmodel import PerformanceModel, DEFAULT_PERF_MODEL
from repro.workloads.phase import Phase


class OperatingPointTable:
    """Immutable per-phase operating points with memoized derived views.

    Behaves as a ``Sequence[ConfigPoint]`` (the harness hands it to
    allocators as ``true_points``), and additionally offers O(1) IPC
    lookup by configuration, the table's maximum QoS, and a cached
    lower convex envelope keyed by the idle point.
    """

    __slots__ = ("points", "_ipc", "max_qos", "speedup_array", "_envelopes", "_sealed")

    def __init__(self, points: Tuple[ConfigPoint, ...]) -> None:
        if not points:
            raise ValueError("an operating-point table needs at least one point")
        self.points: Tuple[ConfigPoint, ...] = tuple(points)
        self._ipc: Mapping[VCoreConfig, float] = {
            point.config: point.speedup for point in self.points
        }
        self.speedup_array: np.ndarray = np.array(
            [point.speedup for point in self.points], dtype=np.float64
        )
        self.max_qos: float = max(point.speedup for point in self.points)
        self._envelopes: Dict[
            Tuple[Optional[VCoreConfig], float, float], tuple
        ] = {}
        self._sealed: bool = False

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[ConfigPoint]:
        return iter(self.points)

    def __getitem__(self, index):
        return self.points[index]

    def get_ipc(self, config: VCoreConfig) -> Optional[float]:
        """The table's QoS (IPC) for ``config``, or None if absent."""
        return self._ipc.get(config)

    def envelope(self, idle: ConfigPoint = IDLE_POINT) -> tuple:
        """Cached ``(hull, best_at)`` lower envelope for this table.

        The cached entry is published frozen — ``hull`` as a tuple and
        ``best_at`` as a read-only mapping view — because this object
        sits in the process-global table cache and the envelope may be
        handed to many threads/consumers at once.  (The memo insert
        itself is an idempotent dict store: racing threads compute the
        same value, so last-writer-wins is harmless under the GIL.)
        """
        key = (idle.config, idle.speedup, idle.cost_rate)
        cached = self._envelopes.get(key)
        if cached is None:
            hull, best_at = compute_envelope(self.points, idle)
            cached = (tuple(hull), MappingProxyType(best_at))
            self._envelopes[key] = cached
        return cached

    def prime_envelope(
        self, hull: np.ndarray, idle: ConfigPoint = IDLE_POINT
    ) -> "OperatingPointTable":
        """Pre-seed the envelope memo from a stored (H, 2) hull array.

        The disk tier persists the default-idle hull next to the
        speedups, so a warm load skips the monotone-chain rebuild.
        ``best_at`` is reconstructed with the exact first-wins walk of
        :func:`~repro.runtime.optimizer.compute_envelope`, and the hull
        vertices round-trip float64-exactly, so the primed entry is
        bit-identical to what the lazy computation would produce.
        Callers only pass checksum-verified stored hulls.
        """
        best_at: Dict[Tuple[float, float], ConfigPoint] = {}
        for point in self.points:
            pair = (point.speedup, point.cost_rate)
            if pair not in best_at:
                best_at[pair] = point
        idle_pair = (idle.speedup, idle.cost_rate)
        if idle_pair not in best_at:
            best_at[idle_pair] = idle
        key = (idle.config, idle.speedup, idle.cost_rate)
        vertices = tuple(
            (float(speedup), float(cost)) for speedup, cost in hull
        )
        self._envelopes[key] = (vertices, MappingProxyType(best_at))
        return self

    @property
    def sealed(self) -> bool:
        """Whether :meth:`seal` has frozen this table for publication."""
        return self._sealed

    def seal(self) -> "OperatingPointTable":
        """Freeze the table for publication into a shared cache.

        Marks the speedup ndarray read-only and replaces the IPC map
        with a ``MappingProxyType`` view, so any later in-place write
        through a cached table raises instead of silently corrupting
        every other consumer.  Idempotent; returns ``self``.
        """
        if not self._sealed:
            self.speedup_array.setflags(write=False)
            self._ipc = MappingProxyType(dict(self._ipc))
            self._sealed = True
        return self


def build_table_scalar(
    phase: Phase,
    model: PerformanceModel = DEFAULT_PERF_MODEL,
    space: ConfigurationSpace = DEFAULT_CONFIG_SPACE,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> OperatingPointTable:
    """Reference scalar construction (one ``ipc()`` call per config)."""
    return OperatingPointTable(
        tuple(
            ConfigPoint(
                config=config,
                speedup=model.ipc(phase, config),
                cost_rate=config.cost_rate(cost_model),
            )
            for config in space
        )
    )


def build_table_vectorized(
    phase: Phase,
    model: PerformanceModel = DEFAULT_PERF_MODEL,
    space: ConfigurationSpace = DEFAULT_CONFIG_SPACE,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> OperatingPointTable:
    """Whole-grid construction through the vectorized IPC kernel."""
    ipc = model.ipc_grid(phase, space).ravel()
    return OperatingPointTable(
        tuple(
            ConfigPoint(
                config=config,
                speedup=float(ipc[index]),
                cost_rate=config.cost_rate(cost_model),
            )
            for index, config in enumerate(space)
        )
    )


_CACHE_LOCK = threading.Lock()
_TABLE_CACHE: "OrderedDict[tuple, OperatingPointTable]" = OrderedDict()
_TABLE_CACHE_MAXSIZE = 4096
_HITS = 0
_MISSES = 0


def _cache_key(
    phase: Phase,
    model: PerformanceModel,
    space: ConfigurationSpace,
    cost_model: CostModel,
) -> tuple:
    return (phase, model, space.slice_counts, space.l2_sizes_kb, cost_model)


def _grid_values(space: ConfigurationSpace) -> int:
    return len(space.slice_counts) * len(space.l2_sizes_kb)


def _table_from_payload(
    payload: "optstore.Payload",
    space: ConfigurationSpace,
    cost_model: CostModel,
) -> OperatingPointTable:
    """Reconstitute a sealed table from a shared-tier surface.

    ``ConfigPoint`` speedups round-trip float64-exactly through the
    stored array, so the result is bit-identical to the table the
    publisher built.  A shm payload's view replaces the freshly built
    ndarray — the table then aliases the shared buffer zero-copy (the
    view is already read-only; :meth:`~OperatingPointTable.seal` keeps
    it that way).  A disk payload's hull pre-seeds the envelope memo.
    """
    speedups = payload.speedups
    table = OperatingPointTable(
        tuple(
            ConfigPoint(
                config=config,
                speedup=float(speedups[index]),
                cost_rate=config.cost_rate(cost_model),
            )
            for index, config in enumerate(space)
        )
    )
    if payload.source == "shm":
        table.speedup_array = speedups
    table.seal()
    if payload.hull is not None:
        table.prime_envelope(payload.hull)
    return table


def _shared_or_built(
    key: tuple,
    phase: Phase,
    model: PerformanceModel,
    space: ConfigurationSpace,
    cost_model: CostModel,
) -> OperatingPointTable:
    """Resolve an L1 miss against L2/L3, building only on a full miss.

    The build sits inside :func:`repro.sim.optstore.build_guard` with a
    post-acquire re-lookup, so while a store is active exactly one
    process pays for each (phase-key, grid) table and everyone else
    attaches to its published surface.
    """
    values = _grid_values(space)
    digest = optstore.table_digest(key, values)
    payload = optstore.lookup(digest, values)
    if payload is None:
        with optstore.build_guard():
            payload = optstore.lookup(digest, values)
            if payload is None:
                table = build_table_vectorized(
                    phase, model, space, cost_model
                )
                table.seal()
                hull, _ = table.envelope()
                optstore.publish(
                    digest,
                    table.speedup_array,
                    np.array(hull, dtype=np.float64),
                )
                if sanitize.ENABLED:
                    _verify_published(table, site="publish")
                return table
    table = _table_from_payload(payload, space, cost_model)
    if sanitize.ENABLED:
        _verify_published(table, site=f"{payload.source} attach")
    return table


def operating_point_table(
    phase: Phase,
    model: PerformanceModel = DEFAULT_PERF_MODEL,
    space: ConfigurationSpace = DEFAULT_CONFIG_SPACE,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> OperatingPointTable:
    """The memoized operating-point table for one (phase, space) pair."""
    global _HITS, _MISSES
    if not perf.FAST:
        return build_table_scalar(phase, model, space, cost_model)
    key = _cache_key(phase, model, space, cost_model)
    with _CACHE_LOCK:
        table = _TABLE_CACHE.get(key)
        if table is not None:
            _TABLE_CACHE.move_to_end(key)
            _HITS += 1
            optstore.bump("l1_hits")
            if sanitize.ENABLED:
                _verify_published(table, site="cache hit")
            return table
    table = _shared_or_built(key, phase, model, space, cost_model)
    with _CACHE_LOCK:
        _MISSES += 1
        optstore.bump("l1_misses")
        _TABLE_CACHE[key] = table
        _TABLE_CACHE.move_to_end(key)
        while len(_TABLE_CACHE) > _TABLE_CACHE_MAXSIZE:
            _TABLE_CACHE.popitem(last=False)
    return table


def ensure_surface(
    phase: Phase,
    model: PerformanceModel = DEFAULT_PERF_MODEL,
    space: ConfigurationSpace = DEFAULT_CONFIG_SPACE,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> Tuple[str, str]:
    """Warm one table surface into the shared tiers, without L1.

    The warm-up path of ``repro cache warm`` and the sweep pre-heater:
    when the surface is already shared (and, with the disk tier on,
    carries its stored hull) this verifies and returns immediately —
    no ``ConfigPoint`` is ever constructed, which is what makes a
    disk-warm sweep start several times faster than a cold one.  On a
    miss the speedup grid and default-idle hull are computed directly
    from the vectorized kernel (bit-identical to the table path: same
    float64 grid, and the hull depends only on the deduplicated
    (speedup, cost) pair set that :func:`compute_envelope` uses) and
    published under the fleet-wide build guard.

    Returns ``(digest, fingerprint)`` — the content digest naming the
    surface and the sha256 of its payload, stable across cold and warm
    runs.
    """
    key = _cache_key(phase, model, space, cost_model)
    values = _grid_values(space)
    digest = optstore.table_digest(key, values)
    with optstore.build_guard():
        payload = optstore.lookup(digest, values)
        if payload is not None and payload.checksum:
            if payload.hull is not None or cacheconf.cache_dir() is None:
                return digest, payload.checksum
            # A shm hit carries no hull; the disk entry (if any) does.
            stored = optstore.disk_probe(digest, values)
            if stored is not None and stored.hull is not None:
                return digest, stored.checksum
        speedups = model.ipc_grid(phase, space).ravel()
        costs = tuple(config.cost_rate(cost_model) for config in space)
        pairs = {
            (float(speedups[index]), costs[index])
            for index in range(len(costs))
        }
        pairs.add((IDLE_POINT.speedup, IDLE_POINT.cost_rate))
        hull = _lower_hull(list(pairs))
        speedups.setflags(write=False)
        fingerprint = optstore.publish(
            digest, speedups, np.array(hull, dtype=np.float64)
        )
        return digest, fingerprint


def _verify_published(table: OperatingPointTable, site: str) -> None:
    """Sanitizer hook: a table in the shared cache must be sealed."""
    owner = "repro.sim.optables.operating_point_table"
    if not table.sealed:
        sanitize.violation(
            "cache-publish", owner, site, "table in cache was never sealed"
        )
    sanitize.verify_frozen(table.speedup_array, "cache-publish", owner, site)
    if not isinstance(table._ipc, MappingProxyType):
        sanitize.violation(
            "cache-publish", owner, site, "table IPC map is a bare dict"
        )


def cache_info() -> Dict[str, int]:
    """Hit/miss/size counters of the process-global table cache."""
    with _CACHE_LOCK:
        return {
            "hits": _HITS,
            "misses": _MISSES,
            "size": len(_TABLE_CACHE),
            "maxsize": _TABLE_CACHE_MAXSIZE,
        }


def cache_clear() -> None:
    """Drop every memoized table (benchmarks and tests)."""
    global _HITS, _MISSES
    with _CACHE_LOCK:
        _TABLE_CACHE.clear()
        _HITS = 0
        _MISSES = 0


def optable_cache_stats() -> Dict[str, object]:
    """Per-tier statistics of the whole operating-point store.

    ``l1`` is this module's LRU (:func:`cache_info`); ``local`` /
    ``fleet`` are the tier hit/miss/build/byte counters (fleet-summed
    over every process attached to the shared store); ``shm`` and
    ``disk`` describe the L2/L3 backings.  This is what ``repro cache
    info`` prints and what sweep timing summaries embed.
    """
    combined: Dict[str, object] = {"l1": cache_info()}
    combined.update(optstore.stats())
    return combined
