"""Trace files: persist and replay micro-op traces.

The paper's SSim is driven by GEM5 full-system traces.  Our synthetic
traces play that role; this module gives them the same workflow — write
a generated trace to disk once, replay it across many experiments — so
cycle-tier studies are exactly repeatable and shareable.

Format (v2): one op per line, tab-separated::

    op_id  kind  dest  sources(,)  address  code_address  mispredicted
    taken  branch_target

with ``-`` for absent fields, preceded by a one-line header recording
the format version and op count.  v1 files (7 fields, before dynamic
branch prediction) still load.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.sim.isa import MicroOp, OpKind

FORMAT_HEADER_V1 = "#ssim-trace v1"
FORMAT_HEADER = "#ssim-trace v2"


class TraceFormatError(ValueError):
    """Raised when a trace file cannot be parsed."""


def _field(value) -> str:
    return "-" if value is None else str(value)


def _parse_optional_int(token: str):
    return None if token == "-" else int(token)


def save_trace(ops: Iterable[MicroOp], path: str) -> int:
    """Write a trace; returns the number of ops written."""
    ops = list(ops)
    with open(path, "w") as handle:
        handle.write(f"{FORMAT_HEADER} count={len(ops)}\n")
        for op in ops:
            sources = ",".join(str(reg) for reg in op.sources) or "-"
            taken = "-" if op.taken is None else ("1" if op.taken else "0")
            handle.write(
                "\t".join(
                    (
                        str(op.op_id),
                        op.kind.value,
                        _field(op.dest),
                        sources,
                        _field(op.address),
                        _field(op.code_address),
                        "1" if op.mispredicted else "0",
                        taken,
                        _field(op.branch_target),
                    )
                )
                + "\n"
            )
    return len(ops)


def load_trace(path: str) -> List[MicroOp]:
    """Read a trace written by :func:`save_trace`."""
    ops: List[MicroOp] = []
    with open(path) as handle:
        header = handle.readline().rstrip("\n")
        if not (
            header.startswith(FORMAT_HEADER)
            or header.startswith(FORMAT_HEADER_V1)
        ):
            raise TraceFormatError(
                f"{path}: not an SSim trace (header {header!r})"
            )
        try:
            expected = int(header.split("count=")[1])
        except (IndexError, ValueError) as error:
            raise TraceFormatError(f"{path}: malformed header") from error
        for line_number, line in enumerate(handle, start=2):
            line = line.rstrip("\n")
            if not line:
                continue
            parts = line.split("\t")
            if len(parts) not in (7, 9):
                raise TraceFormatError(
                    f"{path}:{line_number}: expected 7 or 9 fields, "
                    f"got {len(parts)}"
                )
            try:
                sources = (
                    ()
                    if parts[3] == "-"
                    else tuple(int(reg) for reg in parts[3].split(","))
                )
                taken = None
                branch_target = None
                if len(parts) == 9:
                    if parts[7] != "-":
                        taken = parts[7] == "1"
                    branch_target = _parse_optional_int(parts[8])
                ops.append(
                    MicroOp(
                        op_id=int(parts[0]),
                        kind=OpKind(parts[1]),
                        dest=_parse_optional_int(parts[2]),
                        sources=sources,
                        address=_parse_optional_int(parts[4]),
                        code_address=_parse_optional_int(parts[5]),
                        mispredicted=parts[6] == "1",
                        taken=taken,
                        branch_target=branch_target,
                    )
                )
            except (ValueError, KeyError) as error:
                raise TraceFormatError(
                    f"{path}:{line_number}: {error}"
                ) from error
    if len(ops) != expected:
        raise TraceFormatError(
            f"{path}: header promised {expected} ops, found {len(ops)}"
        )
    return ops
