"""Global fast-path switch for the experiment engine.

The evaluation engine has two numerically-equivalent implementations of
its hot loops:

* the **fast paths** — the vectorized performance-model kernel, the
  process-global operating-point table cache, and the incrementally
  maintained learned-point/lower-hull state (the default); and
* the **reference paths** — the original scalar, recompute-everything
  code, kept both as the ground truth for equivalence tests and as the
  baseline the speed benchmarks measure against.

``FAST`` toggles between them at run time.  The switch exists so a
single process can run the same fixed-seed experiment both ways and
assert bit-identical results — the strongest possible guarantee that
the optimization layers changed nothing but wall-clock time.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

FAST = True
"""When True (the default), use the vectorized/cached engine paths."""


def fast_paths_enabled() -> bool:
    """Whether the engine's fast paths are currently active."""
    return FAST


def set_fast_paths(enabled: bool) -> None:
    """Globally enable or disable the engine's fast paths."""
    global FAST
    FAST = bool(enabled)


@contextmanager
def fast_paths(enabled: bool) -> Iterator[None]:
    """Temporarily force the fast paths on or off (for benchmarks/tests)."""
    global FAST
    previous = FAST
    FAST = bool(enabled)
    try:
        yield
    finally:
        FAST = previous
