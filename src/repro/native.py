"""Optional compiled batch-stepping core for the cycle tier.

The struct-of-arrays batch kernel (:mod:`repro.sim.batchpipe`) has a
hot inner loop — one event epoch per cell per step — whose cost is
pure interpreter overhead.  This module compiles ``sim/_batchcore.c``
on demand with the host C compiler and loads it through :mod:`ctypes`,
following the shape ROADMAP cites from ``subhft``'s ``rust_core``: an
*optional* accelerated core behind a pure-Python contract, with the
object-based pipeline retained as the always-runnable twin and
bit-identity asserted in tests.  Nothing is installed: if no compiler
is present (or ``REPRO_NATIVE`` disables the core) every caller falls
back to the pure-Python path.

Like :mod:`repro.cacheconf`, the host-level switches are read from the
environment here, once, at the top of the package — the engine
directories themselves are forbidden from touching ``os.environ`` by
the ``env-read`` determinism rule:

* ``REPRO_NATIVE=0|off|none|disabled`` keeps the compiled core off;
* ``REPRO_NATIVE_DIR=<path>`` overrides where the shared object is
  built (default: a per-user directory under the system temp root).

The switch can never change a result — the compiled kernel is
bit-identical to the object pipeline (enforced by the `fast-parity`
twin tests) — it only selects how fast the batch tier runs.  Build
artifacts are keyed by a content hash of the C source and compiler
identity, written via temp-file + atomic rename, so concurrent
processes and stale sources are both safe.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
from pathlib import Path
from typing import List, Optional, Union

import numpy as np

#: Environment values (case-insensitive) that mean "compiled core off".
_OFF_VALUES = frozenset({"0", "off", "none", "disabled"})

#: Compile command prefix; the source and output paths are appended.
_CFLAGS = ("-O2", "-fPIC", "-shared")

_SOURCE_PATH = Path(__file__).parent / "sim" / "_batchcore.c"

_NATIVE_LOCK = threading.Lock()


def _resolve_dir(text: Union[str, Path, None]) -> Path:
    if isinstance(text, Path):
        return text.expanduser()
    if text is not None and text.strip():
        return Path(text).expanduser()
    uid = getattr(os, "getuid", lambda: 0)()
    return Path(tempfile.gettempdir()) / f"repro-native-{uid}"


_ENABLED: bool = (
    os.environ.get("REPRO_NATIVE", "1").strip().lower() not in _OFF_VALUES
)
_BUILD_DIR: Path = _resolve_dir(os.environ.get("REPRO_NATIVE_DIR"))
_CORE: Optional["NativeBatchCore"] = None
_CORE_TRIED: bool = False
_CORE_ERROR: Optional[str] = None

_I64P = ctypes.POINTER(ctypes.c_int64)
_I8P = ctypes.POINTER(ctypes.c_int8)


class NativeBatchCore:
    """ctypes wrapper around the compiled ``repro_run_batch`` entry."""

    def __init__(self, library: ctypes.CDLL, path: Path) -> None:
        self.path = path
        fn = library.repro_run_batch
        fn.restype = ctypes.c_int64
        fn.argtypes = [
            ctypes.c_int64,
            ctypes.c_int64,
            ctypes.c_int64,
            _I64P,
            _I64P,
            _I8P,
            _I8P,
            _I8P,
            _I64P,
            _I64P,
            _I64P,
            _I64P,
            _I64P,
            _I64P,
        ]
        self._fn = fn

    def run_batch(
        self,
        n_cells: int,
        max_slices: int,
        prod_width: int,
        params: np.ndarray,
        cell_conf: np.ndarray,
        kinds: np.ndarray,
        is_mem: np.ndarray,
        mispredicted: np.ndarray,
        addresses: np.ndarray,
        code_addresses: np.ndarray,
        producers: np.ndarray,
        warm: np.ndarray,
        out_cell: np.ndarray,
        out_slice: np.ndarray,
    ) -> int:
        """Invoke the compiled lockstep kernel; returns its status code
        (0 = ok, negative = allocation failure)."""
        for name, array, dtype in (
            ("params", params, np.int64),
            ("cell_conf", cell_conf, np.int64),
            ("kinds", kinds, np.int8),
            ("is_mem", is_mem, np.int8),
            ("mispredicted", mispredicted, np.int8),
            ("addresses", addresses, np.int64),
            ("code_addresses", code_addresses, np.int64),
            ("producers", producers, np.int64),
            ("warm", warm, np.int64),
            ("out_cell", out_cell, np.int64),
            ("out_slice", out_slice, np.int64),
        ):
            if array.dtype != dtype or not array.flags.c_contiguous:
                raise ValueError(
                    f"{name}: need C-contiguous {np.dtype(dtype).name}, "
                    f"got {array.dtype}"
                )
        return int(
            self._fn(
                n_cells,
                max_slices,
                prod_width,
                params.ctypes.data_as(_I64P),
                cell_conf.ctypes.data_as(_I64P),
                kinds.ctypes.data_as(_I8P),
                is_mem.ctypes.data_as(_I8P),
                mispredicted.ctypes.data_as(_I8P),
                addresses.ctypes.data_as(_I64P),
                code_addresses.ctypes.data_as(_I64P),
                producers.ctypes.data_as(_I64P),
                warm.ctypes.data_as(_I64P),
                out_cell.ctypes.data_as(_I64P),
                out_slice.ctypes.data_as(_I64P),
            )
        )


def _find_compiler() -> Optional[str]:
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _build_and_load_locked() -> NativeBatchCore:
    """Compile (if needed) and load the core.  Caller holds the lock."""
    compiler = _find_compiler()
    if compiler is None:
        raise RuntimeError("no C compiler on PATH (tried cc, gcc, clang)")
    source = _SOURCE_PATH.read_bytes()
    digest = hashlib.sha256(
        source + compiler.encode() + " ".join(_CFLAGS).encode()
    ).hexdigest()[:16]
    build_dir = _BUILD_DIR
    artifact = build_dir / f"_batchcore-{digest}.so"
    if not artifact.exists():
        build_dir.mkdir(parents=True, exist_ok=True)
        handle, tmp_name = tempfile.mkstemp(
            suffix=".so.tmp", dir=str(build_dir)
        )
        os.close(handle)
        try:
            result = subprocess.run(
                [compiler, *_CFLAGS, "-o", tmp_name, str(_SOURCE_PATH)],
                capture_output=True,
                text=True,
            )
            if result.returncode != 0:
                raise RuntimeError(
                    f"{compiler} failed ({result.returncode}): "
                    f"{result.stderr.strip()[:500]}"
                )
            # Atomic publish: concurrent builders race benignly — both
            # produce identical artifacts keyed by the same digest.
            os.replace(tmp_name, artifact)
        finally:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
    library = ctypes.CDLL(str(artifact))
    return NativeBatchCore(library, artifact)


def batch_core() -> Optional[NativeBatchCore]:
    """The compiled batch core, or ``None`` when unavailable.

    Builds and loads at most once per process; a failed build is
    remembered (see :func:`batch_core_error`) and not retried until
    :func:`set_native_enabled` resets the state.
    """
    global _CORE, _CORE_TRIED, _CORE_ERROR
    with _NATIVE_LOCK:
        if not _ENABLED:
            return None
        if _CORE_TRIED:
            return _CORE
        _CORE_TRIED = True
        try:
            _CORE = _build_and_load_locked()
        except (OSError, RuntimeError) as exc:
            _CORE = None
            _CORE_ERROR = str(exc)
        return _CORE


def batch_core_error() -> Optional[str]:
    """Why the last build attempt failed, or None."""
    with _NATIVE_LOCK:
        return _CORE_ERROR


def native_enabled() -> bool:
    with _NATIVE_LOCK:
        return _ENABLED


def set_native_enabled(flag: bool) -> None:
    """Override the ``REPRO_NATIVE`` switch (tests, CLI).

    Re-enabling also clears the memoized build attempt so the next
    :func:`batch_core` call retries.
    """
    global _ENABLED, _CORE, _CORE_TRIED, _CORE_ERROR
    with _NATIVE_LOCK:
        _ENABLED = bool(flag)
        _CORE = None
        _CORE_TRIED = False
        _CORE_ERROR = None


def set_build_dir(target: Union[str, Path, None]) -> Path:
    """Override the build directory (``REPRO_NATIVE_DIR``); resets the
    memoized core so the next load uses the new location."""
    global _BUILD_DIR, _CORE, _CORE_TRIED, _CORE_ERROR
    resolved = _resolve_dir(target)
    with _NATIVE_LOCK:
        _BUILD_DIR = resolved
        _CORE = None
        _CORE_TRIED = False
        _CORE_ERROR = None
    return resolved
