"""Virtual core configurations and the configuration space.

A *virtual core* (VCore) is composed of one or more Slices and one or
more L2 cache banks (Section III-A).  The evaluation explores every
VCore built from 1–8 Slices and 64 KB–8 MB of L2 in power-of-two steps
(Section II-A), a 64-point grid per application phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.arch.cache import CacheGeometry, mean_l2_hit_delay
from repro.arch.cost import CostModel, DEFAULT_COST_MODEL
from repro.arch.params import CacheParams, DEFAULT_CACHE_PARAMS


@dataclass(frozen=True, order=True)
class VCoreConfig:
    """A virtual core: ``slices`` Slices plus ``l2_kb`` KB of L2 cache."""

    slices: int
    l2_kb: int

    def __post_init__(self) -> None:
        if self.slices <= 0:
            raise ValueError(f"slices must be positive, got {self.slices}")
        if self.l2_kb <= 0:
            raise ValueError(f"l2_kb must be positive, got {self.l2_kb}")

    @property
    def l2_banks(self) -> int:
        """Number of 64 KB banks composing the L2."""
        banks, remainder = divmod(self.l2_kb, DEFAULT_CACHE_PARAMS.l2_bank.size_kb)
        if remainder:
            raise ValueError(
                f"l2_kb={self.l2_kb} is not a whole number of "
                f"{DEFAULT_CACHE_PARAMS.l2_bank.size_kb} KB banks"
            )
        return banks

    @property
    def tiles(self) -> int:
        """Total fabric tiles occupied (Slices + banks)."""
        return self.slices + self.l2_banks

    def geometry(self, params: CacheParams = DEFAULT_CACHE_PARAMS) -> CacheGeometry:
        return CacheGeometry(
            num_banks=self.l2_banks, num_slices=self.slices, params=params
        )

    def mean_l2_hit_delay(
        self, params: CacheParams = DEFAULT_CACHE_PARAMS
    ) -> float:
        return mean_l2_hit_delay(self.l2_banks, self.slices, params)

    def cost_rate(self, model: CostModel = DEFAULT_COST_MODEL) -> float:
        """Rental price of the VCore in $/hour."""
        return model.rate(self.slices, self.l2_kb)

    def __str__(self) -> str:
        if self.l2_kb >= 1024 and self.l2_kb % 1024 == 0:
            return f"{self.slices}S/{self.l2_kb // 1024}MB"
        return f"{self.slices}S/{self.l2_kb}KB"


class ConfigurationSpace:
    """The discrete grid of VCore configurations explored by the runtime.

    Default: Slices in 1..8 and L2 in power-of-two steps from 64 KB to
    8 MB, matching Section II-A.
    """

    def __init__(
        self,
        slice_counts: Sequence[int] = tuple(range(1, 9)),
        l2_sizes_kb: Sequence[int] = tuple(64 * 2 ** i for i in range(8)),
    ) -> None:
        if not slice_counts:
            raise ValueError("slice_counts must be non-empty")
        if not l2_sizes_kb:
            raise ValueError("l2_sizes_kb must be non-empty")
        if sorted(set(slice_counts)) != sorted(slice_counts):
            raise ValueError("slice_counts must be unique")
        if sorted(set(l2_sizes_kb)) != sorted(l2_sizes_kb):
            raise ValueError("l2_sizes_kb must be unique")
        self.slice_counts: Tuple[int, ...] = tuple(sorted(slice_counts))
        self.l2_sizes_kb: Tuple[int, ...] = tuple(sorted(l2_sizes_kb))
        self._configs: Tuple[VCoreConfig, ...] = tuple(
            VCoreConfig(slices=s, l2_kb=c)
            for s in self.slice_counts
            for c in self.l2_sizes_kb
        )
        self._index = {config: i for i, config in enumerate(self._configs)}

    def __len__(self) -> int:
        return len(self._configs)

    def __iter__(self) -> Iterator[VCoreConfig]:
        return iter(self._configs)

    def __contains__(self, config: VCoreConfig) -> bool:
        return config in self._index

    def __getitem__(self, index: int) -> VCoreConfig:
        return self._configs[index]

    def index_of(self, config: VCoreConfig) -> int:
        try:
            return self._index[config]
        except KeyError:
            raise KeyError(f"{config} is not in this configuration space") from None

    @property
    def configs(self) -> Tuple[VCoreConfig, ...]:
        return self._configs

    @property
    def minimum(self) -> VCoreConfig:
        """Cheapest configuration: fewest Slices, smallest L2."""
        return VCoreConfig(self.slice_counts[0], self.l2_sizes_kb[0])

    @property
    def maximum(self) -> VCoreConfig:
        """Largest configuration: most Slices, biggest L2."""
        return VCoreConfig(self.slice_counts[-1], self.l2_sizes_kb[-1])

    def neighbors(self, config: VCoreConfig) -> List[VCoreConfig]:
        """Grid neighbors (±1 step in Slices or L2) of ``config``."""
        if config not in self:
            raise KeyError(f"{config} is not in this configuration space")
        slice_pos = self.slice_counts.index(config.slices)
        l2_pos = self.l2_sizes_kb.index(config.l2_kb)
        out: List[VCoreConfig] = []
        if slice_pos > 0:
            out.append(VCoreConfig(self.slice_counts[slice_pos - 1], config.l2_kb))
        if slice_pos < len(self.slice_counts) - 1:
            out.append(VCoreConfig(self.slice_counts[slice_pos + 1], config.l2_kb))
        if l2_pos > 0:
            out.append(VCoreConfig(config.slices, self.l2_sizes_kb[l2_pos - 1]))
        if l2_pos < len(self.l2_sizes_kb) - 1:
            out.append(VCoreConfig(config.slices, self.l2_sizes_kb[l2_pos + 1]))
        return out

    def sorted_by_cost(
        self, model: CostModel = DEFAULT_COST_MODEL
    ) -> List[VCoreConfig]:
        return sorted(self._configs, key=lambda config: config.cost_rate(model))


DEFAULT_CONFIG_SPACE = ConfigurationSpace()
