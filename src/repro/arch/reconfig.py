"""Reconfiguration commands and their cycle costs (Sections III-B, VI-A).

The runtime reshapes a virtual core by sending EXPAND / SHRINK commands
over the CASH Runtime Interface Network, targeting individual Slices or
L2 banks.  The four microarchitectural overheads are:

* **Slice expansion** — only a pipeline flush, ~15 cycles;
* **Slice contraction** — at most 64 cycles more than expansion, to
  flush primary register values to the surviving Slices (bounded by the
  local register count);
* **L2 expansion** — the bank arrives empty; the address-hash remap is
  overlapped with execution, so the visible cost is a pipeline flush;
* **L2 contraction** — dirty lines stream to memory over the L2
  network: worst case ``BankSize / NetworkWidth`` cycles per bank
  (8000 for a 64 KB bank over a 64-bit network).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.arch.params import CacheParams, SliceParams
from repro.arch.params import DEFAULT_CACHE_PARAMS, DEFAULT_SLICE_PARAMS
from repro.arch.registers import DistributedRegisterFile, FlushRecord
from repro.arch.vcore import VCoreConfig


class ReconfigKind(enum.Enum):
    SLICE_EXPAND = "slice_expand"
    SLICE_SHRINK = "slice_shrink"
    L2_EXPAND = "l2_expand"
    L2_SHRINK = "l2_shrink"


@dataclass(frozen=True)
class ReconfigCommand:
    """One EXPAND/SHRINK command targeting a Slice or bank count delta."""

    kind: ReconfigKind
    count: int

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError(f"count must be positive, got {self.count}")


@dataclass(frozen=True)
class ReconfigCostModel:
    """Closed-form cycle costs of the four reconfiguration primitives."""

    slice_params: SliceParams = DEFAULT_SLICE_PARAMS
    cache_params: CacheParams = DEFAULT_CACHE_PARAMS
    dirty_fraction: float = 1.0
    """Fraction of L2 lines assumed dirty when costing a bank flush.

    Section VI-A notes 8000 cycles is the worst case; in practice only a
    small number of lines are dirty.  Experiments that want the
    optimistic model lower this.
    """

    def __post_init__(self) -> None:
        if not 0.0 <= self.dirty_fraction <= 1.0:
            raise ValueError(
                f"dirty_fraction must be in [0, 1], got {self.dirty_fraction}"
            )

    def pipeline_flush_cycles(self) -> int:
        """~15 cycles: drain the pipeline and redirect the front end."""
        depth = 7
        drain = self.slice_params.rob_size // (self.slice_params.commit_width * 4)
        return depth + drain

    def slice_expand_cycles(self, count: int = 1) -> int:
        """Adding Slices costs a single pipeline flush (they join empty)."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        return self.pipeline_flush_cycles()

    def register_flush_cycles(self, flushed_values: Optional[int] = None) -> int:
        """Cycles to push primary register values to survivors.

        One operand-forwarding message per value; bounded by the local
        register count of a departing Slice (64 by Table I).
        """
        bound = self.slice_params.local_registers
        if flushed_values is None:
            return bound
        if flushed_values < 0:
            raise ValueError(
                f"flushed_values must be non-negative, got {flushed_values}"
            )
        return min(flushed_values, bound)

    def slice_shrink_cycles(
        self, count: int = 1, flushed_values: Optional[int] = None
    ) -> int:
        """Expansion cost plus at most 64 cycles of register flushing."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        return self.pipeline_flush_cycles() + self.register_flush_cycles(
            flushed_values
        )

    def l2_bank_flush_cycles(self) -> int:
        """Cycles to flush one bank at the assumed dirty fraction."""
        worst = (
            self.cache_params.l2_bank.size_bytes
            // self.cache_params.network_width_bytes
        )
        return int(round(worst * self.dirty_fraction))

    def l2_expand_cycles(self, banks: int = 1) -> int:
        """New banks arrive empty; hash remap overlaps with execution."""
        if banks <= 0:
            raise ValueError(f"banks must be positive, got {banks}")
        return self.pipeline_flush_cycles()

    def l2_shrink_cycles(self, banks: int = 1) -> int:
        """Banks flush in parallel over independent network links."""
        if banks <= 0:
            raise ValueError(f"banks must be positive, got {banks}")
        return self.l2_bank_flush_cycles()

    def transition_cycles(self, old: VCoreConfig, new: VCoreConfig) -> int:
        """Total overhead of moving a VCore from ``old`` to ``new``.

        Slice and L2 reshaping proceed concurrently (the L2 flush is
        overlapped with the register flush and pipeline restart), so the
        cost is the maximum of the two components.
        """
        slice_cost = 0
        if new.slices > old.slices:
            slice_cost = self.slice_expand_cycles(new.slices - old.slices)
        elif new.slices < old.slices:
            slice_cost = self.slice_shrink_cycles(old.slices - new.slices)
        l2_cost = 0
        if new.l2_banks > old.l2_banks:
            l2_cost = self.l2_expand_cycles(new.l2_banks - old.l2_banks)
        elif new.l2_banks < old.l2_banks:
            l2_cost = self.l2_shrink_cycles(old.l2_banks - new.l2_banks)
        return max(slice_cost, l2_cost)


DEFAULT_RECONFIG_COSTS = ReconfigCostModel()


@dataclass(frozen=True)
class ReconfigResult:
    """Outcome of one applied reconfiguration."""

    old: VCoreConfig
    new: VCoreConfig
    commands: List[ReconfigCommand]
    overhead_cycles: int
    flush: Optional[FlushRecord] = None


class ReconfigEngine:
    """Applies configuration transitions and accounts for their cost.

    The engine optionally owns a :class:`DistributedRegisterFile` whose
    state it carries across Slice shrinks — this is how the cycle-level
    tests demonstrate that architectural register state survives
    reconfiguration.
    """

    def __init__(
        self,
        initial: VCoreConfig,
        cost_model: ReconfigCostModel = DEFAULT_RECONFIG_COSTS,
        register_file: Optional[DistributedRegisterFile] = None,
    ) -> None:
        self.current = initial
        self.cost_model = cost_model
        self.register_file = register_file
        self.total_overhead_cycles = 0
        self.history: List[ReconfigResult] = []

    @staticmethod
    def commands_for(old: VCoreConfig, new: VCoreConfig) -> List[ReconfigCommand]:
        commands: List[ReconfigCommand] = []
        if new.slices > old.slices:
            commands.append(
                ReconfigCommand(ReconfigKind.SLICE_EXPAND, new.slices - old.slices)
            )
        elif new.slices < old.slices:
            commands.append(
                ReconfigCommand(ReconfigKind.SLICE_SHRINK, old.slices - new.slices)
            )
        if new.l2_banks > old.l2_banks:
            commands.append(
                ReconfigCommand(ReconfigKind.L2_EXPAND, new.l2_banks - old.l2_banks)
            )
        elif new.l2_banks < old.l2_banks:
            commands.append(
                ReconfigCommand(ReconfigKind.L2_SHRINK, old.l2_banks - new.l2_banks)
            )
        return commands

    def apply(self, new: VCoreConfig) -> ReconfigResult:
        """Reconfigure to ``new``; returns the accounted result."""
        old = self.current
        commands = self.commands_for(old, new)
        flush: Optional[FlushRecord] = None
        if self.register_file is not None:
            if new.slices > old.slices:
                existing = self.register_file.slice_ids
                start = max(existing) + 1
                self.register_file.expand(
                    range(start, start + new.slices - old.slices)
                )
            elif new.slices < old.slices:
                survivors = self.register_file.slice_ids[: new.slices]
                flush = self.register_file.shrink(survivors)
        if flush is not None:
            slice_cost = (
                self.cost_model.pipeline_flush_cycles()
                + self.cost_model.register_flush_cycles(flush.messages)
            )
            l2_cost = 0
            if new.l2_banks > old.l2_banks:
                l2_cost = self.cost_model.l2_expand_cycles(
                    new.l2_banks - old.l2_banks
                )
            elif new.l2_banks < old.l2_banks:
                l2_cost = self.cost_model.l2_shrink_cycles(
                    old.l2_banks - new.l2_banks
                )
            overhead = max(slice_cost, l2_cost)
        else:
            overhead = self.cost_model.transition_cycles(old, new)
        result = ReconfigResult(
            old=old,
            new=new,
            commands=commands,
            overhead_cycles=overhead,
            flush=flush,
        )
        self.current = new
        self.total_overhead_cycles += overhead
        self.history.append(result)
        return result
