"""L2 cache banks and the distance-dependent hit-delay model (Table II).

The CASH fabric decouples cache from Slices: a virtual core's L2 is a set
of 64 KB banks laid out on the 2D fabric.  The hit delay of a bank is
``distance * 2 + 4`` cycles, where distance is the Manhattan hop count
from the requesting Slice.  Because aggregating more banks pushes the
average bank further away, a larger cache trades lower miss rate for
higher hit latency — the root of the non-convex optimization space the
runtime must navigate (Section II).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.arch.params import CacheLevelParams, CacheParams, DEFAULT_CACHE_PARAMS


def l2_hit_delay(distance: int, params: CacheParams = DEFAULT_CACHE_PARAMS) -> int:
    """Hit delay in cycles of an L2 bank ``distance`` hops away.

    Table II: ``delay = distance * 2 + 4``.
    """
    if distance < 0:
        raise ValueError(f"distance must be non-negative, got {distance}")
    return distance * params.l2_delay_per_hop + params.l2_base_delay


def mean_bank_distance(num_banks: int, num_slices: int = 1) -> float:
    """Average Manhattan distance from a Slice to a bank of its VCore.

    Slices and banks are packed into a near-square region of the fabric
    (the runtime groups adjacent tiles to reduce communication cost, see
    Section III-A).  For a region of ``A`` tiles the mean intra-region
    Manhattan distance grows as ``~0.66 * sqrt(A)``; we use that
    continuous approximation, which matches an exact enumeration of small
    square regions to within a few percent.
    """
    if num_banks <= 0:
        raise ValueError(f"num_banks must be positive, got {num_banks}")
    if num_slices <= 0:
        raise ValueError(f"num_slices must be positive, got {num_slices}")
    area = num_banks + num_slices
    return 0.66 * math.sqrt(area)


def mean_l2_hit_delay(
    num_banks: int,
    num_slices: int = 1,
    params: CacheParams = DEFAULT_CACHE_PARAMS,
) -> float:
    """Average L2 hit delay for a VCore with the given tile counts."""
    distance = mean_bank_distance(num_banks, num_slices)
    return distance * params.l2_delay_per_hop + params.l2_base_delay


def mean_bank_distance_array(
    num_banks: np.ndarray, num_slices: np.ndarray
) -> np.ndarray:
    """Vectorized :func:`mean_bank_distance` over broadcastable arrays.

    Performs the same operations in the same order as the scalar
    version, so results are bit-identical element-wise.
    """
    if np.any(num_banks <= 0):
        raise ValueError("num_banks must be positive")
    if np.any(num_slices <= 0):
        raise ValueError("num_slices must be positive")
    area = num_banks + num_slices
    return 0.66 * np.sqrt(area)


def mean_l2_hit_delay_array(
    num_banks: np.ndarray,
    num_slices: np.ndarray,
    params: CacheParams = DEFAULT_CACHE_PARAMS,
) -> np.ndarray:
    """Vectorized :func:`mean_l2_hit_delay` over broadcastable arrays."""
    distance = mean_bank_distance_array(num_banks, num_slices)
    return distance * params.l2_delay_per_hop + params.l2_base_delay


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of a composed L2: bank count, size, and delay statistics."""

    num_banks: int
    num_slices: int
    params: CacheParams = DEFAULT_CACHE_PARAMS

    def __post_init__(self) -> None:
        if self.num_banks <= 0:
            raise ValueError(f"num_banks must be positive, got {self.num_banks}")
        if self.num_slices <= 0:
            raise ValueError(
                f"num_slices must be positive, got {self.num_slices}"
            )

    @property
    def total_kb(self) -> int:
        return self.num_banks * self.params.l2_bank.size_kb

    @property
    def mean_distance(self) -> float:
        return mean_bank_distance(self.num_banks, self.num_slices)

    @property
    def mean_hit_delay(self) -> float:
        return mean_l2_hit_delay(self.num_banks, self.num_slices, self.params)

    def worst_case_flush_cycles(self) -> int:
        """Worst-case cycles to flush one bank: all lines dirty.

        Section VI-A: ``BankSize / NetworkWidth`` cycles, e.g.
        64 KB / 8 B = 8000 cycles.
        """
        return self.params.l2_bank.size_bytes // self.params.network_width_bytes


@dataclass
class _CacheLine:
    tag: int
    dirty: bool = False
    last_use: int = 0


class CacheBank:
    """A set-associative cache bank with LRU replacement and dirty tracking.

    This is the functional bank model used by the cycle-level simulator's
    memory system and by the reconfiguration engine (which must flush
    dirty lines before a bank is removed from a virtual core).
    """

    def __init__(
        self,
        level: CacheLevelParams,
        bank_id: int = 0,
        distance: int = 0,
        params: CacheParams = DEFAULT_CACHE_PARAMS,
    ) -> None:
        if distance < 0:
            raise ValueError(f"distance must be non-negative, got {distance}")
        self.level = level
        self.bank_id = bank_id
        self.distance = distance
        self.params = params
        self._sets: List[List[_CacheLine]] = [[] for _ in range(level.num_sets)]
        # The set geometry is fixed for the bank's lifetime; caching it
        # keeps _index_and_tag off the property chain on every access.
        self._num_sets = level.num_sets
        self._block_bytes = level.block_bytes
        self._clock = 0
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    @property
    def hit_delay(self) -> int:
        return l2_hit_delay(self.distance, self.params)

    def _index_and_tag(self, address: int) -> Tuple[int, int]:
        block = address // self._block_bytes
        return block % self._num_sets, block // self._num_sets

    def access(self, address: int, is_write: bool = False) -> bool:
        """Access ``address``; return True on hit.

        A miss installs the line (allocate-on-miss, write-back policy)
        and may evict an LRU victim; dirty victims count as writebacks.
        """
        if address < 0:
            raise ValueError(f"address must be non-negative, got {address}")
        self._clock += 1
        index, tag = self._index_and_tag(address)
        ways = self._sets[index]
        for line in ways:
            if line.tag == tag:
                line.last_use = self._clock
                line.dirty = line.dirty or is_write
                self.hits += 1
                return True
        self.misses += 1
        if len(ways) >= self.level.associativity:
            victim = min(ways, key=lambda line: line.last_use)
            if victim.dirty:
                self.writebacks += 1
            ways.remove(victim)
        ways.append(_CacheLine(tag=tag, dirty=is_write, last_use=self._clock))
        return False

    def touch_resident(self, address: int, count: int) -> bool:
        """Replay ``count`` repeated read hits on a resident line.

        Leaves the bank in exactly the state ``count`` back-to-back
        ``access(address, False)`` hit calls would: the clock advances
        ``count`` ticks, the line's ``last_use`` lands on the final
        tick, and ``hits`` grows by ``count``.  Returns ``False`` (and
        changes nothing) if the line is not resident — the caller must
        then fall back to real accesses, which may miss.
        """
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        if address < 0:
            raise ValueError(f"address must be non-negative, got {address}")
        index, tag = self._index_and_tag(address)
        for line in self._sets[index]:
            if line.tag == tag:
                self._clock += count
                line.last_use = self._clock
                self.hits += count
                return True
        return False

    def contains(self, address: int) -> bool:
        index, tag = self._index_and_tag(address)
        return any(line.tag == tag for line in self._sets[index])

    def dirty_lines(self) -> int:
        return sum(line.dirty for ways in self._sets for line in ways)

    def resident_lines(self) -> int:
        return sum(len(ways) for ways in self._sets)

    def flush(self) -> Tuple[int, int]:
        """Flush all dirty lines to memory; invalidate everything.

        Returns ``(dirty_flushed, cycles)``.  The flush streams dirty
        blocks over the L2 memory network, so its cost is
        ``dirty_bytes / network_width`` cycles — the worst case (all
        lines dirty) matches Section VI-A's 8000 cycles for a 64 KB bank
        over a 64-bit network.
        """
        dirty = self.dirty_lines()
        self.writebacks += dirty
        for ways in self._sets:
            ways.clear()
        cycles = (
            dirty * self.level.block_bytes // self.params.network_width_bytes
        )
        return dirty, cycles

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CacheBank(id={self.bank_id}, {self.level.size_kb}KB, "
            f"distance={self.distance}, resident={self.resident_lines()})"
        )


class ComposedL2:
    """An L2 built from multiple banks, address-hashed across banks.

    The CASH architecture hashes physical addresses across the banks of a
    virtual core (Section VI-A notes the hash-table remap overlaps with
    dirty-line flushing during reconfiguration).
    """

    def __init__(
        self,
        banks: List[CacheBank],
    ) -> None:
        if not banks:
            raise ValueError("a composed L2 needs at least one bank")
        self.banks = list(banks)

    @property
    def num_banks(self) -> int:
        return len(self.banks)

    @property
    def total_kb(self) -> int:
        return sum(bank.level.size_kb for bank in self.banks)

    def bank_for(self, address: int) -> CacheBank:
        block = address // self.banks[0].level.block_bytes
        return self.banks[block % len(self.banks)]

    def _local_address(self, address: int) -> int:
        """The address as seen inside the selected bank.

        Banks interleave at block granularity (block ``b`` lives in
        bank ``b mod N``), so within a bank consecutive resident blocks
        are ``b // N`` apart.  Indexing the bank's sets with the *global*
        block number would leave only every N-th set usable — the
        bank-local block number keeps the whole bank addressable.
        """
        block_bytes = self.banks[0].level.block_bytes
        block = address // block_bytes
        offset = address % block_bytes
        return (block // len(self.banks)) * block_bytes + offset

    def access(self, address: int, is_write: bool = False) -> Tuple[bool, int]:
        """Access through the hash; returns (hit, delay_cycles)."""
        bank = self.bank_for(address)
        hit = bank.access(self._local_address(address), is_write)
        return hit, bank.hit_delay

    def remove_bank(self, bank_id: int) -> Tuple[int, int]:
        """Remove a bank (SHRINK): flush it and drop it from the hash.

        Returns ``(dirty_flushed, flush_cycles)``.
        """
        if len(self.banks) == 1:
            raise ValueError("cannot remove the last bank of an L2")
        for position, bank in enumerate(self.banks):
            if bank.bank_id == bank_id:
                dirty, cycles = bank.flush()
                del self.banks[position]
                return dirty, cycles
        raise KeyError(f"no bank with id {bank_id}")

    def add_bank(self, bank: CacheBank) -> None:
        """Add a bank (EXPAND).  New banks arrive empty."""
        if any(existing.bank_id == bank.bank_id for existing in self.banks):
            raise ValueError(f"bank id {bank.bank_id} already present")
        self.banks.append(bank)

    def stats(self) -> Dict[str, int]:
        return {
            "hits": sum(bank.hits for bank in self.banks),
            "misses": sum(bank.misses for bank in self.banks),
            "writebacks": sum(bank.writebacks for bank in self.banks),
        }

    def __iter__(self) -> Iterator[CacheBank]:
        return iter(self.banks)
