"""Timestamped performance counters (Section III-B2).

The CASH architecture has no fixed cores, so performance counters live
per Slice and are queried remotely over the CASH Runtime Interface
Network.  Every sample carries the cycle timestamp at which it was
taken, which lets the runtime synthesize a coherent virtual-core-level
reading out of per-Slice samples taken at slightly different times.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.analysis.units import (
    CycleCount,
    InstructionCount,
    InstructionsPerCycle,
)


class CounterKind(enum.Enum):
    """Counter classes exposed by a Slice."""

    INSTRUCTIONS_COMMITTED = "instructions_committed"
    CYCLES = "cycles"
    L1_MISSES = "l1_misses"
    L2_MISSES = "l2_misses"
    L2_ACCESSES = "l2_accesses"
    BRANCH_MISPREDICTS = "branch_mispredicts"
    BRANCHES = "branches"


@dataclass(frozen=True)
class CounterSample:
    """One timestamped counter reading from one Slice."""

    slice_id: int
    kind: CounterKind
    value: int
    timestamp: int

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError(f"counter value must be non-negative, got {self.value}")
        if self.timestamp < 0:
            raise ValueError(
                f"timestamp must be non-negative, got {self.timestamp}"
            )


class PerformanceCounters:
    """The counter block of a single Slice."""

    def __init__(self, slice_id: int) -> None:
        self.slice_id = slice_id
        self._values: Dict[CounterKind, int] = {kind: 0 for kind in CounterKind}

    def increment(self, kind: CounterKind, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"amount must be non-negative, got {amount}")
        self._values[kind] += amount

    def read(self, kind: CounterKind, timestamp: int) -> CounterSample:
        return CounterSample(
            slice_id=self.slice_id,
            kind=kind,
            value=self._values[kind],
            timestamp=timestamp,
        )

    def value(self, kind: CounterKind) -> int:
        return self._values[kind]

    def reset(self) -> None:
        for kind in self._values:
            self._values[kind] = 0


@dataclass(frozen=True)
class VCoreReading:
    """A synthesized virtual-core-level performance reading."""

    instructions: InstructionCount
    cycles: CycleCount
    ipc: InstructionsPerCycle
    l2_miss_rate: float
    branch_mispredict_rate: float
    window_start: CycleCount
    window_end: CycleCount


def synthesize_vcore_reading(
    samples: Iterable[CounterSample],
    previous: Optional[Iterable[CounterSample]] = None,
) -> VCoreReading:
    """Combine per-Slice samples into one virtual-core reading.

    ``samples`` are the current readings, one or more per Slice;
    ``previous`` (if given) are readings from the prior interval, whose
    values are subtracted to obtain a windowed rate.  The window is the
    span of the timestamps involved; the IPC divides total committed
    instructions by the *widest* per-slice cycle delta so that skewed
    sample times never overstate performance.
    """
    current = list(samples)
    if not current:
        raise ValueError("need at least one counter sample")
    baseline: Dict[tuple, int] = {}
    min_ts = min(sample.timestamp for sample in current)
    if previous is not None:
        for sample in previous:
            baseline[(sample.slice_id, sample.kind)] = sample.value
            min_ts = min(min_ts, sample.timestamp)

    def windowed(sample: CounterSample) -> int:
        start = baseline.get((sample.slice_id, sample.kind), 0)
        delta = sample.value - start
        if delta < 0:
            raise ValueError(
                f"counter {sample.kind.value} on slice {sample.slice_id} "
                "went backwards"
            )
        return delta

    totals: Dict[CounterKind, int] = {kind: 0 for kind in CounterKind}
    per_slice_cycles: Dict[int, int] = {}
    for sample in current:
        value = windowed(sample)
        totals[sample.kind] += value
        if sample.kind is CounterKind.CYCLES:
            per_slice_cycles[sample.slice_id] = max(
                per_slice_cycles.get(sample.slice_id, 0), value
            )

    cycles = max(per_slice_cycles.values(), default=0)
    instructions = totals[CounterKind.INSTRUCTIONS_COMMITTED]
    l2_accesses = totals[CounterKind.L2_ACCESSES]
    branches = totals[CounterKind.BRANCHES]
    return VCoreReading(
        instructions=instructions,
        cycles=cycles,
        ipc=instructions / cycles if cycles else 0.0,
        l2_miss_rate=(
            totals[CounterKind.L2_MISSES] / l2_accesses if l2_accesses else 0.0
        ),
        branch_mispredict_rate=(
            totals[CounterKind.BRANCH_MISPREDICTS] / branches if branches else 0.0
        ),
        window_start=min_ts,
        window_end=max(sample.timestamp for sample in current),
    )
