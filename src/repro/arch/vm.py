"""Virtual machines: grouping virtual cores, and the ILP/TLP trade-off.

Section III-A: "like existing multicore chips used for IaaS
applications, CASH can group multiple cores into Virtual Machines
(VMs).  Unlike fixed architecture multicore processors, the VMs in the
CASH Architecture are composed of cores which themselves are composed
of a variable number of ALUs and cache" — and Slices can be grouped
"thereby empowering users to make decisions about trading off ILP vs.
TLP vs. process-level parallelism vs. VM-level parallelism while all
utilizing the same resources."

This module makes that trade-off a first-class object: a
:class:`VirtualMachine` is a set of virtual cores rented by one tenant;
:func:`vm_throughput` evaluates a multithreaded phase on it under an
Amdahl model; and :func:`best_vm_shape` searches the shapes a tile
budget allows — the fewer, wider cores (ILP) versus more, narrower
cores (TLP) decision.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from typing import TYPE_CHECKING

from repro.arch.cost import CostModel, DEFAULT_COST_MODEL
from repro.arch.vcore import ConfigurationSpace, VCoreConfig, DEFAULT_CONFIG_SPACE
from repro.workloads.phase import Phase

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.sim.perfmodel import PerformanceModel


@dataclass(frozen=True)
class VirtualMachine:
    """A tenant's VM: one or more virtual cores."""

    vcores: Tuple[VCoreConfig, ...]

    def __post_init__(self) -> None:
        if not self.vcores:
            raise ValueError("a VM needs at least one virtual core")

    @property
    def num_vcores(self) -> int:
        return len(self.vcores)

    @property
    def total_tiles(self) -> int:
        return sum(config.tiles for config in self.vcores)

    @property
    def total_slices(self) -> int:
        return sum(config.slices for config in self.vcores)

    def cost_rate(self, model: CostModel = DEFAULT_COST_MODEL) -> float:
        return sum(config.cost_rate(model) for config in self.vcores)

    def __str__(self) -> str:
        if len(set(self.vcores)) == 1:
            return f"{self.num_vcores}x {self.vcores[0]}"
        return " + ".join(str(config) for config in self.vcores)


def uniform_vm(count: int, config: VCoreConfig) -> VirtualMachine:
    """A VM of ``count`` identical virtual cores."""
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    return VirtualMachine(vcores=(config,) * count)


def vm_throughput(
    phase: Phase,
    vm: VirtualMachine,
    parallel_fraction: float,
    model: "PerformanceModel" = None,
) -> float:
    """Aggregate instructions/cycle of a multithreaded phase on a VM.

    Amdahl model: a ``parallel_fraction`` of the work splits perfectly
    across the VM's virtual cores (thread-level parallelism), while the
    remainder serializes on the fastest single core (instruction-level
    parallelism is then all that helps it):

        time(W) = (1-p)·W / max_i ipc_i  +  p·W / Σ_i ipc_i
        throughput = W / time(W)
    """
    if not 0.0 <= parallel_fraction <= 1.0:
        raise ValueError(
            f"parallel_fraction must be in [0, 1], got {parallel_fraction}"
        )
    if model is None:
        from repro.sim.perfmodel import DEFAULT_PERF_MODEL

        model = DEFAULT_PERF_MODEL
    ipcs = [model.ipc(phase, config) for config in vm.vcores]
    aggregate = sum(ipcs)
    fastest = max(ipcs)
    serial_time = (1.0 - parallel_fraction) / fastest
    parallel_time = parallel_fraction / aggregate
    return 1.0 / (serial_time + parallel_time)


@dataclass(frozen=True)
class VmShapePoint:
    """One candidate VM shape with its throughput and cost."""

    vm: VirtualMachine
    throughput: float
    cost_rate: float

    @property
    def efficiency(self) -> float:
        return self.throughput / self.cost_rate if self.cost_rate else 0.0


def enumerate_vm_shapes(
    tile_budget: int,
    space: ConfigurationSpace = DEFAULT_CONFIG_SPACE,
    max_vcores: int = 16,
) -> List[VirtualMachine]:
    """All uniform VM shapes (k identical vcores) within a tile budget."""
    if tile_budget <= 0:
        raise ValueError(f"tile_budget must be positive, got {tile_budget}")
    shapes = []
    for config in space:
        if config.tiles > tile_budget:
            continue
        max_count = min(tile_budget // config.tiles, max_vcores)
        for count in range(1, max_count + 1):
            shapes.append(uniform_vm(count, config))
    return shapes


def best_vm_shape(
    phase: Phase,
    parallel_fraction: float,
    tile_budget: int,
    space: ConfigurationSpace = DEFAULT_CONFIG_SPACE,
    model: "PerformanceModel" = None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    objective: str = "throughput",
) -> VmShapePoint:
    """The best uniform VM shape for a phase within a tile budget.

    ``objective`` is ``"throughput"`` (max aggregate IPC) or
    ``"efficiency"`` (max throughput per dollar).
    """
    if objective not in ("throughput", "efficiency"):
        raise ValueError(
            f"objective must be 'throughput' or 'efficiency', got {objective!r}"
        )
    shapes = enumerate_vm_shapes(tile_budget, space)
    if not shapes:
        raise ValueError(
            f"tile budget {tile_budget} cannot fit any configuration"
        )
    best: Optional[VmShapePoint] = None
    for vm in shapes:
        point = VmShapePoint(
            vm=vm,
            throughput=vm_throughput(phase, vm, parallel_fraction, model),
            cost_rate=vm.cost_rate(cost_model),
        )
        key = point.throughput if objective == "throughput" else point.efficiency
        best_key = (
            None
            if best is None
            else (best.throughput if objective == "throughput" else best.efficiency)
        )
        if best is None or key > best_key:
            best = point
    return best
