"""Area-linear pricing of virtual cores (Section VI-B).

Following the paper, price grows linearly with silicon area, anchored so
that the minimal configuration (1 Slice + one 64 KB L2 bank) costs the
same $0.013/hour Amazon charged for a t2.micro.  The Verilog-derived area
split prices a Slice at $0.0098/hour and 64 KB of L2 at $0.0032/hour.
The paper stresses that only the *ratios* matter for its conclusions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.analysis.units import Cycles, Dollars, DollarsPerHour

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.arch.vcore import VCoreConfig

CYCLES_PER_SECOND = 1.0e9
"""Nominal clock used to convert cycle counts into wall-clock hours."""

SECONDS_PER_HOUR = 3600.0


@dataclass(frozen=True)
class CostModel:
    """Linear $/hour pricing for Slices and L2 cache banks."""

    slice_price_per_hour: float = 0.0098
    l2_price_per_64kb_hour: float = 0.0032
    idle_price_per_hour: float = 0.0
    """Race-to-idle is (optimistically) charged nothing while idle."""

    l2_bank_kb: int = 64

    def __post_init__(self) -> None:
        if self.slice_price_per_hour < 0:
            raise ValueError("slice_price_per_hour must be non-negative")
        if self.l2_price_per_64kb_hour < 0:
            raise ValueError("l2_price_per_64kb_hour must be non-negative")
        if self.idle_price_per_hour < 0:
            raise ValueError("idle_price_per_hour must be non-negative")
        if self.l2_bank_kb <= 0:
            raise ValueError("l2_bank_kb must be positive")

    def rate(self, slices: int, l2_kb: int) -> DollarsPerHour:
        """$/hour for a virtual core of ``slices`` Slices and ``l2_kb`` KB L2."""
        if slices < 0:
            raise ValueError(f"slices must be non-negative, got {slices}")
        if l2_kb < 0:
            raise ValueError(f"l2_kb must be non-negative, got {l2_kb}")
        banks = l2_kb / self.l2_bank_kb
        return (
            slices * self.slice_price_per_hour
            + banks * self.l2_price_per_64kb_hour
        )

    def rate_for(self, config: "VCoreConfig") -> DollarsPerHour:
        """$/hour for a :class:`~repro.arch.vcore.VCoreConfig`."""
        return self.rate(config.slices, config.l2_kb)

    def cost_for_cycles(
        self,
        slices: int,
        l2_kb: int,
        cycles: Cycles,
        cycles_per_second: float = CYCLES_PER_SECOND,
    ) -> Dollars:
        """Dollar cost of holding a configuration for ``cycles`` cycles."""
        if cycles < 0:
            raise ValueError(f"cycles must be non-negative, got {cycles}")
        if cycles_per_second <= 0:
            raise ValueError("cycles_per_second must be positive")
        hours = cycles / cycles_per_second / SECONDS_PER_HOUR
        return self.rate(slices, l2_kb) * hours

    @property
    def minimum_rate(self) -> DollarsPerHour:
        """$/hour of the minimal rentable unit (1 Slice + one bank)."""
        return self.rate(1, self.l2_bank_kb)


DEFAULT_COST_MODEL = CostModel()
