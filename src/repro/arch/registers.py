"""Distributed register file and the Register Flush protocol (Fig. 5).

CASH maps *architectural* registers onto *global logical* registers — a
register name space shared by every Slice of a virtual core — while the
actual storage is the per-Slice *local* register file.  A global
register may have copies in several Slices (one per reading Slice), but
exactly one copy is the *primary* one: the copy in the Slice that
originally wrote the value.

When a virtual core shrinks, register state on departing Slices must
reach the survivors.  Only primary writers push their values (over the
Scalar Operand Network, one operand-forwarding message per value);
survivors that already hold a copy simply adopt it, others rename the
value into a free local register.  Because only primaries flush, the
total number of flush messages is bounded by the number of global
logical registers (Section III-B1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.arch.params import SliceParams, DEFAULT_SLICE_PARAMS


class RegisterFlushError(RuntimeError):
    """Raised when a shrink cannot preserve architectural state."""


@dataclass
class _LocalEntry:
    """One local register holding a copy of a global register."""

    global_reg: int
    value: int
    is_primary: bool
    last_use: int = 0


@dataclass(frozen=True)
class FlushRecord:
    """Accounting for one shrink operation.

    ``messages`` is the number of operand-forwarding pushes (one per
    flushed primary value); ``cycles`` is the modelled latency of the
    flush assuming one message per cycle on the Scalar Operand Network;
    ``spills`` counts values that had to go to memory because no
    survivor had a free local register.
    """

    messages: int
    cycles: int
    adopted: int
    renamed: int
    spills: int


class _SliceRegisterFile:
    """The local register file of a single Slice."""

    def __init__(self, slice_id: int, capacity: int) -> None:
        self.slice_id = slice_id
        self.capacity = capacity
        self.entries: Dict[int, _LocalEntry] = {}
        self._rename: Dict[int, int] = {}
        self._clock = 0
        self._next_free = list(range(capacity))

    def _touch(self) -> int:
        self._clock += 1
        return self._clock

    def lookup(self, global_reg: int) -> Optional[_LocalEntry]:
        local = self._rename.get(global_reg)
        if local is None:
            return None
        return self.entries[local]

    def holds(self, global_reg: int) -> bool:
        return global_reg in self._rename

    def _evict_reader_copy(self) -> Optional[int]:
        """Free a local register holding a non-primary (reader) copy."""
        candidates = [
            (entry.last_use, local)
            for local, entry in self.entries.items()
            if not entry.is_primary
        ]
        if not candidates:
            return None
        _, local = min(candidates)
        victim = self.entries.pop(local)
        del self._rename[victim.global_reg]
        return local

    def allocate(self, global_reg: int, value: int, is_primary: bool) -> bool:
        """Install a copy; return False if no local register is free.

        Reader copies may be silently evicted to make room (they can be
        refetched from the primary writer on demand); primary copies are
        never evicted here.
        """
        existing = self.lookup(global_reg)
        if existing is not None:
            existing.value = value
            existing.is_primary = existing.is_primary or is_primary
            existing.last_use = self._touch()
            return True
        if self._next_free:
            local = self._next_free.pop()
        else:
            local = self._evict_reader_copy()
            if local is None:
                return False
        self.entries[local] = _LocalEntry(
            global_reg=global_reg,
            value=value,
            is_primary=is_primary,
            last_use=self._touch(),
        )
        self._rename[global_reg] = local
        return True

    def drop(self, global_reg: int) -> None:
        local = self._rename.pop(global_reg, None)
        if local is not None:
            del self.entries[local]
            self._next_free.append(local)

    def primaries(self) -> List[_LocalEntry]:
        return [entry for entry in self.entries.values() if entry.is_primary]

    @property
    def live_count(self) -> int:
        return len(self.entries)


class DistributedRegisterFile:
    """Global-register name space distributed over the Slices of a VCore."""

    def __init__(
        self,
        slice_ids: Iterable[int],
        params: SliceParams = DEFAULT_SLICE_PARAMS,
    ) -> None:
        ids = list(slice_ids)
        if not ids:
            raise ValueError("a virtual core needs at least one Slice")
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate slice ids: {ids}")
        self.params = params
        self._slices: Dict[int, _SliceRegisterFile] = {
            slice_id: _SliceRegisterFile(slice_id, params.local_registers)
            for slice_id in ids
        }
        self._primary_writer: Dict[int, int] = {}
        self.operand_messages = 0

    @property
    def slice_ids(self) -> List[int]:
        return sorted(self._slices)

    @property
    def num_slices(self) -> int:
        return len(self._slices)

    def _check_global(self, global_reg: int) -> None:
        if not 0 <= global_reg < self.params.physical_registers:
            raise ValueError(
                f"global register {global_reg} outside "
                f"[0, {self.params.physical_registers})"
            )

    def _check_slice(self, slice_id: int) -> _SliceRegisterFile:
        try:
            return self._slices[slice_id]
        except KeyError:
            raise KeyError(f"slice {slice_id} is not part of this VCore") from None

    def write(self, slice_id: int, global_reg: int, value: int) -> None:
        """A Slice writes a global register, becoming its primary writer."""
        self._check_global(global_reg)
        rf = self._check_slice(slice_id)
        if global_reg in self._primary_writer:
            # Any copies elsewhere — the old primary and reader copies —
            # are stale the moment a new value is produced.
            for other_id, other in self._slices.items():
                if other_id != slice_id:
                    other.drop(global_reg)
        if not rf.allocate(global_reg, value, is_primary=True):
            raise RegisterFlushError(
                f"slice {slice_id} has no free local register for a write "
                f"to gr{global_reg}"
            )
        self._primary_writer[global_reg] = slice_id

    def read(self, slice_id: int, global_reg: int) -> int:
        """A Slice reads a global register, fetching a copy if needed.

        Remote fetches cost one request/reply exchange on the Scalar
        Operand Network (counted in :attr:`operand_messages`).
        """
        self._check_global(global_reg)
        rf = self._check_slice(slice_id)
        entry = rf.lookup(global_reg)
        if entry is not None:
            entry.last_use = rf._touch()
            return entry.value
        writer = self._primary_writer.get(global_reg)
        if writer is None:
            raise KeyError(f"gr{global_reg} has never been written")
        value = self._slices[writer].lookup(global_reg).value
        self.operand_messages += 1
        rf.allocate(global_reg, value, is_primary=False)
        return value

    def value_of(self, global_reg: int) -> int:
        """Architectural value of a global register (from its primary)."""
        writer = self._primary_writer.get(global_reg)
        if writer is None:
            raise KeyError(f"gr{global_reg} has never been written")
        return self._slices[writer].lookup(global_reg).value

    def live_globals(self) -> Set[int]:
        return set(self._primary_writer)

    def primary_writer(self, global_reg: int) -> Optional[int]:
        return self._primary_writer.get(global_reg)

    def architectural_state(self) -> Dict[int, int]:
        """Snapshot of every live global register's value."""
        return {gr: self.value_of(gr) for gr in self._primary_writer}

    def expand(self, new_slice_ids: Iterable[int]) -> None:
        """Add Slices to the VCore.  New Slices start with empty files."""
        for slice_id in new_slice_ids:
            if slice_id in self._slices:
                raise ValueError(f"slice {slice_id} already in the VCore")
            self._slices[slice_id] = _SliceRegisterFile(
                slice_id, self.params.local_registers
            )

    def shrink(self, survivor_ids: Iterable[int]) -> FlushRecord:
        """Shrink the VCore to ``survivor_ids``, flushing register state.

        Implements the protocol of Fig. 5: every departing Slice asks,
        per local entry, "am I a primary writer and not a survivor?" and
        pushes the value if so.  Each receiving survivor asks "is the
        value already there?" — adopting the existing copy as primary if
        so, renaming into a free local register otherwise.  Values that
        fit nowhere spill to memory (counted, and costed at the memory
        delay), preserving architectural state unconditionally.
        """
        survivors = sorted(set(survivor_ids))
        if not survivors:
            raise ValueError("a shrink must leave at least one survivor")
        missing = [s for s in survivors if s not in self._slices]
        if missing:
            raise KeyError(f"survivors not in the VCore: {missing}")
        departing = [s for s in self.slice_ids if s not in survivors]

        messages = 0
        adopted = 0
        renamed = 0
        spills = 0
        spilled_values: Dict[int, int] = {}

        for slice_id in departing:
            rf = self._slices[slice_id]
            for entry in rf.primaries():
                # ① Am I a primary writer and not a survivor? ② Push.
                messages += 1
                global_reg = entry.global_reg
                placed = False
                # Prefer a survivor that already holds a (reader) copy:
                # it only needs to re-mark the copy as primary (Fig. 5,
                # "is the value already there?").
                for survivor in survivors:
                    target = self._slices[survivor].lookup(global_reg)
                    if target is not None:
                        target.is_primary = True
                        target.value = entry.value
                        self._primary_writer[global_reg] = survivor
                        adopted += 1
                        placed = True
                        break
                if placed:
                    continue
                # ③ Rename the register and save the pushed value.
                for survivor in survivors:
                    if self._slices[survivor].allocate(
                        global_reg, entry.value, is_primary=True
                    ):
                        self._primary_writer[global_reg] = survivor
                        renamed += 1
                        placed = True
                        break
                if not placed:
                    spilled_values[global_reg] = entry.value
                    spills += 1

        for slice_id in departing:
            del self._slices[slice_id]
        for global_reg in spilled_values:
            # Architecturally the value now lives in memory; the name
            # space still records it so reads can refill it on demand.
            self._primary_writer.pop(global_reg, None)

        self.operand_messages += messages
        cycles = messages + spills * self.params.memory_delay
        if messages > self.params.physical_registers:
            raise RegisterFlushError(
                f"flush count {messages} exceeded the global register "
                f"bound {self.params.physical_registers}"
            )
        return FlushRecord(
            messages=messages,
            cycles=cycles,
            adopted=adopted,
            renamed=renamed,
            spills=spills,
        )
