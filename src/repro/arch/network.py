"""On-chip networks of the CASH fabric (Sections III-A and III-B2).

Three switched interconnects matter to this model:

* the **Scalar Operand Network**, which forwards register operands
  between the Slices of a virtual core;
* the **L2 memory network**, which carries cache refills and dirty-line
  flushes (its width bounds flush bandwidth, Section VI-A);
* the **CASH Runtime Interface Network**, newly added by CASH, which
  carries timestamped performance-counter request/reply messages and
  EXPAND/SHRINK reconfiguration commands from the runtime Slice to any
  other Slice or cache bank.

The networks are modelled at message granularity with per-hop latency;
this is what the cycle-level simulator and the reconfiguration engine
charge for remote communication.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.arch.counters import CounterKind, CounterSample, PerformanceCounters

Coordinate = Tuple[int, int]


def manhattan(a: Coordinate, b: Coordinate) -> int:
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


class MessagePriority(enum.IntEnum):
    """Runtime-interface traffic is prioritized over bulk data."""

    CONTROL = 0
    OPERAND = 1
    DATA = 2


@dataclass(order=True)
class _InFlight:
    deliver_at: int
    sequence: int
    payload: object = field(compare=False)
    deliver: Optional[Callable[[object], None]] = field(compare=False, default=None)


class SwitchedNetwork:
    """A mesh-routed, per-hop-latency message network.

    Messages are injected with source/destination coordinates and are
    delivered (optionally to a callback) after ``hops * hop_latency +
    router_latency`` cycles.  :meth:`advance` drains everything due by
    the given cycle.
    """

    def __init__(self, hop_latency: int = 1, router_latency: int = 1) -> None:
        if hop_latency <= 0:
            raise ValueError("hop_latency must be positive")
        if router_latency < 0:
            raise ValueError("router_latency must be non-negative")
        self.hop_latency = hop_latency
        self.router_latency = router_latency
        self._queue: List[_InFlight] = []
        self._sequence = 0
        self.messages_sent = 0
        self.total_hops = 0

    def latency(self, src: Coordinate, dst: Coordinate) -> int:
        return manhattan(src, dst) * self.hop_latency + self.router_latency

    def send(
        self,
        src: Coordinate,
        dst: Coordinate,
        payload: object,
        now: int,
        deliver: Optional[Callable[[object], None]] = None,
    ) -> int:
        """Inject a message at cycle ``now``; returns its delivery cycle."""
        if now < 0:
            raise ValueError(f"now must be non-negative, got {now}")
        arrival = now + self.latency(src, dst)
        self._sequence += 1
        heapq.heappush(
            self._queue,
            _InFlight(
                deliver_at=arrival,
                sequence=self._sequence,
                payload=payload,
                deliver=deliver,
            ),
        )
        self.messages_sent += 1
        self.total_hops += manhattan(src, dst)
        return arrival

    def advance(self, now: int) -> List[object]:
        """Deliver all messages due at or before cycle ``now``."""
        delivered: List[object] = []
        while self._queue and self._queue[0].deliver_at <= now:
            msg = heapq.heappop(self._queue)
            if msg.deliver is not None:
                msg.deliver(msg.payload)
            delivered.append(msg.payload)
        return delivered

    @property
    def in_flight(self) -> int:
        return len(self._queue)


class OperandNetwork(SwitchedNetwork):
    """The Scalar Operand Network between Slices of a virtual core."""

    def forward_operand(
        self, src: Coordinate, dst: Coordinate, value: int, now: int
    ) -> int:
        return self.send(src, dst, ("operand", value), now)


@dataclass(frozen=True)
class CounterRequest:
    """A runtime request to read a counter on a remote Slice."""

    requester: Coordinate
    target_slice: int
    kind: CounterKind
    issued_at: int


@dataclass(frozen=True)
class CounterReply:
    """The timestamped reply to a :class:`CounterRequest`."""

    request: CounterRequest
    sample: CounterSample
    delivered_at: int

    @property
    def round_trip_cycles(self) -> int:
        return self.delivered_at - self.request.issued_at


@dataclass(frozen=True)
class PrivilegeError(Exception):
    """Raised when an unprivileged VCore uses the runtime network."""

    requester: Coordinate


class RuntimeInterfaceNetwork:
    """The dedicated network for monitoring and reconfiguration.

    The runtime — a virtual core with sufficiently high privilege —
    queries performance counters on other Slices with a simple
    request/reply protocol, and sends EXPAND/SHRINK commands targeting
    particular Slices or L2 banks (Section III-B2).
    """

    def __init__(self, hop_latency: int = 1, router_latency: int = 1) -> None:
        self._net = SwitchedNetwork(hop_latency, router_latency)
        self._slices: Dict[int, Tuple[Coordinate, PerformanceCounters]] = {}
        self._privileged: set = set()
        self.replies_delivered = 0

    def register_slice(
        self,
        slice_id: int,
        position: Coordinate,
        counters: PerformanceCounters,
    ) -> None:
        if slice_id in self._slices:
            raise ValueError(f"slice {slice_id} already registered")
        self._slices[slice_id] = (position, counters)

    def unregister_slice(self, slice_id: int) -> None:
        self._slices.pop(slice_id, None)

    def grant_privilege(self, position: Coordinate) -> None:
        """Mark the VCore at ``position`` as a runtime (privileged) core."""
        self._privileged.add(position)

    def revoke_privilege(self, position: Coordinate) -> None:
        self._privileged.discard(position)

    def is_privileged(self, position: Coordinate) -> bool:
        return position in self._privileged

    def request_counter(
        self,
        requester: Coordinate,
        target_slice: int,
        kind: CounterKind,
        now: int,
    ) -> CounterReply:
        """Read a counter on a remote Slice; returns the timestamped reply.

        The full round trip (request there, reply back) is modelled; the
        sample's timestamp is the cycle at which the remote Slice read
        its counter, so the runtime can reconcile skewed samples.
        """
        if requester not in self._privileged:
            raise PrivilegeError(requester)
        if target_slice not in self._slices:
            raise KeyError(f"no slice {target_slice} on the runtime network")
        position, counters = self._slices[target_slice]
        request = CounterRequest(
            requester=requester,
            target_slice=target_slice,
            kind=kind,
            issued_at=now,
        )
        arrive_at_target = self._net.send(requester, position, request, now)
        sample = counters.read(kind, timestamp=arrive_at_target)
        delivered_at = self._net.send(position, requester, sample, arrive_at_target)
        self._net.advance(delivered_at)
        self.replies_delivered += 1
        return CounterReply(
            request=request, sample=sample, delivered_at=delivered_at
        )

    def read_vcore(
        self,
        requester: Coordinate,
        slice_ids: List[int],
        kinds: List[CounterKind],
        now: int,
    ) -> List[CounterReply]:
        """Query several counters across the Slices of a target VCore."""
        replies = []
        for slice_id in slice_ids:
            for kind in kinds:
                replies.append(
                    self.request_counter(requester, slice_id, kind, now)
                )
        return replies

    def send_command(
        self,
        requester: Coordinate,
        target: Coordinate,
        command: object,
        now: int,
    ) -> int:
        """Send a reconfiguration command; returns its arrival cycle."""
        if requester not in self._privileged:
            raise PrivilegeError(requester)
        return self._net.send(requester, target, command, now)

    @property
    def messages_sent(self) -> int:
        return self._net.messages_sent
