"""The 2D fabric of Slices and L2 cache banks (Fig. 3).

A full CASH chip contains hundreds of Slices and cache banks laid out on
a 2D switched fabric.  Neither Slices nor banks need to be contiguous
for a virtual core to function, but the runtime groups adjacent tiles to
reduce operand communication and cache access latency (Section III-A).
All Slices are interchangeable and equally connected, so fragmentation
is fixed by simply rescheduling Slices to virtual cores.

This module provides spatial allocation: given a virtual-core request
(S Slices, B banks) it carves a compact region out of the free tiles,
preferring tiles adjacent to ones already chosen.

With :data:`repro.perf.FAST` enabled the fabric answers utilization,
free-count and seed-selection queries from an incrementally maintained
per-kind free-position index (updated on every allocate/release) in
O(1)/O(free) instead of rescanning all tiles; the scalar full-scan
twins remain the reference path, and the index enumerates free
positions in the exact row-major order the scans produce, so both
modes are bit-identical.
"""

from __future__ import annotations

import enum
import heapq
import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro import perf
from repro.analysis import sanitize

from repro.arch.cache import CacheBank
from repro.arch.network import Coordinate, manhattan
from repro.arch.params import CacheParams, SliceParams
from repro.arch.params import DEFAULT_CACHE_PARAMS, DEFAULT_SLICE_PARAMS
from repro.arch.slice_unit import Slice
from repro.arch.vcore import VCoreConfig


class FabricError(RuntimeError):
    """Raised when an allocation request cannot be satisfied."""


#: Process-wide cache of all-pairs Manhattan distance matrices, keyed by
#: fabric geometry.  The matrix depends only on (width, height), so one
#: copy serves every fabric of that shape and never enters checkpoints.
_DISTANCE_CACHE: Dict[Tuple[int, int], np.ndarray] = {}
_DISTANCE_LOCK = threading.Lock()


def _distance_matrix(width: int, height: int) -> np.ndarray:
    """All-pairs Manhattan distances between flat tile indices.

    Flat index ``y * width + x`` matches the row-major order tiles are
    created in, so gathering rows/columns of this matrix for the free
    set reproduces the distances the scalar scan computes pairwise.
    """
    key = (width, height)
    with _DISTANCE_LOCK:
        cached = _DISTANCE_CACHE.get(key)
        if cached is None:
            ys, xs = np.divmod(
                np.arange(width * height, dtype=np.int64), width
            )
            cached = np.abs(xs[:, None] - xs[None, :]) + np.abs(
                ys[:, None] - ys[None, :]
            )
            _DISTANCE_CACHE[key] = cached
        return cached


class TileKind(enum.Enum):
    SLICE = "slice"
    L2_BANK = "l2_bank"


@dataclass
class Tile:
    """One fabric tile: either a Slice or an L2 cache bank."""

    kind: TileKind
    position: Coordinate
    owner_vcore: Optional[int] = None
    slice_unit: Optional[Slice] = None
    bank: Optional[CacheBank] = None

    @property
    def is_free(self) -> bool:
        return self.owner_vcore is None


@dataclass(frozen=True)
class Allocation:
    """The tiles granted to one virtual core."""

    vcore_id: int
    config: VCoreConfig
    slice_positions: Tuple[Coordinate, ...]
    bank_positions: Tuple[Coordinate, ...]

    @property
    def positions(self) -> Tuple[Coordinate, ...]:
        return self.slice_positions + self.bank_positions

    def mean_slice_to_bank_distance(self) -> float:
        """Average Manhattan distance from each Slice to each bank."""
        if not self.slice_positions or not self.bank_positions:
            return 0.0
        total = sum(
            manhattan(s, b)
            for s in self.slice_positions
            for b in self.bank_positions
        )
        return total / (len(self.slice_positions) * len(self.bank_positions))


class Fabric:
    """A ``width x height`` checkerboard of Slices and L2 banks.

    Even (x+y) tiles are Slices and odd tiles are banks, approximating
    the interleaved layout of Fig. 3 with a 1:1 Slice:bank ratio.  Use
    ``bank_ratio`` to change the mix (e.g. 2 banks per Slice).
    """

    def __init__(
        self,
        width: int = 16,
        height: int = 16,
        bank_ratio: int = 1,
        slice_params: SliceParams = DEFAULT_SLICE_PARAMS,
        cache_params: CacheParams = DEFAULT_CACHE_PARAMS,
    ) -> None:
        if width <= 0 or height <= 0:
            raise ValueError(f"fabric dimensions must be positive, got {width}x{height}")
        if bank_ratio <= 0:
            raise ValueError(f"bank_ratio must be positive, got {bank_ratio}")
        self.width = width
        self.height = height
        self.slice_params = slice_params
        self.cache_params = cache_params
        self._tiles: Dict[Coordinate, Tile] = {}
        self._allocations: Dict[int, Allocation] = {}
        # Incremental free-position index: one set of coordinates per
        # tile kind, kept in lockstep with every ownership change, plus
        # immutable per-kind totals.  The sets are only *consulted*
        # under perf.FAST; the scalar full-scan paths stay the
        # reference.
        self._free_index: Dict[TileKind, Set[Coordinate]] = {
            TileKind.SLICE: set(),
            TileKind.L2_BANK: set(),
        }
        # Sanitizer shadow-recount sampling counter (REPRO_SANITIZE=1).
        self._sanitize_ticks = 0
        self._kind_totals: Dict[TileKind, int] = {
            TileKind.SLICE: 0,
            TileKind.L2_BANK: 0,
        }
        next_slice = 0
        next_bank = 0
        for y in range(height):
            for x in range(width):
                position = (x, y)
                # Interleave: one Slice for every `bank_ratio` banks.
                if (x + y * width) % (bank_ratio + 1) == 0:
                    unit = Slice(
                        slice_id=next_slice,
                        position=position,
                        params=slice_params,
                        cache_params=cache_params,
                    )
                    self._tiles[position] = Tile(
                        kind=TileKind.SLICE, position=position, slice_unit=unit
                    )
                    self._free_index[TileKind.SLICE].add(position)
                    self._kind_totals[TileKind.SLICE] += 1
                    next_slice += 1
                else:
                    bank = CacheBank(
                        level=cache_params.l2_bank,
                        bank_id=next_bank,
                        params=cache_params,
                    )
                    self._tiles[position] = Tile(
                        kind=TileKind.L2_BANK, position=position, bank=bank
                    )
                    self._free_index[TileKind.L2_BANK].add(position)
                    self._kind_totals[TileKind.L2_BANK] += 1
                    next_bank += 1

    @property
    def tiles(self) -> Dict[Coordinate, Tile]:
        return self._tiles

    def tile(self, position: Coordinate) -> Tile:
        try:
            return self._tiles[position]
        except KeyError:
            raise KeyError(f"no tile at {position}") from None

    def kind_total(self, kind: TileKind) -> int:
        """How many tiles of ``kind`` the fabric has (free or not)."""
        return self._kind_totals[kind]

    def count_free(self, kind: TileKind) -> int:
        if perf.FAST:
            count = len(self._free_index[kind])
            if sanitize.ENABLED:
                self._sanitize_ticks += 1
                if sanitize.should_sample(self._sanitize_ticks):
                    reference = sum(
                        1
                        for tile in self._tiles.values()
                        if tile.kind is kind and tile.is_free
                    )
                    if count != reference:
                        sanitize.violation(
                            "shadow-recount",
                            "repro.arch.fabric.Fabric._free_index",
                            "count_free",
                            f"{kind.name}: index says {count} free, "
                            f"full scan says {reference}",
                        )
            return count
        return sum(
            1 for tile in self._tiles.values() if tile.kind is kind and tile.is_free
        )

    def _scan_free_positions(self, kind: TileKind) -> List[Coordinate]:
        """Reference full row-major scan of free tiles of ``kind``."""
        return [
            position
            for position, tile in self._tiles.items()
            if tile.kind is kind and tile.is_free
        ]

    def _free_positions(self, kind: TileKind) -> List[Coordinate]:
        if perf.FAST:
            # ``_tiles`` is populated row-major (y outer, x inner), so
            # sorting the free set by (y, x) reproduces the scalar
            # scan's enumeration order exactly — allocation seed
            # selection is bit-identical in both modes.
            positions = sorted(
                self._free_index[kind], key=lambda p: (p[1], p[0])
            )
            if sanitize.ENABLED:
                self._sanitize_ticks += 1
                if sanitize.should_sample(self._sanitize_ticks):
                    reference = self._scan_free_positions(kind)
                    if positions != reference:
                        extra = sorted(set(positions) - set(reference))
                        missing = sorted(set(reference) - set(positions))
                        sanitize.violation(
                            "shadow-recount",
                            "repro.arch.fabric.Fabric._free_index",
                            "_free_positions",
                            f"{kind.name}: index diverged from full scan "
                            f"(stale={extra[:4]!r}, missing="
                            f"{missing[:4]!r}, index_len={len(positions)}, "
                            f"scan_len={len(reference)})",
                        )
            return positions
        return [
            position
            for position, tile in self._tiles.items()
            if tile.kind is kind and tile.is_free
        ]

    def _best_seed(
        self, need_slices: int, need_banks: int
    ) -> Optional[Coordinate]:
        """FAST seed search: the scalar scan's winner without growing.

        Region growth traverses occupied tiles, so the region a seed
        produces is simply the nearest free tiles of each kind and its
        span is ``max(k-th smallest Manhattan distance to free Slices,
        m-th smallest to free banks)`` — an integer computable for all
        seeds at once.  ``argmin`` returns the first minimal entry and
        the seed array is in row-major scan order, so the winner is
        bit-identical to the scalar loop's first strictly-best seed.
        """
        seeds = self._free_positions(TileKind.SLICE)
        if len(seeds) < need_slices:
            return None
        width = self.width
        distances = _distance_matrix(width, self.height)
        seed_ids = np.fromiter(
            (y * width + x for x, y in seeds),
            dtype=np.intp,
            count=len(seeds),
        )
        slice_distances = distances[np.ix_(seed_ids, seed_ids)]
        spans = np.partition(slice_distances, need_slices - 1, axis=1)[
            :, need_slices - 1
        ]
        if need_banks:
            banks = self._free_positions(TileKind.L2_BANK)
            if len(banks) < need_banks:
                return None
            bank_ids = np.fromiter(
                (y * width + x for x, y in banks),
                dtype=np.intp,
                count=len(banks),
            )
            bank_distances = distances[np.ix_(seed_ids, bank_ids)]
            bank_spans = np.partition(bank_distances, need_banks - 1, axis=1)[
                :, need_banks - 1
            ]
            spans = np.maximum(spans, bank_spans)
        return seeds[int(np.argmin(spans))]

    def _neighbors(self, position: Coordinate) -> List[Coordinate]:
        x, y = position
        out = []
        for nx, ny in ((x - 1, y), (x + 1, y), (x, y - 1), (x, y + 1)):
            if 0 <= nx < self.width and 0 <= ny < self.height:
                out.append((nx, ny))
        return out

    def _grow_region(
        self, seed: Coordinate, need_slices: int, need_banks: int
    ) -> Optional[Tuple[List[Coordinate], List[Coordinate]]]:
        """Grow a compact region from ``seed`` with the needed tile mix.

        Best-first growth by distance to the seed keeps the region
        near-square, minimizing operand and cache distances.
        """
        slices: List[Coordinate] = []
        banks: List[Coordinate] = []
        visited: Set[Coordinate] = set()
        frontier: List[Tuple[int, Coordinate]] = [(0, seed)]
        while frontier and (len(slices) < need_slices or len(banks) < need_banks):
            _, position = heapq.heappop(frontier)
            if position in visited:
                continue
            visited.add(position)
            tile = self._tiles[position]
            if tile.is_free:
                if tile.kind is TileKind.SLICE and len(slices) < need_slices:
                    slices.append(position)
                elif tile.kind is TileKind.L2_BANK and len(banks) < need_banks:
                    banks.append(position)
            for neighbor in self._neighbors(position):
                if neighbor not in visited:
                    heapq.heappush(
                        frontier, (manhattan(seed, neighbor), neighbor)
                    )
        if len(slices) < need_slices or len(banks) < need_banks:
            return None
        return slices, banks

    def allocate(self, vcore_id: int, config: VCoreConfig) -> Allocation:
        """Allocate a virtual core; raises :class:`FabricError` if full."""
        if vcore_id in self._allocations:
            raise FabricError(f"vcore {vcore_id} already allocated")
        need_slices = config.slices
        need_banks = config.l2_banks
        if self.count_free(TileKind.SLICE) < need_slices:
            raise FabricError(
                f"need {need_slices} free Slices, have "
                f"{self.count_free(TileKind.SLICE)}"
            )
        if self.count_free(TileKind.L2_BANK) < need_banks:
            raise FabricError(
                f"need {need_banks} free banks, have "
                f"{self.count_free(TileKind.L2_BANK)}"
            )
        best: Optional[Tuple[List[Coordinate], List[Coordinate]]] = None
        if perf.FAST:
            seed = self._best_seed(need_slices, need_banks)
            if seed is not None:
                best = self._grow_region(seed, need_slices, need_banks)
        else:
            best_span = None
            for seed in self._free_positions(TileKind.SLICE):
                region = self._grow_region(seed, need_slices, need_banks)
                if region is None:
                    continue
                slices, banks = region
                span = max(
                    manhattan(seed, position) for position in slices + banks
                )
                if best_span is None or span < best_span:
                    best, best_span = region, span
                    if span <= 1:
                        break
        if best is None:
            raise FabricError(
                f"fabric too fragmented for {config}; rescheduling of "
                "existing virtual cores is required"
            )
        slices, banks = best
        for position in slices + banks:
            tile = self._tiles[position]
            tile.owner_vcore = vcore_id
            self._free_index[tile.kind].discard(position)
        for position in slices:
            self._tiles[position].slice_unit.owner_vcore = vcore_id
        allocation = Allocation(
            vcore_id=vcore_id,
            config=config,
            slice_positions=tuple(slices),
            bank_positions=tuple(banks),
        )
        self._allocations[vcore_id] = allocation
        return allocation

    def try_allocate_exact(self, allocation: Allocation) -> bool:
        """Re-seat a previously released allocation on its exact tiles.

        The event-driven service parks idle tenants (releasing their
        tiles) and re-seats them when the next burst arrives; if the
        old region is still free this is O(region) — no seed search,
        no growth.  Returns False (fabric untouched) when any old tile
        is taken, in which case the caller falls back to a regular
        :meth:`allocate`.
        """
        if allocation.vcore_id in self._allocations:
            raise FabricError(
                f"vcore {allocation.vcore_id} already allocated"
            )
        for position in allocation.positions:
            tile = self._tiles.get(position)
            if tile is None or not tile.is_free:
                return False
        for position in allocation.positions:
            tile = self._tiles[position]
            tile.owner_vcore = allocation.vcore_id
            self._free_index[tile.kind].discard(position)
        for position in allocation.slice_positions:
            self._tiles[position].slice_unit.owner_vcore = allocation.vcore_id
        self._allocations[allocation.vcore_id] = allocation
        return True

    def release(self, vcore_id: int) -> None:
        allocation = self._allocations.pop(vcore_id, None)
        if allocation is None:
            raise FabricError(f"vcore {vcore_id} is not allocated")
        for position in allocation.positions:
            tile = self._tiles[position]
            tile.owner_vcore = None
            self._free_index[tile.kind].add(position)
            if tile.slice_unit is not None:
                tile.slice_unit.owner_vcore = None

    def reallocate(self, vcore_id: int, config: VCoreConfig) -> Allocation:
        """Resize a virtual core (release + allocate, keeping the id)."""
        self.release(vcore_id)
        return self.allocate(vcore_id, config)

    def allocation(self, vcore_id: int) -> Allocation:
        try:
            return self._allocations[vcore_id]
        except KeyError:
            raise FabricError(f"vcore {vcore_id} is not allocated") from None

    @property
    def allocations(self) -> Dict[int, Allocation]:
        return dict(self._allocations)

    def allocation_for(self, vcore_id: int) -> Optional[Allocation]:
        """O(1) lookup without the defensive copy ``allocations`` takes."""
        return self._allocations.get(vcore_id)

    def has_allocation(self, vcore_id: int) -> bool:
        return vcore_id in self._allocations

    def occupied_tiles(self) -> int:
        """How many tiles are owned right now (integer utilization twin).

        The service engine accounts utilization in exact integer
        tile-intervals so that multiplying over a skipped idle stretch
        equals per-interval accumulation bit for bit.
        """
        total = len(self._tiles)
        if perf.FAST:
            free = sum(len(index) for index in self._free_index.values())
            return total - free
        return sum(1 for tile in self._tiles.values() if not tile.is_free)

    def utilization(self) -> float:
        total = len(self._tiles)
        if perf.FAST:
            free = sum(len(index) for index in self._free_index.values())
            used = total - free
        else:
            used = sum(1 for tile in self._tiles.values() if not tile.is_free)
        return used / total if total else 0.0

    def defragment(self) -> int:
        """Re-pack all allocations compactly; returns vcores moved.

        Because Slices are interchangeable (Section III-A), fixing
        fragmentation is just rescheduling: release everything and
        re-allocate each virtual core in descending size order.
        """
        allocations = sorted(
            self._allocations.values(),
            key=lambda a: a.config.tiles,
            reverse=True,
        )
        for allocation in allocations:
            self.release(allocation.vcore_id)
        moved = 0
        for allocation in allocations:
            new = self.allocate(allocation.vcore_id, allocation.config)
            if set(new.positions) != set(allocation.positions):
                moved += 1
        return moved
