"""The CASH hardware architecture model.

This subpackage models the sub-core configurable fabric described in
Section III of the paper: Slices (simple out-of-order mini-cores), L2
cache banks, the switched interconnects that join them, the distributed
register file with its Register Flush protocol, the reconfiguration
commands (EXPAND / SHRINK) and their cycle costs, the timestamped
performance-counter network, and the area-linear cost model used to
price virtual cores.
"""

from repro.arch.params import (
    CacheLevelParams,
    CacheParams,
    SliceParams,
    DEFAULT_CACHE_PARAMS,
    DEFAULT_SLICE_PARAMS,
)
from repro.arch.cost import CostModel, DEFAULT_COST_MODEL
from repro.arch.cache import CacheBank, CacheGeometry, l2_hit_delay
from repro.arch.vcore import VCoreConfig, ConfigurationSpace, DEFAULT_CONFIG_SPACE
from repro.arch.slice_unit import Slice
from repro.arch.fabric import Fabric, FabricError, Tile, TileKind
from repro.arch.registers import (
    DistributedRegisterFile,
    RegisterFlushError,
    FlushRecord,
)
from repro.arch.reconfig import (
    ReconfigCommand,
    ReconfigKind,
    ReconfigCostModel,
    ReconfigEngine,
    DEFAULT_RECONFIG_COSTS,
)
from repro.arch.counters import CounterSample, PerformanceCounters, CounterKind
from repro.arch.network import (
    RuntimeInterfaceNetwork,
    CounterRequest,
    CounterReply,
    OperandNetwork,
    MessagePriority,
)
from repro.arch.vm import (
    VirtualMachine,
    VmShapePoint,
    best_vm_shape,
    enumerate_vm_shapes,
    uniform_vm,
    vm_throughput,
)

__all__ = [
    "CacheLevelParams",
    "CacheParams",
    "SliceParams",
    "DEFAULT_CACHE_PARAMS",
    "DEFAULT_SLICE_PARAMS",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "CacheBank",
    "CacheGeometry",
    "l2_hit_delay",
    "VCoreConfig",
    "ConfigurationSpace",
    "DEFAULT_CONFIG_SPACE",
    "Slice",
    "Fabric",
    "FabricError",
    "Tile",
    "TileKind",
    "DistributedRegisterFile",
    "RegisterFlushError",
    "FlushRecord",
    "ReconfigCommand",
    "ReconfigKind",
    "ReconfigCostModel",
    "ReconfigEngine",
    "DEFAULT_RECONFIG_COSTS",
    "CounterSample",
    "PerformanceCounters",
    "CounterKind",
    "RuntimeInterfaceNetwork",
    "CounterRequest",
    "CounterReply",
    "OperandNetwork",
    "MessagePriority",
    "VirtualMachine",
    "VmShapePoint",
    "best_vm_shape",
    "enumerate_vm_shapes",
    "uniform_vm",
    "vm_throughput",
]
