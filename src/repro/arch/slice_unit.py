"""The Slice: the basic unit of computation in the CASH fabric.

A Slice is a simple out-of-order processor with one ALU, one load/store
unit, a two-wide fetch, and a small L1 (Fig. 4, Table I).  At this
(architectural) level a Slice is an allocatable tile carrying its
pipeline parameters, a performance-counter block, and its position on
the fabric; the cycle-level behaviour lives in
:mod:`repro.sim.pipeline`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.arch.counters import PerformanceCounters
from repro.arch.params import CacheParams, SliceParams
from repro.arch.params import DEFAULT_CACHE_PARAMS, DEFAULT_SLICE_PARAMS


@dataclass
class Slice:
    """One Slice tile on the fabric."""

    slice_id: int
    position: Tuple[int, int] = (0, 0)
    params: SliceParams = DEFAULT_SLICE_PARAMS
    cache_params: CacheParams = DEFAULT_CACHE_PARAMS
    owner_vcore: Optional[int] = None
    is_runtime_slice: bool = False
    counters: PerformanceCounters = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.slice_id < 0:
            raise ValueError(f"slice_id must be non-negative, got {self.slice_id}")
        if self.counters is None:
            self.counters = PerformanceCounters(self.slice_id)

    @property
    def is_allocated(self) -> bool:
        return self.owner_vcore is not None

    def allocate(self, vcore_id: int) -> None:
        if self.is_allocated:
            raise ValueError(
                f"slice {self.slice_id} already owned by vcore {self.owner_vcore}"
            )
        self.owner_vcore = vcore_id

    def release(self) -> None:
        self.owner_vcore = None

    def pipeline_flush_cycles(self) -> int:
        """Cycles to flush the pipeline on reconfiguration (~15).

        A Slice joining a virtual core (EXPAND) only needs a pipeline
        flush: in-flight instructions drain from the ROB and the front
        end redirects (Section VI-A).
        """
        # Depth of the pipeline (fetch, decode, two rename stages,
        # issue, execute, memory, commit) plus draining the typical
        # in-flight ROB occupancy at commit width.
        depth = 7
        drain = self.params.rob_size // (self.params.commit_width * 4)
        return depth + drain

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        owner = f", vcore={self.owner_vcore}" if self.is_allocated else ""
        runtime = ", runtime" if self.is_runtime_slice else ""
        return f"Slice({self.slice_id}@{self.position}{owner}{runtime})"
