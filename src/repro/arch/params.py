"""Architectural parameter records (Tables I and II of the paper).

These dataclasses capture the base Slice and cache configurations used by
both the cycle-level simulator (:mod:`repro.sim.pipeline`) and the fast
analytic performance model (:mod:`repro.sim.perfmodel`).  They are frozen:
an experiment that wants different hardware builds a new record with
:func:`dataclasses.replace`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SliceParams:
    """Base Slice configuration (Table I).

    A Slice is a simple out-of-order core with one ALU, one load/store
    unit, a two-wide fetch, and a small L1.  All sizes are per Slice
    unless stated otherwise.
    """

    functional_units: int = 2
    """Number of functional units per Slice (1 ALU + 1 LSU)."""

    physical_registers: int = 128
    """Number of global physical (logical-name-space) registers."""

    local_registers: int = 64
    """Number of local storage registers per Slice."""

    issue_window: int = 32
    """Issue window entries per Slice."""

    load_store_queue: int = 32
    """Load/store queue entries per Slice."""

    rob_size: int = 64
    """Reorder buffer entries per Slice."""

    store_buffer: int = 8
    """Store buffer entries per Slice."""

    max_inflight_loads: int = 8
    """Maximum number of in-flight loads per Slice."""

    memory_delay: int = 100
    """Main memory access delay in cycles."""

    fetch_width: int = 2
    """Instructions fetched per cycle per Slice."""

    commit_width: int = 2
    """Instructions committed per cycle per Slice."""

    def __post_init__(self) -> None:
        for name in (
            "functional_units",
            "physical_registers",
            "local_registers",
            "issue_window",
            "load_store_queue",
            "rob_size",
            "store_buffer",
            "max_inflight_loads",
            "memory_delay",
            "fetch_width",
            "commit_width",
        ):
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        if self.local_registers > self.physical_registers:
            raise ValueError(
                "local registers per Slice cannot exceed the global "
                f"physical register count ({self.local_registers} > "
                f"{self.physical_registers})"
            )


@dataclass(frozen=True)
class CacheLevelParams:
    """One cache level from Table II."""

    size_kb: int
    block_bytes: int
    associativity: int

    def __post_init__(self) -> None:
        if self.size_kb <= 0:
            raise ValueError(f"size_kb must be positive, got {self.size_kb}")
        if self.block_bytes <= 0:
            raise ValueError(
                f"block_bytes must be positive, got {self.block_bytes}"
            )
        if self.associativity <= 0:
            raise ValueError(
                f"associativity must be positive, got {self.associativity}"
            )
        blocks = self.size_kb * 1024 // self.block_bytes
        if blocks % self.associativity:
            raise ValueError(
                f"{blocks} blocks not divisible by associativity "
                f"{self.associativity}"
            )

    @property
    def size_bytes(self) -> int:
        return self.size_kb * 1024

    @property
    def num_blocks(self) -> int:
        return self.size_bytes // self.block_bytes

    @property
    def num_sets(self) -> int:
        return self.num_blocks // self.associativity


@dataclass(frozen=True)
class CacheParams:
    """Base cache configuration (Table II).

    L1 hit delay is fixed; the L2 hit delay depends on the Manhattan
    distance from the requesting Slice to the cache bank
    (``distance * 2 + 4`` cycles, see :func:`repro.arch.cache.l2_hit_delay`).
    """

    l1d: CacheLevelParams = CacheLevelParams(size_kb=16, block_bytes=64, associativity=2)
    l1i: CacheLevelParams = CacheLevelParams(size_kb=16, block_bytes=64, associativity=2)
    l2_bank: CacheLevelParams = CacheLevelParams(size_kb=64, block_bytes=64, associativity=4)
    l1_hit_delay: int = 3
    l2_base_delay: int = 4
    l2_delay_per_hop: int = 2
    network_width_bytes: int = 8
    """Width of the L2 flush network in bytes (64 bits)."""

    def __post_init__(self) -> None:
        if self.l1_hit_delay <= 0:
            raise ValueError("l1_hit_delay must be positive")
        if self.l2_base_delay <= 0:
            raise ValueError("l2_base_delay must be positive")
        if self.l2_delay_per_hop <= 0:
            raise ValueError("l2_delay_per_hop must be positive")
        if self.network_width_bytes <= 0:
            raise ValueError("network_width_bytes must be positive")

    @property
    def l2_bank_kb(self) -> int:
        return self.l2_bank.size_kb


DEFAULT_SLICE_PARAMS = SliceParams()
DEFAULT_CACHE_PARAMS = CacheParams()
