"""Convex-optimization feedback control (Sections II-B, VI-C).

This baseline uses a feedback control system to meet the QoS
requirement — the same deadbeat law as CASH's controller — but relies
on a *single convex model* that captures the application's average-case
behaviour over its whole execution.  It neither estimates base speed
online (no Kalman filter) nor learns per-configuration speedups
(no Q-learning).  Its two failure modes, visible in Figs. 2, 7 and 8:

* the convex model cannot represent local optima, so in phases where
  the true surface is non-convex it picks points that miss QoS or
  overpay;
* the fixed base-speed gain makes the controller sluggish (or
  oscillatory) after a phase change, so it lingers in expensive
  configurations (Fig. 8's 54–144 Mcycle plateau).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro import perf
from repro.arch.cost import CostModel, DEFAULT_COST_MODEL
from repro.arch.vcore import ConfigurationSpace, VCoreConfig, DEFAULT_CONFIG_SPACE
from repro.runtime.controller import DeadbeatController
from repro.runtime.cash import QoSMeasurement
from repro.runtime.optimizer import (
    ConfigPoint,
    Schedule,
    ScheduleEntry,
    lower_envelope_cost,
)
from repro.sim.optables import OperatingPointTable, operating_point_table
from repro.sim.perfmodel import PerformanceModel
from repro.workloads.phase import PhasedApplication


def average_points(
    app: PhasedApplication,
    model: PerformanceModel,
    space: ConfigurationSpace = DEFAULT_CONFIG_SPACE,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    candidates: Optional[Sequence[VCoreConfig]] = None,
) -> Sequence[ConfigPoint]:
    """Average-case (QoS, cost) points, instruction-weighted over phases.

    This is the offline profile the convex baseline is built from: one
    number per configuration for the *whole* application, hiding all
    phase structure.
    """
    pool = list(candidates) if candidates is not None else list(space)
    total_instructions = app.total_instructions
    if perf.FAST:
        # Same per-(phase, config) IPC values (the tables are built from
        # the bit-identical vectorized kernel), same summation order.
        tables = [
            operating_point_table(phase, model, space, cost_model)
            for phase in app.phases
        ]

        def ipc_of(phase_index: int, config: VCoreConfig) -> float:
            ipc = tables[phase_index].get_ipc(config)
            if ipc is not None:
                return ipc
            return model.ipc(app.phases[phase_index], config)

    else:

        def ipc_of(phase_index: int, config: VCoreConfig) -> float:
            return model.ipc(app.phases[phase_index], config)

    points = []
    for config in pool:
        # Instruction-weighted harmonic mean: total work over total time.
        cycles = sum(
            phase.instructions / ipc_of(index, config)
            for index, phase in enumerate(app.phases)
        )
        points.append(
            ConfigPoint(
                config=config,
                speedup=total_instructions / cycles,
                cost_rate=config.cost_rate(cost_model),
            )
        )
    # The average-case profile is static for the allocator's lifetime;
    # as an OperatingPointTable its lower envelope is computed once
    # instead of once per control interval (fast paths only — the
    # reference path ignores the memoized envelope).
    return OperatingPointTable(tuple(points))


class ConvexOptimizationAllocator:
    """Deadbeat feedback over a static convex average-case model."""

    name = "Convex Optimization"

    def __init__(
        self,
        app: PhasedApplication,
        qos_goal: float,
        model: PerformanceModel,
        space: ConfigurationSpace = DEFAULT_CONFIG_SPACE,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        candidates: Optional[Sequence[VCoreConfig]] = None,
        base_config: Optional[VCoreConfig] = None,
    ) -> None:
        if qos_goal <= 0:
            raise ValueError(f"qos_goal must be positive, got {qos_goal}")
        self.qos_goal = qos_goal
        self.points = average_points(app, model, space, cost_model, candidates)
        if base_config is None:
            base_config = min(
                (p.config for p in self.points), key=lambda c: (c.slices, c.l2_kb)
            )
        base_point = next(p for p in self.points if p.config == base_config)
        # The convex baseline's base speed is fixed at the average-case
        # value for the whole run — this is precisely its handicap.
        self._base_qos = base_point.speedup
        self.controller = DeadbeatController(
            qos_goal=qos_goal, base_qos=self._base_qos
        )
        self._max_average_qos = max(p.speedup for p in self.points)

    def decide(
        self,
        measurement: Optional[QoSMeasurement],
        true_points: Sequence[ConfigPoint],
    ) -> Schedule:
        if measurement is not None:
            self.controller.update(measurement.overall_qos)
        # The controller may demand more than the model's maximum when
        # reality underdelivers (integral windup against model error) —
        # this is how the convex baseline ends up both violating QoS
        # *and* overpaying in non-convex phases (Section VI-C).
        demand_qos = min(
            self.controller.speedup * self._base_qos,
            1.5 * self._max_average_qos,
        )
        try:
            _, schedule = lower_envelope_cost(self.points, demand_qos)
        except ValueError:
            fastest = max(self.points, key=lambda p: p.speedup)
            schedule = Schedule(
                entries=(ScheduleEntry(fastest, 1.0),), saturated=True
            )
        return schedule
