"""Race-to-idle (Sections II-B, VI-C).

Race-to-idle is assumed to have prior knowledge of the application: it
knows the lowest-cost configuration that meets the QoS requirement in
the *worst case*, allocates that virtual core for every phase, and —
when a phase finishes early — idles until the next deadline.  Following
the paper's optimistic assumptions, idling is instantaneous and free.
The result is zero QoS violations at a cost the paper measures at
1.78× optimal (Table III): every easy phase still rents the worst-case
machine while it is busy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.arch.cost import CostModel, DEFAULT_COST_MODEL
from repro.arch.vcore import ConfigurationSpace, VCoreConfig, DEFAULT_CONFIG_SPACE
from repro.runtime.optimizer import (
    ConfigPoint,
    Schedule,
    ScheduleEntry,
    IDLE_POINT,
)
from repro.sim.perfmodel import PerformanceModel
from repro.workloads.phase import PhasedApplication


def worst_case_config(
    app: PhasedApplication,
    qos_goal: float,
    model: PerformanceModel,
    space: ConfigurationSpace = DEFAULT_CONFIG_SPACE,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    candidates: Optional[Sequence[VCoreConfig]] = None,
) -> VCoreConfig:
    """Cheapest configuration meeting the QoS goal in every phase.

    For throughput applications the goal is an IPC floor.  If no
    configuration satisfies every phase, the fastest-in-the-worst-phase
    configuration is returned (the best a static allocation can do).
    """
    if qos_goal <= 0:
        raise ValueError(f"qos_goal must be positive, got {qos_goal}")
    pool = list(candidates) if candidates is not None else list(space)
    if not pool:
        raise ValueError("no candidate configurations")
    feasible = [
        config
        for config in pool
        if all(model.ipc(phase, config) >= qos_goal for phase in app.phases)
    ]
    if feasible:
        return min(feasible, key=lambda c: c.cost_rate(cost_model))
    return max(
        pool,
        key=lambda c: min(model.ipc(phase, c) for phase in app.phases),
    )


@dataclass
class RaceToIdleAllocator:
    """Statically allocate the worst-case virtual core; idle when ahead.

    For throughput workloads each interval owes ``qos_goal`` of work per
    cycle; running the worst-case configuration at its (true) delivered
    QoS finishes that work in a ``qos_goal / qos`` fraction of the
    interval and idles — free — for the remainder.  Server (latency)
    workloads cannot race ahead of unarrived requests, so the
    configuration is simply held for the whole interval
    (``can_idle=False``), which is how Fig. 9 shows race-to-idle as a
    flat, maximal cost line.
    """

    config: VCoreConfig
    qos_goal: float
    cost_model: CostModel = DEFAULT_COST_MODEL
    can_idle: bool = True
    name: str = "Race to Idle"

    def __post_init__(self) -> None:
        if self.qos_goal <= 0:
            raise ValueError(f"qos_goal must be positive, got {self.qos_goal}")

    def decide(
        self,
        measurement: Optional[object],
        true_points: Sequence[ConfigPoint],
    ) -> Schedule:
        point = next(
            (p for p in true_points if p.config == self.config), None
        )
        if point is None:
            raise ValueError(
                f"worst-case config {self.config} missing from true points"
            )
        if not self.can_idle or point.speedup <= 0:
            return Schedule(entries=(ScheduleEntry(point, 1.0),))
        busy_fraction = min(self.qos_goal / point.speedup, 1.0)
        if busy_fraction >= 1.0:
            return Schedule(entries=(ScheduleEntry(point, 1.0),))
        return Schedule(
            entries=(
                ScheduleEntry(point, busy_fraction),
                ScheduleEntry(IDLE_POINT, 1.0 - busy_fraction),
            )
        )
