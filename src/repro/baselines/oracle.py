"""The oracle: true minimal cost for any QoS target (Section V-C).

The paper constructs its oracle by running every application in every
configuration, manually identifying phases, and brute-forcing the
lowest-cost resource combination for each performance goal.  Here the
oracle is granted the same perfect knowledge: the true per-phase
operating points (from the fast SSim tier) and the current phase.  It
solves Eqn. 5 exactly on the true points — the lower convex envelope —
so no allocator can beat it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import perf
from repro.arch.cost import CostModel, DEFAULT_COST_MODEL
from repro.arch.vcore import ConfigurationSpace, VCoreConfig, DEFAULT_CONFIG_SPACE
from repro.runtime.optimizer import (
    ConfigPoint,
    Schedule,
    ScheduleEntry,
    IDLE_POINT,
    lower_envelope_cost,
)
from repro.sim.optables import operating_point_table
from repro.sim.perfmodel import PerformanceModel
from repro.workloads.phase import Phase, PhasedApplication


@dataclass(frozen=True)
class OracleEntry:
    """Optimal schedule and cost rate for one phase at one QoS goal."""

    phase_name: str
    schedule: Schedule
    cost_rate: float


def phase_points(
    phase: Phase,
    model: PerformanceModel,
    space: ConfigurationSpace = DEFAULT_CONFIG_SPACE,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> Sequence[ConfigPoint]:
    """True (QoS, cost) operating points of every configuration.

    Served from the process-global memoized table (with its cached
    envelope) when the fast paths are on; the points are bit-identical
    to the scalar construction either way.
    """
    if perf.FAST:
        return operating_point_table(phase, model, space, cost_model)
    return [
        ConfigPoint(
            config=config,
            speedup=model.ipc(phase, config),
            cost_rate=config.cost_rate(cost_model),
        )
        for config in space
    ]


def build_oracle_table(
    app: PhasedApplication,
    qos_goal: float,
    model: PerformanceModel,
    space: ConfigurationSpace = DEFAULT_CONFIG_SPACE,
    cost_model: CostModel = DEFAULT_COST_MODEL,
) -> Dict[str, OracleEntry]:
    """Per-phase optimal schedules for a throughput QoS goal."""
    if qos_goal <= 0:
        raise ValueError(f"qos_goal must be positive, got {qos_goal}")
    table: Dict[str, OracleEntry] = {}
    for phase in app.phases:
        points = phase_points(phase, model, space, cost_model)
        cost, schedule = lower_envelope_cost(points, qos_goal)
        table[phase.name] = OracleEntry(
            phase_name=phase.name, schedule=schedule, cost_rate=cost
        )
    return table


class OracleAllocator:
    """Allocator with perfect knowledge of the current operating points.

    Each interval the harness hands it the *true* configuration points
    for the present phase (and, for server workloads, the present
    request rate); it returns the exact LP optimum.  This is the
    idealized reference every other allocator is normalized against.
    """

    name = "Optimal"

    def __init__(self, qos_goal: float) -> None:
        if qos_goal <= 0:
            raise ValueError(f"qos_goal must be positive, got {qos_goal}")
        self.qos_goal = qos_goal

    def decide(
        self,
        measurement: Optional[object],
        true_points: Sequence[ConfigPoint],
    ) -> Schedule:
        try:
            _, schedule = lower_envelope_cost(true_points, self.qos_goal)
        except ValueError:
            # Goal unreachable this interval even for the oracle: run
            # the fastest configuration flat out.
            fastest = max(true_points, key=lambda p: p.speedup)
            schedule = Schedule(
                entries=(ScheduleEntry(fastest, 1.0),), saturated=True
            )
        return schedule
