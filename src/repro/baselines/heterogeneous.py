"""The coarse-grain heterogeneous architecture (Section VI-E).

To quantify what fine-grain configurability buys, the paper compares
against a big.LITTLE-style design simulated on the same fabric: one
*big* core — the largest configuration needed to meet the QoS demands
of all target applications, 8 Slices with a 4 MB L2 — and one *little*
core — the most cost-efficient configuration on average across the
benchmarks, 1 Slice with a 128 KB L2.  Core types are fixed at design
time; a scheduler may only choose between them (and, for
race-to-idle, may not even do that).

Four comparison points arise from {coarse, fine} × {race, adaptive}:
CoarseGrain-race, CoarseGrain-adaptive (the CASH runtime restricted to
the two fixed cores), FineGrain-race, and CASH.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.arch.vcore import ConfigurationSpace, VCoreConfig

BIG_CONFIG = VCoreConfig(slices=8, l2_kb=8192)
"""The big core: the largest configuration needed to meet the QoS
demands of all target applications (the paper's selection principle).
On the paper's workload calibration that principle yielded 8 Slices
with a 4 MB L2; our calibrated suite contains phases whose QoS-setting
optimum needs the full 8 MB (e.g. mcf, x264 phase 3), so coverage
requires 8S/8MB here."""

LITTLE_CONFIG = VCoreConfig(slices=1, l2_kb=128)
"""The little core: most cost-efficient configuration on average."""


def coarse_grain_space(
    big: VCoreConfig = BIG_CONFIG,
    little: VCoreConfig = LITTLE_CONFIG,
) -> ConfigurationSpace:
    """The two-point configuration 'menu' of a big.LITTLE design.

    Built as a ConfigurationSpace so every allocator (race, convex,
    CASH runtime) runs unchanged on the coarse-grain architecture —
    only the menu differs.
    """
    if big == little:
        raise ValueError("big and little cores must differ")
    slice_counts = sorted({big.slices, little.slices})
    l2_sizes = sorted({big.l2_kb, little.l2_kb})
    space = ConfigurationSpace(slice_counts=slice_counts, l2_sizes_kb=l2_sizes)
    return space


def coarse_grain_configs(
    big: VCoreConfig = BIG_CONFIG,
    little: VCoreConfig = LITTLE_CONFIG,
) -> List[VCoreConfig]:
    """Just the two legal core types (the full grid of the two-point
    space would also contain 1S/4MB and 8S/128KB hybrids, which a
    design-time-fixed architecture does not offer)."""
    return [little, big]
