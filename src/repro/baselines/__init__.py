"""Comparison resource allocators and architectures (Sections II-B, VI).

* :mod:`repro.baselines.oracle` — brute-force optimal allocation with
  perfect phase knowledge (the paper's oracle, Section V-C);
* :mod:`repro.baselines.race` — race-to-idle with a-priori worst-case
  knowledge (idling is optimistically free);
* :mod:`repro.baselines.convex` — feedback control over a single convex
  average-case model (no learning, no phase estimation);
* :mod:`repro.baselines.heterogeneous` — the coarse-grain big.LITTLE
  architecture: a fixed {little, big} configuration menu (Section VI-E).
"""

from repro.baselines.oracle import OracleAllocator, build_oracle_table
from repro.baselines.race import RaceToIdleAllocator, worst_case_config
from repro.baselines.convex import ConvexOptimizationAllocator, average_points
from repro.baselines.heterogeneous import (
    BIG_CONFIG,
    LITTLE_CONFIG,
    coarse_grain_space,
)

__all__ = [
    "OracleAllocator",
    "build_oracle_table",
    "RaceToIdleAllocator",
    "worst_case_config",
    "ConvexOptimizationAllocator",
    "average_points",
    "BIG_CONFIG",
    "LITTLE_CONFIG",
    "coarse_grain_space",
]
