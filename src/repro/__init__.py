"""repro: a reproduction of CASH (ISCA 2016).

CASH co-designs a sub-core configurable architecture (a fabric of
Slices and L2 cache banks composed into virtual cores) with a
cost-optimizing runtime (deadbeat control + Kalman phase estimation +
Q-learning over a two-configuration LP schedule) that meets IaaS
customers' QoS targets at near-minimal rental cost.
"""

__version__ = "1.0.0"
