"""The ``repro lint`` subcommand.

Runs every registered rule over the given paths (default: ``src``),
gates the result against the committed findings baseline, and reports
in human-readable text or machine-readable JSON.

Exit codes: ``0`` — no findings beyond the baseline; ``1`` — new
findings (or, with ``--strict-stale``, retired debt the baseline still
records); ``2`` — usage errors (missing paths, malformed baseline).
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional, Set, TextIO

from repro.analysis import ALL_RULES, RULES_BY_ID
from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    diff_against_baseline,
    fingerprints,
    write_baseline,
)
from repro.analysis.core import (
    FileContext,
    Finding,
    load_contexts,
    scan_paths,
)
from repro.analysis.dataflow import (
    SCHEMA_PIN_FILENAME,
    SchemaDriftRule,
    dataflow_report,
    write_schema_pins,
)
from repro.analysis.hotpath import HotReportEntry, hot_report


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="output format (default: text); 'github' emits GitHub "
        "Actions ::error annotations",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE_NAME,
        help=f"findings baseline file (default: {DEFAULT_BASELINE_NAME})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline: every finding fails the gate",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to the current findings and exit 0",
    )
    parser.add_argument(
        "--strict-stale",
        action="store_true",
        help="also fail when the baseline records findings that no "
        "longer exist (keeps the committed debt honest)",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="anchor for repo-relative paths in reports and fingerprints "
        "(default: current directory)",
    )
    parser.add_argument(
        "--hot-report",
        action="store_true",
        help="instead of linting, rank hot functions by (loop-nesting "
        "depth x live hot-path findings); honors --format text/json",
    )
    parser.add_argument(
        "--rules",
        action="store_true",
        help="list every registered rule with its scope and one-line "
        "description, then exit",
    )
    parser.add_argument(
        "--dataflow-report",
        action="store_true",
        help="instead of linting, print the dataflow evidence tables "
        "(per-cache key-vs-read sets, per-stream seed provenance, "
        "schema-surface fingerprints); honors --format text/json",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help="run per-file rules only on files changed vs git HEAD "
        "(plus untracked); program rules still scan the whole tree",
    )
    parser.add_argument(
        "--update-schema",
        action="store_true",
        help=f"regenerate {SCHEMA_PIN_FILENAME} from the scanned "
        "surfaces and exit 0",
    )


def _rule_scope(rule_id: str) -> str:
    """Scope label for a finding's rule (synthetic rules like
    ``parse-error`` have no registered Rule object)."""
    rule = RULES_BY_ID.get(rule_id)
    return rule.scope_label if rule is not None else "repo-wide"


def _emit_json(
    findings: List[Finding],
    stream: TextIO,
    suppressed: Optional[Dict[str, int]] = None,
) -> None:
    """Machine-readable findings; schema documented in DESIGN §9.

    Version 2 adds the per-finding ``scope`` (where the rule can fire)
    and the top-level per-rule ``suppressed`` pragma counts, matching
    what the text path already surfaces.
    """
    entries = [
        {
            "path": finding.path,
            "line": finding.line,
            "column": finding.column,
            "rule": finding.rule,
            "scope": _rule_scope(finding.rule),
            "message": finding.message,
            "snippet": finding.snippet,
            "fingerprint": digest,
        }
        for finding, digest in fingerprints(findings)
    ]
    payload = {
        "version": 2,
        "findings": entries,
        "suppressed": dict(sorted((suppressed or {}).items())),
    }
    json.dump(payload, stream, indent=2)
    stream.write("\n")


def _github_escape(value: str) -> str:
    """Escape a message for a GitHub Actions workflow command."""
    return (
        value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    )


def _github_escape_property(value: str) -> str:
    """Escape a workflow-command property value (file, title, ...)."""
    return _github_escape(value).replace(":", "%3A").replace(",", "%2C")


def _emit_github(findings: List[Finding], stream: TextIO) -> None:
    """``::error file=...,line=...::`` annotations, one per finding.

    Findings arrive already stable-sorted by (path, line, column,
    rule), so reruns on an unchanged tree produce byte-identical
    output and CI log diffs stay meaningful.
    """
    for finding in findings:
        stream.write(
            "::error "
            f"file={_github_escape_property(finding.path)},"
            f"line={finding.line},"
            f"col={finding.column},"
            f"title={_github_escape_property(f'repro lint: {finding.rule}')}"
            f"::{_github_escape(finding.message)}\n"
        )


def _emit_rules(stream: TextIO) -> None:
    """``repro lint --rules``: id, scope, description for every rule.

    The scope column tells pragma authors where a rule can fire:
    ``repo-wide``, ``engine-dirs(...)``, or ``hot-set`` (only inside
    functions reachable from the FAST engine entrypoints).
    """
    width = max(len(rule.id) for rule in ALL_RULES)
    scope_width = max(len(rule.scope_label) for rule in ALL_RULES)
    for rule in sorted(ALL_RULES, key=lambda rule: rule.id):
        stream.write(
            f"{rule.id:<{width}}  {rule.scope_label:<{scope_width}}  "
            f"{rule.description}\n"
        )


def _emit_hot_report(
    entries: List[HotReportEntry], fmt: str, stream: TextIO
) -> None:
    """Render the hot-function cost ranking as text or JSON."""
    if fmt == "json":
        json.dump(
            {
                "version": 1,
                "hot_functions": [
                    {
                        "qualname": entry.qualname,
                        "module": entry.module,
                        "path": entry.path,
                        "line": entry.line,
                        "root": entry.root,
                        "loop_depth": entry.depth,
                        "findings": entry.findings,
                        "score": entry.score,
                    }
                    for entry in entries
                ],
            },
            stream,
            indent=2,
        )
        stream.write("\n")
        return
    stream.write(
        f"{'score':>5} {'depth':>5} {'findings':>8}  "
        f"{'function':<48} reached from\n"
    )
    for entry in entries:
        stream.write(
            f"{entry.score:>5} {entry.depth:>5} {entry.findings:>8}  "
            f"{entry.module + '.' + entry.qualname:<48} {entry.root}\n"
        )
    stream.write(f"{len(entries)} hot function(s)\n")


def _emit_dataflow_report(
    contexts: List[FileContext], fmt: str, stream: TextIO
) -> None:
    """Render the dataflow evidence tables as text or JSON."""
    report = dataflow_report(contexts)
    if fmt == "json":
        json.dump({"version": 1, **report}, stream, indent=2)
        stream.write("\n")
        return
    caches = report["caches"]
    streams = report["streams"]
    schema = report["schema"]
    assert isinstance(caches, list)
    assert isinstance(streams, list)
    assert isinstance(schema, dict)
    stream.write(f"caches ({len(caches)}):\n")
    for row in caches:
        status = (
            f"MISSING {', '.join(row['missing'])}"
            if row["missing"]
            else "ok"
        )
        stream.write(
            f"  {row['path']}:{row['line']}  {row['function']}  "
            f"[{row['kind']}] {row['container']}\n"
            f"      key:   {', '.join(row['key']) or '-'}"
            f"{'  (digest-keyed)' if row['digest_keyed'] else ''}\n"
            f"      reads: {', '.join(row['reads']) or '-'}   {status}\n"
        )
    stream.write(f"streams ({len(streams)}):\n")
    for row in streams:
        stream.write(
            f"  {row['path']}:{row['line']}  {row['function']}  "
            f"{row['name']}  "
            f"{'keyed' if row['keyed'] else 'unkeyed'}"
            f"{'  -> return' if row['returned'] else ''}\n"
            f"      seed:  {', '.join(row['seed']) or '-'}\n"
            f"      sinks: {', '.join(row['sinks']) or '-'}\n"
        )
    stream.write(f"schema surfaces ({len(schema)}):\n")
    for name, entry in schema.items():
        stream.write(
            f"  {name}  v{entry['schema_version']}  "
            f"{entry['fingerprint']}\n"
        )


def _changed_paths(root: Path) -> Optional[Set[str]]:
    """POSIX-relative paths changed vs HEAD, plus untracked files.

    Returns None (caller lints everything) when git is unavailable or
    the root is not a work tree — ``--changed-only`` degrades to a full
    scan rather than silently linting nothing.
    """
    changed: Set[str] = set()
    for command in (
        ["git", "diff", "--name-only", "HEAD"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            result = subprocess.run(
                command,
                cwd=root,
                capture_output=True,
                text=True,
                check=True,
                timeout=30,
            )
        except (OSError, subprocess.SubprocessError):
            return None
        for line in result.stdout.splitlines():
            line = line.strip()
            if line:
                changed.add(line.replace("\\", "/"))
    return changed


def _membership_filter(changed: Set[str]) -> Callable[[FileContext], bool]:
    def accept(context: FileContext) -> bool:
        return context.display_path in changed

    return accept


def run_lint(
    args: argparse.Namespace, stream: Optional[TextIO] = None
) -> int:
    out = stream if stream is not None else sys.stdout
    if args.rules:
        _emit_rules(out)
        return 0
    paths = [Path(p) for p in args.paths]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"repro lint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    root = Path(args.root) if args.root else Path.cwd()
    for rule in ALL_RULES:
        if isinstance(rule, SchemaDriftRule):
            rule.pin_path = root / SCHEMA_PIN_FILENAME
    if args.update_schema:
        contexts, errors = load_contexts(paths, root=root)
        if errors:
            for finding in errors:
                print(finding.render(), file=sys.stderr)
            return 2
        surfaces = write_schema_pins(contexts, root / SCHEMA_PIN_FILENAME)
        print(
            f"pinned {len(surfaces)} surface(s) to {SCHEMA_PIN_FILENAME}",
            file=out,
        )
        return 0
    if args.hot_report or args.dataflow_report:
        contexts, errors = load_contexts(paths, root=root)
        if errors:
            for finding in errors:
                print(finding.render(), file=sys.stderr)
            return 2
        if args.hot_report:
            _emit_hot_report(hot_report(contexts), args.format, out)
        if args.dataflow_report:
            _emit_dataflow_report(contexts, args.format, out)
        return 0
    file_filter: Optional[Callable[[FileContext], bool]] = None
    if args.changed_only:
        changed = _changed_paths(root)
        if changed is None:
            print(
                "repro lint: --changed-only: git unavailable, "
                "scanning everything",
                file=sys.stderr,
            )
        else:
            file_filter = _membership_filter(changed)
    suppressed: Dict[str, int] = {}
    findings = scan_paths(
        paths,
        ALL_RULES,
        root=root,
        file_filter=file_filter,
        suppressed=suppressed,
    )

    baseline_path = Path(args.baseline)
    if args.update_baseline:
        write_baseline(findings, baseline_path)
        print(
            f"wrote {len(findings)} finding(s) to {baseline_path}", file=out
        )
        return 0

    new: List[Finding]
    known: List[Finding]
    stale: List[str]
    if args.no_baseline:
        new, known, stale = findings, [], []
    else:
        try:
            diff = diff_against_baseline(findings, baseline_path)
        except ValueError as error:
            print(f"repro lint: {error}", file=sys.stderr)
            return 2
        new, known, stale = diff.new, diff.known, diff.stale

    if args.format == "json":
        _emit_json(new, out, suppressed)
    elif args.format == "github":
        _emit_github(new, out)
        print(
            f"{len(new)} new finding(s), {len(known)} baselined, "
            f"{len(stale)} stale baseline entrie(s)",
            file=out,
        )
    else:
        for finding in new:
            print(finding.render(), file=out)
            if finding.snippet:
                print(f"    {finding.snippet}", file=out)
        summary = (
            f"{len(new)} new finding(s), {len(known)} baselined, "
            f"{len(stale)} stale baseline entrie(s), "
            f"{sum(suppressed.values())} pragma-suppressed"
        )
        print(summary, file=out)
        if stale:
            print(
                "stale entries record already-fixed debt; run "
                "'repro lint --update-baseline' to retire them",
                file=out,
            )

    if new:
        return 1
    if stale and args.strict_stale:
        return 1
    return 0
