"""The ``repro lint`` subcommand.

Runs every registered rule over the given paths (default: ``src``),
gates the result against the committed findings baseline, and reports
in human-readable text or machine-readable JSON.

Exit codes: ``0`` — no findings beyond the baseline; ``1`` — new
findings (or, with ``--strict-stale``, retired debt the baseline still
records); ``2`` — usage errors (missing paths, malformed baseline).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, TextIO

from repro.analysis import ALL_RULES
from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    diff_against_baseline,
    fingerprints,
    write_baseline,
)
from repro.analysis.core import Finding, load_contexts, scan_paths
from repro.analysis.hotpath import HotReportEntry, hot_report


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="output format (default: text); 'github' emits GitHub "
        "Actions ::error annotations",
    )
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE_NAME,
        help=f"findings baseline file (default: {DEFAULT_BASELINE_NAME})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline: every finding fails the gate",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to the current findings and exit 0",
    )
    parser.add_argument(
        "--strict-stale",
        action="store_true",
        help="also fail when the baseline records findings that no "
        "longer exist (keeps the committed debt honest)",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="anchor for repo-relative paths in reports and fingerprints "
        "(default: current directory)",
    )
    parser.add_argument(
        "--hot-report",
        action="store_true",
        help="instead of linting, rank hot functions by (loop-nesting "
        "depth x live hot-path findings); honors --format text/json",
    )
    parser.add_argument(
        "--rules",
        action="store_true",
        help="list every registered rule with its scope and one-line "
        "description, then exit",
    )


def _emit_json(findings: List[Finding], stream: TextIO) -> None:
    entries = [
        {
            "path": finding.path,
            "line": finding.line,
            "column": finding.column,
            "rule": finding.rule,
            "message": finding.message,
            "snippet": finding.snippet,
            "fingerprint": digest,
        }
        for finding, digest in fingerprints(findings)
    ]
    json.dump({"version": 1, "findings": entries}, stream, indent=2)
    stream.write("\n")


def _github_escape(value: str) -> str:
    """Escape a message for a GitHub Actions workflow command."""
    return (
        value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    )


def _github_escape_property(value: str) -> str:
    """Escape a workflow-command property value (file, title, ...)."""
    return _github_escape(value).replace(":", "%3A").replace(",", "%2C")


def _emit_github(findings: List[Finding], stream: TextIO) -> None:
    """``::error file=...,line=...::`` annotations, one per finding.

    Findings arrive already stable-sorted by (path, line, column,
    rule), so reruns on an unchanged tree produce byte-identical
    output and CI log diffs stay meaningful.
    """
    for finding in findings:
        stream.write(
            "::error "
            f"file={_github_escape_property(finding.path)},"
            f"line={finding.line},"
            f"col={finding.column},"
            f"title={_github_escape_property(f'repro lint: {finding.rule}')}"
            f"::{_github_escape(finding.message)}\n"
        )


def _emit_rules(stream: TextIO) -> None:
    """``repro lint --rules``: id, scope, description for every rule.

    The scope column tells pragma authors where a rule can fire:
    ``repo-wide``, ``engine-dirs(...)``, or ``hot-set`` (only inside
    functions reachable from the FAST engine entrypoints).
    """
    width = max(len(rule.id) for rule in ALL_RULES)
    scope_width = max(len(rule.scope_label) for rule in ALL_RULES)
    for rule in sorted(ALL_RULES, key=lambda rule: rule.id):
        stream.write(
            f"{rule.id:<{width}}  {rule.scope_label:<{scope_width}}  "
            f"{rule.description}\n"
        )


def _emit_hot_report(
    entries: List[HotReportEntry], fmt: str, stream: TextIO
) -> None:
    """Render the hot-function cost ranking as text or JSON."""
    if fmt == "json":
        json.dump(
            {
                "version": 1,
                "hot_functions": [
                    {
                        "qualname": entry.qualname,
                        "module": entry.module,
                        "path": entry.path,
                        "line": entry.line,
                        "root": entry.root,
                        "loop_depth": entry.depth,
                        "findings": entry.findings,
                        "score": entry.score,
                    }
                    for entry in entries
                ],
            },
            stream,
            indent=2,
        )
        stream.write("\n")
        return
    stream.write(
        f"{'score':>5} {'depth':>5} {'findings':>8}  "
        f"{'function':<48} reached from\n"
    )
    for entry in entries:
        stream.write(
            f"{entry.score:>5} {entry.depth:>5} {entry.findings:>8}  "
            f"{entry.module + '.' + entry.qualname:<48} {entry.root}\n"
        )
    stream.write(f"{len(entries)} hot function(s)\n")


def run_lint(
    args: argparse.Namespace, stream: Optional[TextIO] = None
) -> int:
    out = stream if stream is not None else sys.stdout
    if args.rules:
        _emit_rules(out)
        return 0
    paths = [Path(p) for p in args.paths]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"repro lint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    root = Path(args.root) if args.root else Path.cwd()
    if args.hot_report:
        contexts, errors = load_contexts(paths, root=root)
        if errors:
            for finding in errors:
                print(finding.render(), file=sys.stderr)
            return 2
        _emit_hot_report(hot_report(contexts), args.format, out)
        return 0
    findings = scan_paths(paths, ALL_RULES, root=root)

    baseline_path = Path(args.baseline)
    if args.update_baseline:
        write_baseline(findings, baseline_path)
        print(
            f"wrote {len(findings)} finding(s) to {baseline_path}", file=out
        )
        return 0

    new: List[Finding]
    known: List[Finding]
    stale: List[str]
    if args.no_baseline:
        new, known, stale = findings, [], []
    else:
        try:
            diff = diff_against_baseline(findings, baseline_path)
        except ValueError as error:
            print(f"repro lint: {error}", file=sys.stderr)
            return 2
        new, known, stale = diff.new, diff.known, diff.stale

    if args.format == "json":
        _emit_json(new, out)
    elif args.format == "github":
        _emit_github(new, out)
        print(
            f"{len(new)} new finding(s), {len(known)} baselined, "
            f"{len(stale)} stale baseline entrie(s)",
            file=out,
        )
    else:
        for finding in new:
            print(finding.render(), file=out)
            if finding.snippet:
                print(f"    {finding.snippet}", file=out)
        summary = (
            f"{len(new)} new finding(s), {len(known)} baselined, "
            f"{len(stale)} stale baseline entrie(s)"
        )
        print(summary, file=out)
        if stale:
            print(
                "stale entries record already-fixed debt; run "
                "'repro lint --update-baseline' to retire them",
                file=out,
            )

    if new:
        return 1
    if stale and args.strict_stale:
        return 1
    return 0
