"""Numeric hygiene rules.

* ``float-eq`` — ``==``/``!=`` against a float literal.  Exact float
  equality is almost always a rounding bug in waiting; the engine's
  convention is an explicit tolerance or a validated-range guard
  (``value <= 0.0`` after a non-negativity check).  The few intentional
  *sentinel* comparisons — e.g. the ``refs == 0.0`` zero-traffic guards
  in ``sim/perfmodel.py``, where the field is either exactly the
  sentinel or meaningfully away from it — carry an inline
  ``# lint: allow(float-eq)`` pragma, which is the explicit allowlist.
* ``mutable-default`` — list/dict/set literals (or constructor calls)
  as parameter defaults: shared across calls, a classic state leak
  between supposedly independent simulations.
* ``numpy-shadow`` — any binding of the names ``np``/``numpy`` other
  than importing numpy itself.  A local ``np`` shadowing the module
  turns every subsequent ``np.foo`` in the function into an attribute
  error — or worse, into a call on the wrong object.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from repro.analysis.core import FileContext, Finding, Rule

_NUMPY_NAMES = frozenset({"np", "numpy"})


def _is_float_literal(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


class FloatEqualityRule(Rule):
    id = "float-eq"
    description = "exact equality comparison against a float literal"

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for index, operator in enumerate(node.ops):
                if not isinstance(operator, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[index], operands[index + 1]
                literal = (
                    left
                    if _is_float_literal(left)
                    else right
                    if _is_float_literal(right)
                    else None
                )
                if literal is None:
                    continue
                symbol = "==" if isinstance(operator, ast.Eq) else "!="
                assert isinstance(literal, ast.Constant)
                yield context.finding(
                    self,
                    node,
                    f"exact float {symbol} {literal.value!r}; use a "
                    "tolerance or a validated-range guard, or mark an "
                    "intentional sentinel with '# lint: allow(float-eq)'",
                )


def _mutable_default(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.List):
        return "list"
    if isinstance(node, ast.Dict):
        return "dict"
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(node, ast.ListComp):
        return "list"
    if isinstance(node, ast.DictComp):
        return "dict"
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in {"list", "dict", "set", "bytearray"}:
            return node.func.id
    return None


class MutableDefaultRule(Rule):
    id = "mutable-default"
    description = "mutable default argument shared across calls"

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                default
                for default in node.args.kw_defaults
                if default is not None
            ]
            for default in defaults:
                kind = _mutable_default(default)
                if kind is not None:
                    yield context.finding(
                        self,
                        default,
                        f"mutable {kind} default is shared across every "
                        f"call of {node.name}(); default to None and "
                        "construct inside the body",
                    )


class NumpyShadowRule(Rule):
    id = "numpy-shadow"
    description = "binding shadows the conventional numpy module names"

    def _flag(
        self, context: FileContext, node: ast.AST, name: str
    ) -> Finding:
        return context.finding(
            self,
            node,
            f"'{name}' shadows the numpy module alias; pick another name",
        )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if bound not in _NUMPY_NAMES:
                        continue
                    if isinstance(node, ast.Import):
                        if alias.name in {"numpy", "numpy.typing"} or (
                            alias.name.startswith("numpy.")
                        ):
                            continue
                    yield self._flag(context, node, bound)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                arguments = node.args
                for arg in (
                    list(arguments.posonlyargs)
                    + list(arguments.args)
                    + list(arguments.kwonlyargs)
                    + ([arguments.vararg] if arguments.vararg else [])
                    + ([arguments.kwarg] if arguments.kwarg else [])
                ):
                    if arg.arg in _NUMPY_NAMES:
                        yield self._flag(context, arg, arg.arg)
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets: List[ast.expr]
                if isinstance(node, ast.Assign):
                    targets = list(node.targets)
                else:
                    targets = [node.target]
                for target in targets:
                    for name_node in ast.walk(target):
                        if (
                            isinstance(name_node, ast.Name)
                            and isinstance(name_node.ctx, ast.Store)
                            and name_node.id in _NUMPY_NAMES
                        ):
                            yield self._flag(context, name_node, name_node.id)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                for name_node in ast.walk(node.target):
                    if (
                        isinstance(name_node, ast.Name)
                        and name_node.id in _NUMPY_NAMES
                    ):
                        yield self._flag(context, name_node, name_node.id)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is None:
                        continue
                    for name_node in ast.walk(item.optional_vars):
                        if (
                            isinstance(name_node, ast.Name)
                            and name_node.id in _NUMPY_NAMES
                        ):
                            yield self._flag(context, name_node, name_node.id)


RULES: List[Rule] = [
    FloatEqualityRule(),
    MutableDefaultRule(),
    NumpyShadowRule(),
]
