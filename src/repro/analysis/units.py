"""Typed unit vocabulary for the repo's counter and pricing quantities.

The paper's runtime interface (Section III-B2) moves two kinds of
counter readings over the network — cycle counts and committed
instruction counts — and the cloud layer (Section VI-B) prices
configurations in dollars per hour.  Mixing these up is a silent bug:
every one of them is a plain ``float`` at run time, so ``cycles +
instructions`` type-checks, runs, and produces garbage.

This module gives each quantity a name.  The aliases are
:data:`typing.Annotated` wrappers around ``float``/``int``, so they are
*zero-cost*: at run time and under mypy they behave exactly like the
underlying number.  Their payload — a :class:`Unit` marker — exists for
the benefit of the ``unit-mix`` lint rule
(:mod:`repro.analysis.numerics` hosts the numeric rules; the unit rule
lives in this module to keep the vocabulary and its checker together),
which flags ``+``/``-`` between values annotated with *different*
units inside a function.  Ratios are deliberately unrestricted:
dividing instructions by cycles is how IPC is *made*, so ``*`` and
``/`` never warn.

Usage::

    from repro.analysis.units import Cycles, Instructions

    def drain(cycles: Cycles, instructions: Instructions) -> float:
        return instructions / cycles          # fine: makes a ratio
        # cycles + instructions               # flagged by `unit-mix`

This module must stay import-light (stdlib ``typing`` only): domain
modules under ``arch/``/``sim/`` import it for annotations, so it must
never import them back.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Annotated, Dict, Iterator, List, Tuple, Union

from repro.analysis.core import FileContext, Finding, Rule, walk_functions


@dataclass(frozen=True)
class Unit:
    """Marker carried in ``Annotated`` metadata naming a quantity's unit."""

    name: str


CYCLES = Unit("cycles")
INSTRUCTIONS = Unit("instructions")
DOLLARS = Unit("dollars")
DOLLARS_PER_HOUR = Unit("dollars/hour")
INSTRUCTIONS_PER_CYCLE = Unit("instructions/cycle")

Cycles = Annotated[float, CYCLES]
"""A duration or timestamp measured in clock cycles."""

CycleCount = Annotated[int, CYCLES]
"""An integral cycle counter reading."""

Instructions = Annotated[float, INSTRUCTIONS]
"""A quantity of committed instructions."""

InstructionCount = Annotated[int, INSTRUCTIONS]
"""An integral committed-instruction counter reading."""

Dollars = Annotated[float, DOLLARS]
"""An absolute dollar amount."""

DollarsPerHour = Annotated[float, DOLLARS_PER_HOUR]
"""A rental cost rate, the unit of every ``cost_rate`` in the repo."""

InstructionsPerCycle = Annotated[float, INSTRUCTIONS_PER_CYCLE]
"""An IPC value: the ratio the performance model predicts."""

#: Annotation spelling (as written in source) -> unit name.  The lint
#: rule matches annotations *syntactically* — it sees source text, not
#: resolved objects — so the vocabulary is keyed by alias name.
UNIT_ALIASES: Dict[str, str] = {
    "Cycles": CYCLES.name,
    "CycleCount": CYCLES.name,
    "Instructions": INSTRUCTIONS.name,
    "InstructionCount": INSTRUCTIONS.name,
    "Dollars": DOLLARS.name,
    "DollarsPerHour": DOLLARS_PER_HOUR.name,
    "InstructionsPerCycle": INSTRUCTIONS_PER_CYCLE.name,
}


def _annotation_unit(annotation: ast.expr) -> Union[str, None]:
    """The unit named by an annotation expression, if any.

    Accepts ``Cycles``, ``units.Cycles``, ``Optional[Cycles]`` and the
    like: the first vocabulary alias mentioned anywhere in the
    annotation wins.
    """
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name) and node.id in UNIT_ALIASES:
            return UNIT_ALIASES[node.id]
        if isinstance(node, ast.Attribute) and node.attr in UNIT_ALIASES:
            return UNIT_ALIASES[node.attr]
    return None


def _function_units(
    function: Union[ast.FunctionDef, ast.AsyncFunctionDef],
) -> Dict[str, str]:
    """Map of local name -> unit, from parameter and variable annotations."""
    units: Dict[str, str] = {}
    arguments = function.args
    every_arg = (
        list(arguments.posonlyargs)
        + list(arguments.args)
        + list(arguments.kwonlyargs)
        + ([arguments.vararg] if arguments.vararg else [])
        + ([arguments.kwarg] if arguments.kwarg else [])
    )
    for arg in every_arg:
        if arg.annotation is not None:
            unit = _annotation_unit(arg.annotation)
            if unit is not None:
                units[arg.arg] = unit
    for node in ast.walk(function):
        if isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            unit = _annotation_unit(node.annotation)
            if unit is not None:
                units[node.target.id] = unit
    return units


def _operand_unit(
    node: ast.expr, units: Dict[str, str]
) -> Union[Tuple[str, str], None]:
    """``(display_name, unit)`` when ``node`` is a unit-annotated name."""
    if isinstance(node, ast.Name) and node.id in units:
        return node.id, units[node.id]
    return None


class UnitMixRule(Rule):
    """``+``/``-`` between values annotated with different units.

    The check is intra-function and purely syntactic: only names whose
    unit is visible from an annotation in the same function participate,
    so it can never false-positive on unannotated code — annotating with
    the :mod:`repro.analysis.units` vocabulary is what opts a function
    in.
    """

    id = "unit-mix"
    description = (
        "additive arithmetic between values annotated with different "
        "repro.analysis.units units"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for function in walk_functions(context.tree):
            units = _function_units(function)
            if len(set(units.values())) < 2:
                continue
            for node in ast.walk(function):
                if not isinstance(node, ast.BinOp):
                    continue
                if not isinstance(node.op, (ast.Add, ast.Sub)):
                    continue
                left = _operand_unit(node.left, units)
                right = _operand_unit(node.right, units)
                if left is None or right is None:
                    continue
                if left[1] == right[1]:
                    continue
                operator = "+" if isinstance(node.op, ast.Add) else "-"
                yield context.finding(
                    self,
                    node,
                    f"'{left[0]} {operator} {right[0]}' mixes units: "
                    f"{left[0]} is in {left[1]} but {right[0]} is in "
                    f"{right[1]} (multiply/divide to convert first)",
                )


RULES: List[Rule] = [UnitMixRule()]
