"""AST-level call graph with module-global effect summaries.

The shared-state rules in :mod:`repro.analysis.effects` need to answer
whole-program questions the per-file rules cannot: *which functions can
a sweep worker reach, and which module-level mutable objects do they
read or write on the way?*  This module builds that picture from the
parsed files of one lint scan — no imports are executed, everything is
derived from the ASTs:

* every module's **globals** are collected from module-level
  assignments and classified (mutable container, rebindable scalar —
  i.e. some function declares it ``global`` — lock, cache).  Lock
  classification covers both values built from lock factories
  (``threading.Lock()`` and friends) and the ``*_LOCK`` naming
  protocol: a global named ``..._LOCK`` is a lock slot even when it is
  initialized to ``None`` and bound to a cross-process lock later (the
  shared operating-point store's ``_CREATE_LOCK`` idiom);
* every function gets a :class:`FunctionSummary` with its resolved
  **calls** (same-module names, ``from``-imports, module-alias
  attributes, ``self.method`` within a class), its **effect sites**
  (reads/writes of module globals, each tagged with whether the site
  sits inside a ``with`` block holding one of the module's locks —
  functions whose name ends in ``_locked`` assume their caller already
  holds the module lock, so their own effects count as synchronized
  and every same-module call *to* them is recorded as a
  :class:`LockedCall` for the lock-discipline rule to check), and
  the bookkeeping the cache rules need (names bound from cache
  lookups, published cache values, names sealed by ``.seal()`` or
  ``.setflags(write=False)``, local mutations, returns);
* :class:`ProgramGraph` links the summaries into a graph and offers
  reachability in deterministic (sorted-root, BFS) order.

The analysis is deliberately conservative-but-sound-enough for the
engine's idioms: dynamic dispatch through arbitrary objects is not
resolved (``allocator.decide(...)`` edges are dropped), so the rules
built on top only claim what a direct call chain proves.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.core import (
    FileContext,
    FunctionNode,
    parent_of,
    shared_analysis,
)

#: Method names that mutate the builtin/stdlib containers the engine
#: uses for module-level state (dict, list, set, OrderedDict, deque).
MUTATOR_METHODS: FrozenSet[str] = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "extendleft",
        "insert",
        "move_to_end",
        "pop",
        "popleft",
        "popitem",
        "remove",
        "reverse",
        "setdefault",
        "sort",
        "update",
    }
)

_MUTABLE_FACTORIES: FrozenSet[str] = frozenset(
    {
        "list",
        "dict",
        "set",
        "bytearray",
        "Counter",
        "OrderedDict",
        "defaultdict",
        "deque",
    }
)

_LOCK_FACTORIES: FrozenSet[str] = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
)

#: Calls that produce provably-immutable values at a cache publish site.
FROZEN_FACTORIES: FrozenSet[str] = frozenset(
    {"frozenset", "tuple", "MappingProxyType"}
)

#: Constructors that produce a stateful RNG stream object.  Attribute
#: calls (``random.Random``, ``np.random.MT19937``) accept the full
#: set; bare names are restricted to the unambiguous ones so a local
#: class that happens to be called ``Generator`` is not misread.
RNG_FACTORY_NAMES: FrozenSet[str] = frozenset(
    {
        "Random",
        "SystemRandom",
        "default_rng",
        "RandomState",
        "MT19937",
        "PCG64",
        "Philox",
        "SFC64",
        "Generator",
    }
)

_RNG_BARE_NAMES: FrozenSet[str] = frozenset(
    {"Random", "SystemRandom", "default_rng", "RandomState", "MT19937"}
)


def is_rng_call(node: ast.AST) -> bool:
    """Whether ``node`` constructs an RNG stream object.

    Recognizes ``random.Random(...)``, ``np.random.MT19937(...)``,
    ``numpy.random.default_rng(...)`` and friends, plus bare-name calls
    of the unambiguous constructors (``Random(seed)`` after a
    ``from random import Random``).
    """
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Name):
        return func.id in _RNG_BARE_NAMES
    if isinstance(func, ast.Attribute):
        if func.attr not in RNG_FACTORY_NAMES:
            return False
        for part in ast.walk(func.value):
            if isinstance(part, ast.Name) and part.id in {
                "random",
                "np",
                "numpy",
            }:
                return True
            if isinstance(part, ast.Attribute) and part.attr == "random":
                return True
    return False


def module_dotted(display_path: str) -> str:
    """Best-effort dotted module name for a display path.

    ``src/repro/sim/optables.py`` becomes ``repro.sim.optables``; a
    leading ``src`` component is dropped, ``__init__`` names the
    package itself.  Synthetic test trees resolve the same way, so
    cross-module import matching works on any scanned layout.
    """
    parts = [part for part in PurePosixPath(display_path).parts if part != "/"]
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class GlobalVar:
    """One module-level binding and how it can be shared/mutated."""

    name: str
    mutable: bool = False
    """Bound to a mutable container (display or known constructor)."""
    rebound: bool = False
    """Some function in the module declares it ``global`` (so scalar
    rebinding is part of the module's protocol)."""
    is_lock: bool = False
    is_cache: bool = False

    @property
    def shared_mutable(self) -> bool:
        """Whether writes to this global are a cross-thread hazard."""
        return (self.mutable or self.rebound) and not self.is_lock


@dataclass(frozen=True)
class Effect:
    """One read or write of a module global at one source site."""

    module: str
    """Dotted module owning the global (usually the site's module)."""
    name: str
    write: bool
    synchronized: bool
    """The site sits inside a ``with`` block on a lock global of the
    module owning the site."""
    node: ast.AST
    path: str


@dataclass(frozen=True)
class CachePublish:
    """A value stored into a module-level cache global."""

    cache_name: str
    value: ast.expr
    node: ast.AST


@dataclass(frozen=True)
class LockedCall:
    """A same-module call to a ``*_locked`` (lock-assuming) helper."""

    name: str
    synchronized: bool
    node: ast.AST


@dataclass(frozen=True)
class Mutation:
    """An in-place mutation of a local name (``x.append``, ``x[k]=``…)."""

    name: str
    node: ast.AST
    what: str


@dataclass(frozen=True)
class Dep:
    """One input a value expression (transitively) depends on.

    ``kind`` is one of:

    * ``"param"`` — a parameter of the enclosing function; ``chain``
      holds the attribute path when the dependence is on a field
      (``spec.seed`` → ``Dep("param", "spec", chain=("seed",))``);
    * ``"global"`` — a module-level name, with ``module`` the dotted
      module that owns it (covers same-module globals, ``from``-imports
      and module-alias attribute reads);
    * ``"loop"`` — a name bound by a ``for`` target or comprehension
      generator in the enclosing frame;
    * ``"unknown"`` — a name or expression the walker cannot classify
      (closures, unresolved call results); consumers treat it as
      "could be anything" in whichever direction is conservative for
      their rule.
    """

    kind: str
    name: str
    module: str = ""
    chain: Tuple[str, ...] = ()

    def render(self) -> str:
        """Stable human-readable form for reports and messages."""
        suffix = "".join(f".{part}" for part in self.chain)
        if self.kind == "global" and self.module:
            return f"{self.module}.{self.name}{suffix}"
        if self.kind == "loop":
            return f"{self.name}{suffix} (loop)"
        if self.kind == "unknown":
            return f"{self.name}?"
        return f"{self.name}{suffix}"


@dataclass
class FunctionSummary:
    """Per-function facts the effect rules consume."""

    key: str
    path: str
    module: str
    qualname: str
    node: FunctionNode
    calls: List[str] = field(default_factory=list)
    effects: List[Effect] = field(default_factory=list)
    has_fast_branch: bool = False
    cache_bindings: Dict[str, ast.AST] = field(default_factory=dict)
    """Local names bound directly from a cache-global lookup."""
    call_bindings: Dict[str, List[str]] = field(default_factory=dict)
    """Local names bound from a resolved call (for taint propagation)."""
    value_sources: Dict[str, List[ast.expr]] = field(default_factory=dict)
    """Every expression assigned to each local name (publish analysis)."""
    sealed_names: Dict[str, int] = field(default_factory=dict)
    """Names frozen by ``name.seal()`` or ``name.setflags(write=False)``
    (an ndarray sealed in place), with the freezing call's line."""
    locked_calls: List[LockedCall] = field(default_factory=list)
    """Same-module calls to ``*_locked`` helpers, with whether the call
    site itself sits inside a module-lock ``with`` block."""
    cache_publishes: List[CachePublish] = field(default_factory=list)
    returned_names: Set[str] = field(default_factory=set)
    returned_calls: List[str] = field(default_factory=list)
    returns_cache_lookup: bool = False
    mutations: List[Mutation] = field(default_factory=list)
    loop_depth: int = 0
    """Deepest loop nesting in this function's own frame."""
    scalar_only_calls: FrozenSet[str] = frozenset()
    """Call targets reached *only* from scalar-twin regions of a
    ``perf.FAST`` split — hot-set reachability does not follow them."""
    params: Tuple[str, ...] = ()
    """Positional + keyword-only parameter names in declaration order
    (``self``/``cls`` included; ``*args``/``**kwargs`` excluded)."""
    has_varargs: bool = False
    """The signature takes ``*args`` or ``**kwargs`` (argument mapping
    across such a call site is conservative)."""
    param_reads: FrozenSet[str] = frozenset()
    """Parameters whose value the body actually loads."""
    loop_targets: FrozenSet[str] = frozenset()
    """Names bound by ``for`` targets or comprehension generators in
    this function's own frame."""
    return_values: List[ast.expr] = field(default_factory=list)
    """The full expression of every ``return <expr>`` statement."""
    call_targets: Dict[ast.Call, str] = field(default_factory=dict)
    """Resolved ``module::qualname`` target per call node, so the
    dataflow walker can map arguments without re-resolving."""

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]


@dataclass
class ModuleInfo:
    """One scanned module: globals, locks, imports, functions."""

    path: str
    dotted: str
    globals: Dict[str, GlobalVar] = field(default_factory=dict)
    lock_names: Set[str] = field(default_factory=set)
    module_aliases: Dict[str, str] = field(default_factory=dict)
    """Local name -> dotted module (``import x.y as m``)."""
    from_imports: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    """Local name -> (dotted module, original name)."""
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)
    frozen_classes: Set[str] = field(default_factory=set)
    classes: Set[str] = field(default_factory=set)
    rng_globals: Set[str] = field(default_factory=set)
    """Module-level names bound directly to an RNG constructor."""


def _terminal_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_mutable_value(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _terminal_name(node.func)
        return name in _MUTABLE_FACTORIES
    return False


def _is_lock_value(node: ast.expr) -> bool:
    if isinstance(node, ast.Call):
        name = _terminal_name(node.func)
        return name in _LOCK_FACTORIES
    return False


def _mentions_fast(condition: ast.expr) -> bool:
    """Whether an ``if`` test references the engine's fast-path switch.

    Mirrors the FAST-parity rule's detection: ``perf.FAST``, a bare
    ``FAST``, or a ``fast_paths_enabled()`` call.
    """
    for node in ast.walk(condition):
        if isinstance(node, ast.Attribute) and node.attr == "FAST":
            return True
        if isinstance(node, ast.Name) and node.id == "FAST":
            return True
        if isinstance(node, ast.Call):
            name = _terminal_name(node.func)
            if name == "fast_paths_enabled":
                return True
    return False


#: AST nodes that open one level of iteration for loop-depth purposes.
#: Comprehensions count: a comprehension inside a ``for`` allocates and
#: iterates once per outer iteration, exactly the shape the hot-path
#: rules police.
LOOP_NODES: Tuple[type, ...] = (
    ast.For,
    ast.AsyncFor,
    ast.While,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
)


def _always_exits(body: Sequence[ast.stmt]) -> bool:
    """Whether a block's last statement unconditionally leaves it."""
    return bool(body) and isinstance(
        body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break)
    )


def _trailing_statements(branch: ast.If) -> List[ast.stmt]:
    """The statements that follow ``branch`` in its enclosing block."""
    parent = parent_of(branch)
    if parent is None:
        return []
    for field_name in ("body", "orelse", "finalbody"):
        block = getattr(parent, field_name, None)
        if isinstance(block, list) and any(
            statement is branch for statement in block
        ):
            index = next(
                i for i, statement in enumerate(block) if statement is branch
            )
            return list(block[index + 1 :])
    return []


def scalar_region_nodes(node: FunctionNode) -> Set[ast.AST]:
    """Every AST node inside a scalar-twin region of a ``perf.FAST`` split.

    The engine writes its twins in two shapes, both of which the
    FAST-parity rule already recognizes:

    * ``if perf.FAST: <fast> else: <scalar>`` — the ``orelse`` block is
      the scalar twin;
    * ``if perf.FAST: return <fast>`` followed by fall-through scalar
      code — the statements after an always-exiting FAST body are the
      scalar twin (and symmetrically, ``if not perf.FAST: return
      <scalar>`` marks the *body* scalar).

    Hot-set construction does not follow calls made only from these
    regions, and the hot-path rules skip findings inside them: the
    scalar reference is *supposed* to be the slow, recompute-everything
    baseline.  Requires the parent-annotated tree a
    :class:`~repro.analysis.core.FileContext` provides.
    """
    regions: List[ast.stmt] = []
    for child in ast.walk(node):
        if not isinstance(child, ast.If) or not _mentions_fast(child.test):
            continue
        negated = isinstance(child.test, ast.UnaryOp) and isinstance(
            child.test.op, ast.Not
        )
        if negated:
            regions.extend(child.body)
        else:
            regions.extend(child.orelse)
            if _always_exits(child.body) and not child.orelse:
                regions.extend(_trailing_statements(child))
    nodes: Set[ast.AST] = set()
    for statement in regions:
        nodes.update(ast.walk(statement))
    return nodes


def fast_region_nodes(node: FunctionNode) -> Set[ast.AST]:
    """Every AST node inside a *fast* region of a ``perf.FAST`` split.

    The mirror image of :func:`scalar_region_nodes`, using the same two
    recognized twin shapes: the ``body`` of ``if perf.FAST:`` is fast,
    and for ``if not perf.FAST: <scalar, always exits>`` the ``orelse``
    plus the fall-through statements are fast.  The RNG provenance rule
    uses both region sets to prove a stream object never crosses the
    twin boundary.
    """
    regions: List[ast.stmt] = []
    for child in ast.walk(node):
        if not isinstance(child, ast.If) or not _mentions_fast(child.test):
            continue
        negated = isinstance(child.test, ast.UnaryOp) and isinstance(
            child.test.op, ast.Not
        )
        if negated:
            regions.extend(child.orelse)
            if _always_exits(child.body) and not child.orelse:
                regions.extend(_trailing_statements(child))
        else:
            regions.extend(child.body)
    nodes: Set[ast.AST] = set()
    for statement in regions:
        nodes.update(ast.walk(statement))
    return nodes


def max_loop_depth(node: FunctionNode) -> int:
    """Deepest loop nesting in ``node``'s own frame.

    Nested function/class definitions are skipped — their bodies run in
    their own frames and get their own summaries.
    """

    def walk(parent: ast.AST, depth: int) -> int:
        deepest = depth
        for child in ast.iter_child_nodes(parent):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            child_depth = depth + 1 if isinstance(child, LOOP_NODES) else depth
            deepest = max(deepest, walk(child, child_depth))
        return deepest

    return walk(node, 0)


def _relative_base(dotted: str, level: int) -> str:
    """The package a ``from ...`` import of ``level`` resolves against."""
    parts = dotted.split(".")
    if level <= 0:
        return dotted
    kept = parts[: max(len(parts) - level, 0)]
    return ".".join(kept)


def _iter_functions(
    module_body: Sequence[ast.stmt],
) -> Iterator[Tuple[str, FunctionNode]]:
    """(qualname, node) for every function/method, outer-to-inner."""

    def walk(body: Sequence[ast.stmt], prefix: str) -> Iterator[Tuple[str, FunctionNode]]:
        for statement in body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{statement.name}"
                yield qualname, statement
                yield from walk(statement.body, f"{qualname}.")
            elif isinstance(statement, ast.ClassDef):
                yield from walk(statement.body, f"{prefix}{statement.name}.")

    return walk(module_body, "")


def _local_names(node: FunctionNode) -> Set[str]:
    """Names bound locally in ``node`` (so not the module's globals)."""
    names: Set[str] = set()
    args = node.args
    for arg in (
        list(args.posonlyargs)
        + list(args.args)
        + list(args.kwonlyargs)
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    ):
        names.add(arg.arg)
    for child in ast.walk(node):
        if child is not node and isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            names.add(child.name)
        elif isinstance(child, ast.Name) and isinstance(
            child.ctx, (ast.Store, ast.Del)
        ):
            names.add(child.id)
    return names


def _enclosing_class(node: FunctionNode) -> Optional[str]:
    parent = parent_of(node)
    while parent is not None:
        if isinstance(parent, ast.ClassDef):
            return parent.name
        parent = parent_of(parent)
    return None


def _is_frozen_dataclass_def(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        if _terminal_name(decorator.func) != "dataclass":
            continue
        for keyword in decorator.keywords:
            if (
                keyword.arg == "frozen"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            ):
                return True
    return False


class _ModuleScanner:
    """Builds one :class:`ModuleInfo` from a parsed file."""

    def __init__(self, context: FileContext) -> None:
        self.context = context
        self.info = ModuleInfo(
            path=context.display_path,
            dotted=module_dotted(context.display_path),
        )

    def scan(self) -> ModuleInfo:
        self._collect_imports_and_globals()
        self._collect_rebounds()
        for qualname, node in _iter_functions(self.context.tree.body):
            summary = self._summarize_function(qualname, node)
            self.info.functions[summary.key] = summary
        return self.info

    # -- module level -----------------------------------------------------

    def _collect_imports_and_globals(self) -> None:
        info = self.info
        for statement in self.context.tree.body:
            if isinstance(statement, ast.Import):
                for alias in statement.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    target = alias.name if alias.asname else alias.name.split(".", 1)[0]
                    info.module_aliases[local] = target
            elif isinstance(statement, ast.ImportFrom):
                base = (
                    _relative_base(info.dotted, statement.level)
                    if statement.level
                    else ""
                )
                module = statement.module or ""
                dotted = ".".join(part for part in (base, module) if part)
                for alias in statement.names:
                    local = alias.asname or alias.name
                    info.from_imports[local] = (dotted, alias.name)
            elif isinstance(statement, (ast.Assign, ast.AnnAssign)):
                targets = (
                    statement.targets
                    if isinstance(statement, ast.Assign)
                    else [statement.target]
                )
                value = statement.value
                for target in targets:
                    if not isinstance(target, ast.Name):
                        continue
                    name = target.id
                    var = info.globals.setdefault(name, GlobalVar(name=name))
                    if value is not None:
                        if _is_lock_value(value):
                            var.is_lock = True
                            info.lock_names.add(name)
                        elif _is_mutable_value(value):
                            var.mutable = True
                    if name.endswith("_LOCK") and not var.mutable:
                        # The *_LOCK naming protocol: also covers lock
                        # slots initialized to None and bound to a
                        # cross-process lock at store attach.
                        var.is_lock = True
                        info.lock_names.add(name)
                    if "CACHE" in name.upper() and not var.is_lock:
                        var.is_cache = True
                    if value is not None and is_rng_call(value):
                        info.rng_globals.add(name)
            elif isinstance(statement, ast.ClassDef):
                info.classes.add(statement.name)
                if _is_frozen_dataclass_def(statement):
                    info.frozen_classes.add(statement.name)

    def _collect_rebounds(self) -> None:
        for node in ast.walk(self.context.tree):
            if isinstance(node, ast.Global):
                for name in node.names:
                    var = self.info.globals.setdefault(
                        name, GlobalVar(name=name)
                    )
                    var.rebound = True

    # -- function level ---------------------------------------------------

    def _summarize_function(
        self, qualname: str, node: FunctionNode
    ) -> FunctionSummary:
        info = self.info
        summary = FunctionSummary(
            key=f"{info.path}::{qualname}",
            path=info.path,
            module=info.dotted,
            qualname=qualname,
            node=node,
        )
        class_name = _enclosing_class(node)
        # The *_locked suffix declares "caller already holds the module
        # lock": the helper's own effects count as synchronized, and
        # the lock-discipline rule checks its call sites instead.
        assumes_lock = qualname.rsplit(".", 1)[-1].endswith("_locked")
        args = node.args
        summary.params = tuple(
            arg.arg
            for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        )
        summary.has_varargs = args.vararg is not None or args.kwarg is not None
        param_set = set(summary.params)
        param_reads: Set[str] = set()
        loop_targets: Set[str] = set()
        locals_here = _local_names(node)
        global_decls: Set[str] = set()
        for child in ast.walk(node):
            if isinstance(child, ast.Global):
                global_decls.update(child.names)
        shadowed = locals_here - global_decls

        def is_module_global(name: str) -> bool:
            return name in info.globals and name not in shadowed

        def synchronized(site: ast.AST) -> bool:
            if assumes_lock:
                return True
            current = parent_of(site)
            while current is not None:
                if isinstance(current, (ast.With, ast.AsyncWith)):
                    for item in current.items:
                        expr = item.context_expr
                        lock_name: Optional[str]
                        if isinstance(expr, (ast.Name, ast.Attribute)):
                            lock_name = _terminal_name(expr)
                        elif isinstance(expr, ast.Call):
                            lock_name = _terminal_name(expr.func)
                        else:
                            lock_name = None
                        if lock_name in info.lock_names:
                            return True
                if current is node:
                    break
                current = parent_of(current)
            return False

        def effect(
            site: ast.AST, name: str, write: bool, module: Optional[str] = None
        ) -> None:
            summary.effects.append(
                Effect(
                    module=module or info.dotted,
                    name=name,
                    write=write,
                    synchronized=synchronized(site),
                    node=site,
                    path=info.path,
                )
            )

        def is_cache_lookup(expr: ast.expr) -> bool:
            """A read through a module-level cache global."""
            if isinstance(expr, ast.Subscript):
                value = expr.value
                return (
                    isinstance(value, ast.Name)
                    and is_module_global(value.id)
                    and info.globals[value.id].is_cache
                )
            if isinstance(expr, ast.Call) and isinstance(
                expr.func, ast.Attribute
            ):
                owner = expr.func.value
                return (
                    expr.func.attr in {"get", "setdefault"}
                    and isinstance(owner, ast.Name)
                    and is_module_global(owner.id)
                    and info.globals[owner.id].is_cache
                )
            return False

        def resolve_call(call: ast.Call) -> Optional[Tuple[str, str]]:
            """(dotted module, qualname) for a resolvable call target."""
            func = call.func
            if isinstance(func, ast.Name):
                name = func.id
                if name in info.from_imports:
                    return info.from_imports[name]
                if name in shadowed:
                    return None
                return (info.dotted, name)
            if isinstance(func, ast.Attribute):
                owner = func.value
                if isinstance(owner, ast.Name):
                    if owner.id == "self" and class_name is not None:
                        return (info.dotted, f"{class_name}.{func.attr}")
                    if owner.id in info.module_aliases:
                        return (
                            info.module_aliases[owner.id],
                            func.attr,
                        )
                    if owner.id in info.from_imports:
                        target_module, original = info.from_imports[owner.id]
                        dotted = (
                            f"{target_module}.{original}"
                            if target_module
                            else original
                        )
                        return (dotted, func.attr)
                elif isinstance(owner, ast.Attribute):
                    # import a.b.c; a.b.c.f(...) — longest dotted chain.
                    chain: List[str] = [func.attr]
                    cursor: ast.expr = owner
                    while isinstance(cursor, ast.Attribute):
                        chain.append(cursor.attr)
                        cursor = cursor.value
                    if isinstance(cursor, ast.Name):
                        chain.append(cursor.id)
                        chain.reverse()
                        base = chain[0]
                        if base in info.module_aliases:
                            dotted = ".".join(
                                [info.module_aliases[base]] + chain[1:-1]
                            )
                            return (dotted, chain[-1])
            return None

        scalar_nodes = scalar_region_nodes(node)
        nonscalar_targets: Set[str] = set()
        for child in ast.walk(node):
            if isinstance(child, ast.If) and _mentions_fast(child.test):
                summary.has_fast_branch = True
            # -- calls ----------------------------------------------------
            if isinstance(child, ast.Call):
                resolved = resolve_call(child)
                if resolved is not None:
                    target_key = "::".join(resolved)
                    summary.calls.append(target_key)
                    summary.call_targets[child] = target_key
                    if child not in scalar_nodes:
                        nonscalar_targets.add(target_key)
                func = child.func
                # Same-module call to a lock-assuming *_locked helper.
                if (
                    isinstance(func, ast.Name)
                    and func.id.endswith("_locked")
                    and func.id not in shadowed
                ):
                    summary.locked_calls.append(
                        LockedCall(
                            name=func.id,
                            synchronized=synchronized(child),
                            node=child,
                        )
                    )
                # Mutator method on a module-global container = write.
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in MUTATOR_METHODS
                    and isinstance(func.value, ast.Name)
                    and is_module_global(func.value.id)
                ):
                    effect(child, func.value.id, write=True)
                # Mutator method on a local name = local mutation site.
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in MUTATOR_METHODS
                    and isinstance(func.value, ast.Name)
                    and not is_module_global(func.value.id)
                ):
                    summary.mutations.append(
                        Mutation(
                            name=func.value.id,
                            node=child,
                            what=f".{func.attr}(...)",
                        )
                    )
                # ``name.seal()`` marks a value frozen-at-publish, and
                # so does ``name.setflags(write=False)`` — the ndarray
                # idiom for sealing a buffer view in place.
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "seal"
                    and isinstance(func.value, ast.Name)
                ):
                    summary.sealed_names.setdefault(
                        func.value.id, getattr(child, "lineno", 0)
                    )
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "setflags"
                    and isinstance(func.value, ast.Name)
                    and any(
                        keyword.arg == "write"
                        and isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is False
                        for keyword in child.keywords
                    )
                ):
                    summary.sealed_names.setdefault(
                        func.value.id, getattr(child, "lineno", 0)
                    )
            # -- assignments ----------------------------------------------
            elif isinstance(child, ast.Assign):
                value = child.value
                for target in child.targets:
                    if isinstance(target, ast.Name):
                        if target.id in global_decls:
                            effect(child, target.id, write=True)
                        else:
                            summary.value_sources.setdefault(
                                target.id, []
                            ).append(value)
                            if is_cache_lookup(value):
                                summary.cache_bindings.setdefault(
                                    target.id, child
                                )
                            elif isinstance(value, ast.Call):
                                resolved = resolve_call(value)
                                if resolved is not None:
                                    summary.call_bindings.setdefault(
                                        target.id, []
                                    ).append("::".join(resolved))
                    elif isinstance(target, (ast.Tuple, ast.List)):
                        # ``a, b = expr`` — record each name's source so
                        # the dataflow walker can chase dependencies.
                        # Elementwise when the arity visibly matches,
                        # otherwise the whole RHS (conservative).
                        elements = list(target.elts)
                        paired: Optional[List[ast.expr]] = None
                        if (
                            isinstance(value, (ast.Tuple, ast.List))
                            and len(value.elts) == len(elements)
                            and not any(
                                isinstance(element, ast.Starred)
                                for element in elements
                            )
                        ):
                            paired = list(value.elts)
                        for index, element in enumerate(elements):
                            if not isinstance(element, ast.Name):
                                continue
                            if element.id in global_decls:
                                effect(child, element.id, write=True)
                                continue
                            source = paired[index] if paired else value
                            summary.value_sources.setdefault(
                                element.id, []
                            ).append(source)
                    elif isinstance(target, ast.Subscript):
                        owner = target.value
                        if isinstance(owner, ast.Name) and is_module_global(
                            owner.id
                        ):
                            effect(child, owner.id, write=True)
                            if info.globals[owner.id].is_cache:
                                summary.cache_publishes.append(
                                    CachePublish(
                                        cache_name=owner.id,
                                        value=value,
                                        node=child,
                                    )
                                )
                        elif isinstance(owner, ast.Name):
                            summary.mutations.append(
                                Mutation(
                                    name=owner.id,
                                    node=child,
                                    what="[...] = ...",
                                )
                            )
                        elif (
                            isinstance(owner, ast.Attribute)
                            and isinstance(owner.value, ast.Name)
                            and owner.value.id != "self"
                        ):
                            summary.mutations.append(
                                Mutation(
                                    name=owner.value.id,
                                    node=child,
                                    what=f".{owner.attr}[...] = ...",
                                )
                            )
                    elif isinstance(target, ast.Attribute):
                        owner = target.value
                        if isinstance(owner, ast.Name):
                            if owner.id in info.module_aliases:
                                effect(
                                    child,
                                    target.attr,
                                    write=True,
                                    module=info.module_aliases[owner.id],
                                )
                            elif owner.id != "self":
                                summary.mutations.append(
                                    Mutation(
                                        name=owner.id,
                                        node=child,
                                        what=f".{target.attr} = ...",
                                    )
                                )
            elif isinstance(child, ast.AugAssign):
                target = child.target
                if isinstance(target, ast.Name) and target.id in global_decls:
                    effect(child, target.id, write=True)
                elif isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name
                ):
                    if is_module_global(target.value.id):
                        effect(child, target.value.id, write=True)
                    else:
                        summary.mutations.append(
                            Mutation(
                                name=target.value.id,
                                node=child,
                                what="[...] += ...",
                            )
                        )
            elif isinstance(child, ast.Delete):
                for target in child.targets:
                    if isinstance(target, ast.Name) and target.id in global_decls:
                        effect(child, target.id, write=True)
                    elif isinstance(target, ast.Subscript) and isinstance(
                        target.value, ast.Name
                    ):
                        if is_module_global(target.value.id):
                            effect(child, target.value.id, write=True)
                        else:
                            summary.mutations.append(
                                Mutation(
                                    name=target.value.id,
                                    node=child,
                                    what="del [...]",
                                )
                            )
            # -- reads ----------------------------------------------------
            elif isinstance(child, ast.Name) and isinstance(
                child.ctx, ast.Load
            ):
                if child.id in param_set:
                    param_reads.add(child.id)
                if is_module_global(child.id) and info.globals[
                    child.id
                ].shared_mutable:
                    effect(child, child.id, write=False)
            # -- returns --------------------------------------------------
            elif isinstance(child, ast.Return) and child.value is not None:
                value = child.value
                summary.return_values.append(value)
                if isinstance(value, ast.Name):
                    summary.returned_names.add(value.id)
                elif isinstance(value, ast.Call):
                    resolved = resolve_call(value)
                    if resolved is not None:
                        summary.returned_calls.append("::".join(resolved))
                if is_cache_lookup(value):
                    summary.returns_cache_lookup = True
        if summary.returned_names & set(summary.cache_bindings):
            summary.returns_cache_lookup = True
        for child in ast.walk(node):
            if isinstance(child, (ast.For, ast.AsyncFor)):
                for part in ast.walk(child.target):
                    if isinstance(part, ast.Name):
                        loop_targets.add(part.id)
            elif isinstance(
                child, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for generator in child.generators:
                    for part in ast.walk(generator.target):
                        if isinstance(part, ast.Name):
                            loop_targets.add(part.id)
        summary.param_reads = frozenset(param_reads)
        summary.loop_targets = frozenset(loop_targets)
        summary.loop_depth = max_loop_depth(node)
        summary.scalar_only_calls = frozenset(
            set(summary.calls) - nonscalar_targets
        )
        return summary


def analyze_module(context: FileContext) -> ModuleInfo:
    """Scan one parsed file into a :class:`ModuleInfo`."""
    return _ModuleScanner(context).scan()


class ProgramGraph:
    """The linked whole-program view over every scanned module."""

    def __init__(self, modules: Sequence[ModuleInfo]) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        for module in modules:
            self.modules[module.dotted] = module
        self.functions: Dict[str, FunctionSummary] = {}
        for module in modules:
            self.functions.update(module.functions)
        self._return_deps: Optional[Dict[str, FrozenSet[str]]] = None
        #: (dotted module, simple or qual name) -> function key.
        self._by_target: Dict[Tuple[str, str], str] = {}
        for key, summary in self.functions.items():
            self._by_target[(summary.module, summary.qualname)] = key
            # Calling a class runs its __init__.
            if summary.qualname.endswith(".__init__"):
                class_qual = summary.qualname.rsplit(".", 1)[0]
                self._by_target.setdefault(
                    (summary.module, class_qual), key
                )

    @classmethod
    def build(cls, contexts: Sequence[FileContext]) -> "ProgramGraph":
        return cls([analyze_module(context) for context in contexts])

    def resolve(self, target: str) -> Optional[str]:
        """Function key for a ``module::name`` call target, if scanned.

        Falls back to dotted-suffix module matching so synthetic test
        trees (``pkg.sim.stats``) resolve imports written as
        ``sim.stats`` and vice versa.
        """
        module, name = target.split("::", 1)
        key = self._by_target.get((module, name))
        if key is not None:
            return key
        for (candidate_module, candidate_name), candidate in sorted(
            self._by_target.items()
        ):
            if candidate_name != name:
                continue
            if candidate_module.endswith("." + module) or (
                module.endswith("." + candidate_module)
            ):
                return candidate
        return None

    def reachable_from(
        self, roots: Sequence[str], *, follow_scalar_calls: bool = True
    ) -> Dict[str, str]:
        """Function key -> first reaching root, BFS in sorted-root order.

        Deterministic: roots are visited in sorted order and each
        function is attributed to the first root that reaches it.  With
        ``follow_scalar_calls=False`` the walk ignores call edges that
        only occur inside scalar-twin regions of a ``perf.FAST`` split —
        the traversal the hot-path analyzer uses, so scalar references
        never inherit hotness from their fast siblings.
        """
        origin: Dict[str, str] = {}
        queue: List[Tuple[str, str]] = []
        for root in sorted(roots):
            if root in self.functions and root not in origin:
                origin[root] = root
                queue.append((root, root))
        while queue:
            key, root = queue.pop(0)
            summary = self.functions[key]
            for target in summary.calls:
                if (
                    not follow_scalar_calls
                    and target in summary.scalar_only_calls
                ):
                    continue
                callee = self.resolve(target)
                if callee is not None and callee not in origin:
                    origin[callee] = root
                    queue.append((callee, root))
        return origin

    def class_names(self) -> Set[str]:
        """Every class defined in any scanned module."""
        names: Set[str] = set()
        for module in self.modules.values():
            names.update(module.classes)
        return names

    def cache_accessors(self) -> Set[str]:
        """Functions that may return a value held in a module cache.

        Fixpoint: a function is an accessor if it returns a cache
        lookup directly, returns a name bound from one, or returns the
        result of calling another accessor.
        """
        accessors: Set[str] = {
            key
            for key, summary in self.functions.items()
            if summary.returns_cache_lookup
        }
        changed = True
        while changed:
            changed = False
            for key, summary in self.functions.items():
                if key in accessors:
                    continue
                for target in summary.returned_calls:
                    callee = self.resolve(target)
                    if callee in accessors:
                        accessors.add(key)
                        changed = True
                        break
        return accessors

    def frozen_class_names(self) -> Set[str]:
        """Every ``@dataclass(frozen=True)`` class name in the program."""
        names: Set[str] = set()
        for module in self.modules.values():
            names.update(module.frozen_classes)
        return names

    def return_param_dependence(self) -> Dict[str, FrozenSet[str]]:
        """Which of each function's parameters influence its return value.

        Transitive-input fixpoint over the whole graph: a call's result
        depends on exactly the arguments its (resolved) callee's return
        depends on, so ``key = _cache_key(phase, model, space, cost)``
        carries ``{phase, model, space, cost}`` into ``key``'s
        dependence set — and dropping a parameter from ``_cache_key``'s
        returned tuple is visible at every memo site that uses it.
        Results are memoized on the graph instance (one fixpoint per
        scan).
        """
        if self._return_deps is not None:
            return self._return_deps
        deps: Dict[str, FrozenSet[str]] = {
            key: frozenset() for key in self.functions
        }
        # Monotone (dependence sets only grow), so this terminates; the
        # pass cap is a backstop against pathological cycles.
        for _ in range(16):
            changed = False
            for key in sorted(self.functions):
                summary = self.functions[key]
                found: Set[str] = set()
                for value in summary.return_values:
                    for dep in expr_deps(value, summary, self, deps):
                        if dep.kind == "param":
                            found.add(dep.name)
                fresh = frozenset(found)
                if fresh != deps[key]:
                    deps[key] = fresh
                    changed = True
            if not changed:
                break
        self._return_deps = deps
        return deps


def map_call_args(
    call: ast.Call,
    callee: FunctionSummary,
    wanted: FrozenSet[str],
) -> Optional[List[ast.expr]]:
    """Argument expressions feeding the ``wanted`` callee parameters.

    Accounts for the implicit ``self``/``cls`` slot of method calls.
    Returns ``None`` when the mapping cannot be trusted (starred
    arguments, ``**kwargs`` on either side) — callers then fall back to
    "depends on every argument".
    """
    if callee.has_varargs:
        return None
    if any(isinstance(arg, ast.Starred) for arg in call.args):
        return None
    if any(keyword.arg is None for keyword in call.keywords):
        return None
    params = list(callee.params)
    offset = (
        1
        if "." in callee.qualname and params and params[0] in {"self", "cls"}
        else 0
    )
    mapped: List[ast.expr] = []
    for name in sorted(wanted):
        if name not in params:
            continue
        position = params.index(name) - offset
        if 0 <= position < len(call.args):
            mapped.append(call.args[position])
            continue
        for keyword in call.keywords:
            if keyword.arg == name:
                mapped.append(keyword.value)
                break
        # A defaulted parameter contributes no call-site dependence.
    return mapped


def expr_deps(
    expr: ast.expr,
    summary: FunctionSummary,
    graph: ProgramGraph,
    return_deps: Mapping[str, FrozenSet[str]],
    _visited: Optional[Set[str]] = None,
) -> FrozenSet[Dep]:
    """Transitive input dependencies of ``expr`` inside ``summary``.

    Chases local names through :attr:`FunctionSummary.value_sources`,
    maps resolved calls through ``return_deps`` (the
    :meth:`ProgramGraph.return_param_dependence` fixpoint, or any
    partial map during its iteration), and classifies the roots as
    :class:`Dep` entries.  Unresolved calls conservatively depend on
    every argument — the correct direction for key-folding questions.
    """
    module = graph.modules.get(summary.module)
    params = set(summary.params)
    visited = _visited if _visited is not None else set()
    deps: Set[Dep] = set()

    def name_dep(name: str) -> None:
        if name in params:
            deps.add(Dep("param", name))
        elif name in summary.loop_targets:
            deps.add(Dep("loop", name))
        elif module is not None and name in module.globals:
            deps.add(Dep("global", name, module=module.dotted))
        elif name in summary.value_sources:
            if name in visited:
                return
            visited.add(name)
            for source in summary.value_sources[name]:
                walk(source)
        elif module is not None and name in module.from_imports:
            target, original = module.from_imports[name]
            deps.add(Dep("global", original, module=target))
        else:
            deps.add(Dep("unknown", name))

    def attribute_chain(node: ast.Attribute) -> Optional[Tuple[str, Tuple[str, ...]]]:
        chain: List[str] = []
        cursor: ast.expr = node
        while isinstance(cursor, ast.Attribute):
            chain.append(cursor.attr)
            cursor = cursor.value
        if isinstance(cursor, ast.Name):
            chain.reverse()
            return cursor.id, tuple(chain)
        return None

    def walk(node: ast.expr) -> None:
        if isinstance(node, ast.Constant):
            return
        if isinstance(node, ast.Name):
            if isinstance(node.ctx, ast.Load):
                name_dep(node.id)
            return
        if isinstance(node, ast.Attribute):
            rooted = attribute_chain(node)
            if rooted is None:
                walk(node.value)
                return
            root, chain = rooted
            if root in params:
                deps.add(Dep("param", root, chain=chain))
            elif root in summary.loop_targets:
                deps.add(Dep("loop", root, chain=chain))
            elif module is not None and root in module.module_aliases:
                deps.add(
                    Dep(
                        "global",
                        chain[0],
                        module=module.module_aliases[root],
                        chain=chain[1:],
                    )
                )
            elif module is not None and root in module.from_imports:
                target, original = module.from_imports[root]
                dotted = f"{target}.{original}" if target else original
                deps.add(Dep("global", chain[0], module=dotted, chain=chain[1:]))
            elif module is not None and root in module.globals:
                deps.add(Dep("global", root, module=module.dotted, chain=chain))
            elif root in summary.value_sources:
                name_dep(root)
            else:
                deps.add(Dep("unknown", root, chain=chain))
            return
        if isinstance(node, ast.Call):
            target = summary.call_targets.get(node)
            callee_key = graph.resolve(target) if target is not None else None
            if callee_key is not None and callee_key in return_deps:
                callee = graph.functions[callee_key]
                mapped = map_call_args(node, callee, return_deps[callee_key])
                if mapped is not None:
                    for argument in mapped:
                        walk(argument)
                    return
            for argument in node.args:
                walk(argument.value if isinstance(argument, ast.Starred) else argument)
            for keyword in node.keywords:
                walk(keyword.value)
            # The receiver of an unresolved bound-method call is a data
            # input too (``rng.random()`` depends on ``rng``); a bare
            # function name is identity, not data.
            if isinstance(node.func, ast.Attribute):
                walk(node.func.value)
            return
        if isinstance(node, ast.Lambda):
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                walk(child)
            elif isinstance(child, ast.comprehension):
                walk(child.iter)
                for condition in child.ifs:
                    walk(condition)

    walk(expr)
    return frozenset(deps)


def shared_graph(contexts: Sequence[FileContext]) -> ProgramGraph:
    """The scan-wide :class:`ProgramGraph`, built at most once per scan.

    Every whole-program rule (effects, hot-path) wants the same graph
    over the same context list; routing them through the
    :func:`~repro.analysis.core.shared_analysis` memo keeps the lint's
    own cost linear in the number of program rules.
    """
    return shared_analysis(contexts, "callgraph", ProgramGraph.build)
