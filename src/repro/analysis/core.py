"""Core of the ``repro lint`` framework: findings, rules, file scanning.

The framework is deliberately small and stdlib-only.  A :class:`Rule`
inspects one parsed file (a :class:`FileContext`) and yields
:class:`Finding` objects; the runner walks a set of paths, parses each
``.py`` file once, annotates the AST with parent links, and hands the
context to every registered rule.

Two cross-cutting mechanisms live here:

* **Pragmas** — a finding on a line whose source contains
  ``lint: allow(<rule-id>)`` is suppressed at the source.  This is the
  *sentinel allowlist*: intentional violations (e.g. the exact
  ``refs == 0.0`` guards in ``sim/perfmodel.py``) carry an inline,
  reviewable justification instead of an entry in an opaque side file.
* **Scoping** — a rule may declare ``scoped_dirs``; it then only runs on
  files having one of those directory names on their path.  The
  determinism rules use this to patrol ``sim/``, ``runtime/`` and
  ``baselines/`` — the engine code whose outputs must be bit-stable —
  without outlawing wall clocks in benchmark timing code.
"""

from __future__ import annotations

import ast
import re
import weakref
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
    Union,
)

_PRAGMA_PATTERN = re.compile(r"lint:\s*allow\(([a-z0-9_,\s-]+)\)")

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    column: int
    rule: str
    message: str
    snippet: str

    @property
    def sort_key(self) -> "tuple[str, int, int, str]":
        return (self.path, self.line, self.column, self.rule)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.column}: [{self.rule}] {self.message}"


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`id` and :attr:`description`, optionally
    restrict themselves with :attr:`scoped_dirs`, and implement
    :meth:`check`.
    """

    id: str = ""
    description: str = ""
    #: Directory names (path components) this rule is limited to; ``None``
    #: means the rule runs on every scanned file.
    scoped_dirs: Optional[FrozenSet[str]] = None
    #: Program rules see every scanned file at once (set by
    #: :class:`ProgramRule`); the per-file runner skips them.
    whole_program: bool = False

    @property
    def scope_label(self) -> str:
        """Where the rule runs, for ``repro lint --rules`` listings.

        Subclasses may override (the hot-path rules report
        ``hot-set``).
        """
        if self.scoped_dirs:
            return "engine-dirs(" + ",".join(sorted(self.scoped_dirs)) + ")"
        return "repo-wide"

    def applies_to(self, context: "FileContext") -> bool:
        if self.scoped_dirs is None:
            return True
        return bool(self.scoped_dirs.intersection(context.path_parts))

    def check(self, context: "FileContext") -> Iterator[Finding]:
        raise NotImplementedError


class ProgramRule(Rule):
    """A rule that needs the whole scanned file set at once.

    Per-file rules cannot see across modules, but the shared-state
    effect rules must follow calls from a worker entrypoint in
    ``experiments/`` into a global write in ``sim/``.  A
    :class:`ProgramRule` therefore implements :meth:`check_program`
    over every parsed file of the scan; pragma suppression is applied
    afterwards by the runner, exactly as for per-file findings.
    """

    whole_program = True

    def check(self, context: "FileContext") -> Iterator[Finding]:
        # Program rules never run per-file; the runner routes them to
        # check_program with the full context list instead.
        return iter(())

    def check_program(
        self, contexts: Sequence["FileContext"]
    ) -> Iterator[Finding]:
        raise NotImplementedError


class FileContext:
    """One parsed source file, shared by every rule."""

    def __init__(self, display_path: str, source: str) -> None:
        self.display_path = display_path
        self.source = source
        self.lines: List[str] = source.splitlines()
        self.tree: ast.Module = ast.parse(source)
        self.path_parts: FrozenSet[str] = frozenset(
            Path(display_path).parts[:-1]
        )
        annotate_parents(self.tree)
        self._allowed: Dict[int, FrozenSet[str]] = {}
        for number, text in enumerate(self.lines, start=1):
            match = _PRAGMA_PATTERN.search(text)
            if match:
                rules = frozenset(
                    part.strip() for part in match.group(1).split(",")
                )
                self._allowed[number] = rules

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def is_allowed(self, rule_id: str, line: int) -> bool:
        """Whether a ``lint: allow(...)`` pragma covers this finding."""
        rules = self._allowed.get(line)
        return rules is not None and rule_id in rules

    def finding(
        self, rule: Rule, node: ast.AST, message: str
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0) + 1
        return Finding(
            path=self.display_path,
            line=line,
            column=column,
            rule=rule.id,
            message=message,
            snippet=self.line_text(line),
        )


def annotate_parents(tree: ast.AST) -> None:
    """Attach a ``.parent`` attribute to every node in the tree."""
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            child.parent = parent  # type: ignore[attr-defined]


def parent_of(node: ast.AST) -> Optional[ast.AST]:
    parent = getattr(node, "parent", None)
    return parent if isinstance(parent, ast.AST) else None


_T = TypeVar("_T")

#: Per-scan derived-analysis memo.  Whole-program rules all need the
#: same expensive artifacts (the call graph, the hot-set view) over the
#: same ``Sequence[FileContext]``; keying the memo weakly on the first
#: context ties each cached artifact to the lifetime of its scan
#: without keeping dead scans alive.  Entries verify the *full* context
#: tuple by identity, so two scans that merely share a first file never
#: alias.
_SHARED_ANALYSES: "weakref.WeakKeyDictionary[FileContext, Dict[str, Tuple[Tuple[FileContext, ...], object]]]" = (
    weakref.WeakKeyDictionary()
)


def shared_analysis(
    contexts: Sequence["FileContext"],
    kind: str,
    build: Callable[[Sequence["FileContext"]], _T],
) -> _T:
    """Build-once-per-scan memo for whole-program analysis artifacts.

    ``kind`` namespaces independent artifacts ("graph", "hot") over the
    same scan.  The memo is identity-based: the cached value is reused
    only when the incoming context sequence is element-for-element the
    same objects as the one that built it.
    """
    if not contexts:
        return build(contexts)
    anchor = contexts[0]
    incoming = tuple(contexts)
    slots = _SHARED_ANALYSES.setdefault(anchor, {})
    hit = slots.get(kind)
    if hit is not None:
        cached_contexts, value = hit
        if len(cached_contexts) == len(incoming) and all(
            cached is context
            for cached, context in zip(cached_contexts, incoming)
        ):
            return value  # type: ignore[return-value]
    built = build(contexts)
    slots[kind] = (incoming, built)
    return built


def walk_functions(tree: ast.AST) -> Iterator[FunctionNode]:
    """Every function/method definition in the tree, outermost first."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def check_file(
    context: FileContext,
    rules: Iterable[Rule],
    suppressed: Optional[Dict[str, int]] = None,
) -> List[Finding]:
    """Run ``rules`` over one parsed file, honouring scopes and pragmas.

    Program rules are skipped here — they need the full file set; see
    :func:`check_program`.  When ``suppressed`` is given, every finding
    a ``# lint: allow(...)`` pragma swallowed increments its rule's
    entry — the JSON report surfaces those counts so suppressions stay
    visible instead of silently vanishing.
    """
    findings: List[Finding] = []
    for rule in rules:
        if rule.whole_program or not rule.applies_to(context):
            continue
        for finding in rule.check(context):
            if context.is_allowed(finding.rule, finding.line):
                if suppressed is not None:
                    suppressed[finding.rule] = (
                        suppressed.get(finding.rule, 0) + 1
                    )
                continue
            findings.append(finding)
    return findings


def check_program(
    contexts: Sequence[FileContext],
    rules: Iterable[Rule],
    suppressed: Optional[Dict[str, int]] = None,
) -> List[Finding]:
    """Run every :class:`ProgramRule` over the whole scanned file set.

    Pragma suppression and ``scoped_dirs`` filtering are applied per
    finding, against the file the finding landed in — the same
    semantics per-file rules get from :func:`check_file` (including the
    optional ``suppressed`` pragma counters).
    """
    by_path: Dict[str, FileContext] = {
        context.display_path: context for context in contexts
    }
    findings: List[Finding] = []
    for rule in rules:
        if not isinstance(rule, ProgramRule):
            continue
        for finding in rule.check_program(contexts):
            context = by_path.get(finding.path)
            if context is None:
                continue
            if rule.scoped_dirs is not None and not rule.applies_to(context):
                continue
            if context.is_allowed(finding.rule, finding.line):
                if suppressed is not None:
                    suppressed[finding.rule] = (
                        suppressed.get(finding.rule, 0) + 1
                    )
                continue
            findings.append(finding)
    return findings


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Every ``.py`` file under the given files/directories, sorted.

    The walk itself is deterministic (sorted recursion) so the lint's
    own output obeys the discipline it enforces.
    """
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
        elif path.is_dir():
            yield from sorted(path.rglob("*.py"))


def load_contexts(
    paths: Iterable[Path],
    root: Optional[Path] = None,
) -> Tuple[List[FileContext], List[Finding]]:
    """Parse every Python file under ``paths`` into contexts.

    ``root`` anchors the repo-relative display paths (and therefore the
    baseline fingerprints); it defaults to the current directory.  Files
    with syntax errors produce a single ``parse-error`` finding rather
    than aborting the scan, returned alongside the parsed contexts.
    """
    anchor = (root or Path.cwd()).resolve()
    contexts: List[FileContext] = []
    errors: List[Finding] = []
    for file_path in iter_python_files(paths):
        resolved = file_path.resolve()
        try:
            display = resolved.relative_to(anchor).as_posix()
        except ValueError:
            display = resolved.as_posix()
        source = resolved.read_text(encoding="utf-8")
        try:
            contexts.append(FileContext(display, source))
        except SyntaxError as error:
            errors.append(
                Finding(
                    path=display,
                    line=error.lineno or 1,
                    column=(error.offset or 0) + 1,
                    rule="parse-error",
                    message=f"file does not parse: {error.msg}",
                    snippet="",
                )
            )
    return contexts, errors


def scan_paths(
    paths: Iterable[Path],
    rules: Iterable[Rule],
    root: Optional[Path] = None,
    file_filter: Optional[Callable[[FileContext], bool]] = None,
    suppressed: Optional[Dict[str, int]] = None,
) -> List[Finding]:
    """Lint every Python file under ``paths`` with ``rules``.

    ``file_filter`` restricts *per-file* rules to the contexts it
    accepts (``repro lint --changed-only``); program rules always see
    the full file set — interprocedural facts don't respect diff
    boundaries.  ``suppressed`` collects per-rule pragma-suppression
    counts (see :func:`check_file`).
    """
    rule_list = list(rules)
    contexts, findings = load_contexts(paths, root=root)
    for context in contexts:
        if file_filter is not None and not file_filter(context):
            continue
        findings.extend(check_file(context, rule_list, suppressed))
    findings.extend(check_program(contexts, rule_list, suppressed))
    findings.sort(key=lambda finding: finding.sort_key)
    return findings
