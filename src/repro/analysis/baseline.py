"""Findings baseline: CI gates only *new* lint violations.

The baseline is a committed JSON file mapping stable fingerprints to
the findings that existed when it was last updated.  ``repro lint``
fails only on findings absent from the baseline, so adopting a new rule
never requires a big-bang cleanup: the existing debt is recorded,
reviewed and ratcheted down, while every *new* violation is blocked at
review time.

Fingerprints are independent of line numbers — they hash the file path,
the rule id, the stripped source line, and a per-(path, rule, line-text)
occurrence index — so unrelated edits that shift code up or down do not
churn the baseline.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from repro.analysis.core import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "LINT_BASELINE.json"


def _canonical_path(path: str) -> str:
    """POSIX-separated form of a finding path.

    Fingerprints must be identical no matter which platform wrote the
    baseline: a gate recorded on Windows (``src\\repro\\x.py``) has to
    match the same finding scanned on POSIX, and vice versa.
    """
    return path.replace("\\", "/")


def fingerprints(findings: Iterable[Finding]) -> List[Tuple[Finding, str]]:
    """Stable fingerprint per finding (occurrence-indexed for duplicates)."""
    seen: Dict[Tuple[str, str, str], int] = {}
    result: List[Tuple[Finding, str]] = []
    for finding in findings:
        path = _canonical_path(finding.path)
        key = (path, finding.rule, finding.snippet)
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        digest = hashlib.sha256(
            "|".join(
                (path, finding.rule, finding.snippet, str(occurrence))
            ).encode("utf-8")
        ).hexdigest()[:16]
        result.append((finding, digest))
    return result


@dataclass(frozen=True)
class BaselineDiff:
    """Findings split against a baseline."""

    new: List[Finding]
    known: List[Finding]
    stale: List[str]
    """Baseline fingerprints with no matching finding any more —
    fixed debt waiting for ``--update-baseline`` to retire it."""


def load_baseline(path: Path) -> Dict[str, Dict[str, object]]:
    """Fingerprint -> recorded finding from a baseline file.

    A missing file is an empty baseline; a malformed one is an error —
    silently ignoring a corrupt gate would disable it.
    """
    if not path.exists():
        return {}
    payload = json.loads(path.read_text(encoding="utf-8"))
    if (
        not isinstance(payload, dict)
        or payload.get("version") != BASELINE_VERSION
        or not isinstance(payload.get("findings"), list)
    ):
        raise ValueError(f"{path} is not a version-{BASELINE_VERSION} lint baseline")
    entries: Dict[str, Dict[str, object]] = {}
    for entry in payload["findings"]:
        if not isinstance(entry, dict) or "fingerprint" not in entry:
            raise ValueError(f"{path} contains a malformed baseline entry")
        entries[str(entry["fingerprint"])] = entry
    return entries


def diff_against_baseline(
    findings: Iterable[Finding], baseline_path: Path
) -> BaselineDiff:
    baseline = load_baseline(baseline_path)
    new: List[Finding] = []
    known: List[Finding] = []
    matched = set()
    for finding, digest in fingerprints(findings):
        if digest in baseline:
            known.append(finding)
            matched.add(digest)
        else:
            new.append(finding)
    stale = sorted(set(baseline) - matched)
    return BaselineDiff(new=new, known=known, stale=stale)


def render_baseline(findings: Iterable[Finding]) -> str:
    """Serialize findings as baseline JSON (sorted, newline-terminated)."""
    entries: List[Dict[str, str]] = [
        {
            "fingerprint": digest,
            "path": _canonical_path(finding.path),
            "rule": finding.rule,
            "snippet": finding.snippet,
            "message": finding.message,
        }
        for finding, digest in fingerprints(findings)
    ]
    entries.sort(
        key=lambda entry: (entry["path"], entry["rule"], entry["fingerprint"])
    )
    payload: Dict[str, object] = {
        "version": BASELINE_VERSION,
        "findings": entries,
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def write_baseline(findings: Iterable[Finding], path: Path) -> None:
    path.write_text(render_baseline(findings), encoding="utf-8")
