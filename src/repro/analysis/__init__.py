"""Domain-aware static analysis for the CASH reproduction.

``repro.analysis`` is the review-time half of the repo's correctness
story.  The runtime half — fixed-seed fast/scalar equivalence replays,
byte-stable parallel sweeps — catches determinism and parity bugs when
the right test runs; this package catches the same classes of bug
*structurally*, on every ``repro lint`` invocation, before a test ever
needs to fire.

Rule families (see the sibling modules for the hazards each protects
against):

* :mod:`repro.analysis.determinism` — unseeded RNGs, wall-clock and
  environment reads in the engine, set-iteration order leaks,
  ``id()``-keyed containers.
* :mod:`repro.analysis.parity` — every ``repro.perf.FAST`` branch must
  keep both its fast and its scalar reference twin.
* :mod:`repro.analysis.numerics` — exact float equality, mutable
  default arguments, numpy alias shadowing.
* :mod:`repro.analysis.units` — the ``Annotated`` unit vocabulary
  (cycles / instructions / dollars) and the additive-mixing checker.
* :mod:`repro.analysis.effects` — shared-state discipline over the
  :mod:`repro.analysis.callgraph` effect summaries: unsynchronized
  global writes reachable from sweep workers or FAST twins, lock
  discipline in lock-declaring modules, and frozen-only cache
  publishes/lookups.
* :mod:`repro.analysis.hotpath` — interprocedural performance rules
  scoped to the *hot set* (functions reachable from the FAST engine
  entrypoints on the same call graph): quadratic list operations,
  loop-invariant recomputation, element-wise ndarray loops, and
  per-iteration allocation in nested loops; also the
  ``repro lint --hot-report`` cost ranking.
* :mod:`repro.analysis.dataflow` — interprocedural value-flow rules on
  the same call graph, via per-function parameter-read/return-
  dependence summaries and a transitive-input fixpoint: cache keys
  must cover everything the cached computation reads
  (``cache-key-incomplete``), RNG streams must stay per-item and
  per-twin (``rng-stream-shared``), seeds must derive from frozen spec
  fields (``seed-derivation``), and serialized surfaces must not drift
  from their pinned ``SCHEMA_FINGERPRINTS.json`` without a version
  bump (``schema-drift``); also the ``repro lint --dataflow-report``
  evidence tables.

The framework lives in :mod:`repro.analysis.core`; the committed
findings baseline that lets CI gate only *new* violations lives in
:mod:`repro.analysis.baseline`; the ``repro lint`` wiring in
:mod:`repro.analysis.cli`.  The runtime half of the shared-state story
— the opt-in ``REPRO_SANITIZE=1`` sanitizer — is
:mod:`repro.analysis.sanitize`.
"""

from __future__ import annotations

from typing import List

from repro.analysis import (
    dataflow,
    determinism,
    effects,
    hotpath,
    numerics,
    parity,
    units,
)
from repro.analysis.core import (
    FileContext,
    Finding,
    ProgramRule,
    Rule,
    check_file,
    check_program,
    scan_paths,
)

ALL_RULES: List[Rule] = [
    *determinism.RULES,
    *parity.RULES,
    *numerics.RULES,
    *units.RULES,
    *effects.RULES,
    *hotpath.RULES,
    *dataflow.RULES,
]

RULES_BY_ID = {rule.id: rule for rule in ALL_RULES}

__all__ = [
    "ALL_RULES",
    "RULES_BY_ID",
    "FileContext",
    "Finding",
    "ProgramRule",
    "Rule",
    "check_file",
    "check_program",
    "scan_paths",
]
