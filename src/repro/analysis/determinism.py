"""Determinism lint rules.

PR 1's equivalence guarantees — fast/scalar twins asserted
bit-identical, sweeps byte-stable across ``--jobs`` — and the paper's
timestamped counter network both assume the engine is a pure function
of its seeds.  These rules patrol the directories whose outputs feed
those guarantees (``sim/``, ``runtime/``, ``baselines/``, and — since
the provider loop gained its own FAST-gated fast paths — ``cloud/``)
for the ways Python programs classically smuggle in nondeterminism:

* ``unseeded-random`` — calls through the module-level ``random.*`` (or
  legacy ``numpy.random.*``) global generators, whose state is shared,
  order-dependent and unseeded by default.  Constructing an explicit
  seeded generator (``random.Random(seed)``, ``numpy.random.default_rng``)
  is the sanctioned pattern and is not flagged.
* ``wall-clock`` — ``time.time()`` / ``datetime.now()`` and friends:
  any read of a real clock inside the simulated-time engine.
* ``env-read`` — ``os.environ`` / ``os.getenv``: configuration that
  varies by machine, invisible to the seed.
* ``set-iteration`` — iterating a freshly-built ``set``/``frozenset``
  (or set literal/comprehension) where the element order feeds ordered
  output.  Hash randomization makes the order vary per process, which
  is exactly how parallel sweep workers drift from in-process runs.
  ``sorted(set(...))`` and membership tests are fine.
* ``id-keyed`` — using ``id(x)`` as a container key.  CPython reuses
  addresses, so keys collide across object lifetimes and iteration
  order varies per run.

The last two are hazards anywhere, not just in the engine, so they run
repo-wide.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.core import FileContext, Finding, Rule

ENGINE_DIRS: FrozenSet[str] = frozenset({"sim", "runtime", "baselines", "cloud"})

_SEEDED_RANDOM_FACTORIES = frozenset(
    {
        "Random",
        "SystemRandom",
        "default_rng",
        "Generator",
        "SeedSequence",
        "MT19937",
    }
)

_WALL_CLOCK_CALLS: FrozenSet[Tuple[str, str]] = frozenset(
    {
        ("time", "time"),
        ("time", "time_ns"),
        ("time", "monotonic"),
        ("time", "monotonic_ns"),
        ("time", "perf_counter"),
        ("time", "perf_counter_ns"),
        ("datetime", "now"),
        ("datetime", "utcnow"),
        ("datetime", "today"),
        ("date", "today"),
    }
)


def _dotted_tail(node: ast.expr) -> Optional[Tuple[str, str]]:
    """``("base", "attr")`` for a one-level attribute access on a name.

    ``datetime.datetime.now`` resolves to ``("datetime", "now")`` — the
    clock tables only need the final two path components.
    """
    if not isinstance(node, ast.Attribute):
        return None
    value = node.value
    if isinstance(value, ast.Name):
        return value.id, node.attr
    if isinstance(value, ast.Attribute):
        return value.attr, node.attr
    return None


def _from_imports(tree: ast.Module, module: str) -> Set[str]:
    """Local names bound by ``from <module> import ...`` in this file."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                names.add(alias.asname or alias.name)
    return names


class UnseededRandomRule(Rule):
    id = "unseeded-random"
    description = (
        "call through the shared module-level random number generator "
        "inside the deterministic engine"
    )
    scoped_dirs = ENGINE_DIRS

    def check(self, context: FileContext) -> Iterator[Finding]:
        bare_random = {
            name
            for name in _from_imports(context.tree, "random")
            if name not in _SEEDED_RANDOM_FACTORIES
        }
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            dotted = _dotted_tail(func)
            if dotted is not None:
                base, attr = dotted
                if base == "random" and attr not in _SEEDED_RANDOM_FACTORIES:
                    yield context.finding(
                        self,
                        node,
                        f"random.{attr}() uses the shared global RNG; "
                        "construct a seeded random.Random(seed) instead",
                    )
                    continue
            # numpy's legacy global generator: np.random.random() etc.
            if isinstance(func, ast.Attribute):
                inner = _dotted_tail(func.value)
                if (
                    inner is not None
                    and inner[1] == "random"
                    and inner[0] in {"np", "numpy"}
                    and func.attr not in _SEEDED_RANDOM_FACTORIES
                ):
                    yield context.finding(
                        self,
                        node,
                        f"numpy.random.{func.attr}() uses the legacy global "
                        "generator; use numpy.random.default_rng(seed)",
                    )
                    continue
            if isinstance(func, ast.Name) and func.id in bare_random:
                yield context.finding(
                    self,
                    node,
                    f"{func.id}() was imported from the random module and "
                    "draws from the shared global RNG; use a seeded "
                    "random.Random(seed)",
                )


class WallClockRule(Rule):
    id = "wall-clock"
    description = "real-time clock read inside the simulated-time engine"
    scoped_dirs = ENGINE_DIRS

    def check(self, context: FileContext) -> Iterator[Finding]:
        clock_names = {
            pair[1] for pair in _WALL_CLOCK_CALLS
        } & _from_imports(context.tree, "time")
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            dotted = _dotted_tail(func)
            if dotted is not None and dotted in _WALL_CLOCK_CALLS:
                yield context.finding(
                    self,
                    node,
                    f"{dotted[0]}.{dotted[1]}() reads the wall clock; the "
                    "engine must derive time from simulated cycles",
                )
            elif isinstance(func, ast.Name) and func.id in clock_names:
                yield context.finding(
                    self,
                    node,
                    f"{func.id}() reads the wall clock; the engine must "
                    "derive time from simulated cycles",
                )


class EnvReadRule(Rule):
    id = "env-read"
    description = "environment variable read inside the deterministic engine"
    scoped_dirs = ENGINE_DIRS

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            dotted = (
                _dotted_tail(node) if isinstance(node, ast.Attribute) else None
            )
            if dotted == ("os", "environ"):
                yield context.finding(
                    self,
                    node,
                    "os.environ makes engine behaviour depend on the host "
                    "environment; thread configuration in explicitly",
                )
            elif isinstance(node, ast.Call):
                call_target = _dotted_tail(node.func)
                if call_target == ("os", "getenv"):
                    yield context.finding(
                        self,
                        node,
                        "os.getenv() makes engine behaviour depend on the "
                        "host environment; thread configuration in "
                        "explicitly",
                    )


def _is_set_expression(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"set", "frozenset"}
    return False


class SetIterationRule(Rule):
    id = "set-iteration"
    description = "iteration over a set feeding order-sensitive output"

    _ORDERING_CONSUMERS = frozenset({"list", "tuple", "enumerate"})

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            target: Optional[ast.expr] = None
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_expression(node.iter):
                    target = node.iter
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                for generator in node.generators:
                    if _is_set_expression(generator.iter):
                        target = generator.iter
                        break
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Name)
                    and func.id in self._ORDERING_CONSUMERS
                    and node.args
                    and _is_set_expression(node.args[0])
                ):
                    target = node.args[0]
            if target is not None:
                yield context.finding(
                    self,
                    target,
                    "iterating a set produces hash-randomized order; wrap "
                    "in sorted(...) before the order can reach any output",
                )


class IdKeyedRule(Rule):
    id = "id-keyed"
    description = "container keyed by id(); addresses are reused across runs"

    _KEY_METHODS = frozenset(
        {"get", "setdefault", "add", "discard", "remove", "pop"}
    )

    def _is_id_call(self, node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "id"
        )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            flagged: List[ast.expr] = []
            if isinstance(node, ast.Subscript) and self._is_id_call(
                node.slice
            ):
                flagged.append(node.slice)
            elif isinstance(node, ast.Dict):
                flagged.extend(
                    key
                    for key in node.keys
                    if key is not None and self._is_id_call(key)
                )
            elif isinstance(node, ast.Set):
                flagged.extend(
                    element
                    for element in node.elts
                    if self._is_id_call(element)
                )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._KEY_METHODS
                and node.args
                and self._is_id_call(node.args[0])
            ):
                flagged.append(node.args[0])
            elif isinstance(node, ast.Compare) and any(
                isinstance(op, (ast.In, ast.NotIn)) for op in node.ops
            ):
                if self._is_id_call(node.left):
                    flagged.append(node.left)
            for expression in flagged:
                yield context.finding(
                    self,
                    expression,
                    "id() values are memory addresses — reused across "
                    "object lifetimes and different every run; key by a "
                    "stable identity instead",
                )


RULES: List[Rule] = [
    UnseededRandomRule(),
    WallClockRule(),
    EnvReadRule(),
    SetIterationRule(),
    IdKeyedRule(),
]
