"""FAST-parity rule: every fast path must keep its scalar twin.

The entire performance story of PR 1 rests on the ``repro.perf.FAST``
switch selecting between two *numerically identical* implementations:
the vectorized/cached fast paths and the scalar reference paths that
the equivalence tests replay against.  The invariant is structural —
wherever control flow branches on the switch, **both** branches must
exist — and a fast path whose reference twin is deleted (or stubbed to
``pass``) degrades the A/B guarantee silently: the equivalence test
would then compare the fast path against itself.

This rule finds every ``if`` statement whose condition mentions
``perf.FAST`` / ``FAST`` / ``fast_paths_enabled()`` and requires a
resolvable branch for both switch positions:

* an explicit ``else`` (or ``elif``) arm, **or**
* at least one statement following the ``if`` in the same block — the
  ``if not perf.FAST: return scalar(...)`` early-exit idiom, where the
  fall-through code *is* the other branch.

A branch consisting solely of ``pass``/``...`` (or one that only raises
``NotImplementedError``) is not resolvable: it parses, but there is no
twin to compare against.  Conditional *expressions* (``a if perf.FAST
else b``) always carry both arms and are accepted by construction.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Sequence

from repro.analysis.core import FileContext, Finding, Rule, parent_of


def _mentions_fast(condition: ast.expr) -> bool:
    """Whether an ``if`` test references the engine's fast-path switch."""
    for node in ast.walk(condition):
        if isinstance(node, ast.Attribute) and node.attr == "FAST":
            return True
        if isinstance(node, ast.Name) and node.id == "FAST":
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr
                if isinstance(func, ast.Attribute)
                else None
            )
            if name == "fast_paths_enabled":
                return True
    return False


def _is_stub_statement(statement: ast.stmt) -> bool:
    if isinstance(statement, ast.Pass):
        return True
    if isinstance(statement, ast.Expr) and isinstance(
        statement.value, ast.Constant
    ):
        return statement.value.value is Ellipsis
    if isinstance(statement, ast.Raise) and statement.exc is not None:
        exc = statement.exc
        name = None
        if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
            name = exc.func.id
        elif isinstance(exc, ast.Name):
            name = exc.id
        if name == "NotImplementedError":
            return True
    return False


def _is_stub_branch(body: Sequence[ast.stmt]) -> bool:
    """A branch that parses but provides no twin implementation."""
    return bool(body) and all(
        _is_stub_statement(statement) for statement in body
    )


def _enclosing_block(node: ast.If) -> List[ast.stmt]:
    """The statement list that directly contains ``node``."""
    parent = parent_of(node)
    if parent is None:
        return [node]
    for field in ("body", "orelse", "finalbody", "handlers"):
        block = getattr(parent, field, None)
        if isinstance(block, list) and node in block:
            return block
    return [node]


class FastParityRule(Rule):
    id = "fast-parity"
    description = (
        "FAST-gated branch without a resolvable reference (scalar) twin"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.If):
                continue
            if not _mentions_fast(node.test):
                continue
            if _is_stub_branch(node.body):
                yield context.finding(
                    self,
                    node,
                    "the FAST-gated branch is a stub; both the fast and "
                    "the reference path must be implemented",
                )
                continue
            if node.orelse:
                if _is_stub_branch(node.orelse):
                    yield context.finding(
                        self,
                        node,
                        "the other arm of this FAST-gated branch is a "
                        "stub; the scalar reference twin must stay "
                        "implemented",
                    )
                continue
            block = _enclosing_block(node)
            if block[-1] is node:
                yield context.finding(
                    self,
                    node,
                    "FAST-gated branch has no else arm and no fall-through "
                    "code after it — the scalar reference twin is missing "
                    "(deleting a twin breaks the fast/reference A/B "
                    "guarantee)",
                )


RULES: List[Rule] = [FastParityRule()]
