"""Hot-path performance rules: the complexity tier of ``repro lint``.

PRs 3-6 bought the engine its headline wins (provider loop ~20x, cycle
tier ~13x, disk-warm restarts ~4.7x), but nothing guarded those wins
statically: the O(n^2) ``list.pop(0)`` arrival drain fixed in PR 3 and
the per-cycle ``sorted(...)`` window scan removed in PR 4 are exactly
the regressions a future PR could silently reintroduce.  This module
closes that gap with an interprocedural *hotness* analysis on top of
the PR 5 call graph, plus four rules that only fire inside the hot set.

**The hot set.**  A function is *hot* when it is reachable on the call
graph from a FAST engine entrypoint (:data:`HOT_ENTRYPOINTS` — the
sweep workers, the event-driven cycle tier, the provider loop, the
always-on service loop and its traffic generator, the trace generator,
the operating-point build/publish paths) or from any
function containing a ``perf.FAST`` split.  Two exemptions keep the
scalar references out by construction:

* reachability does not follow call edges that occur only inside the
  scalar-twin region of a ``perf.FAST`` split (the call graph records
  these as :attr:`FunctionSummary.scalar_only_calls`);
* functions following the ``*_reference`` naming protocol — the
  engine's scalar twins — are never hot and are not traversed, even
  when a fast path falls back to them on irregular inputs.

The scalar *branch* of a FAST split inside an otherwise-hot function is
likewise skipped finding-by-finding: the reference twin is supposed to
be the slow, recompute-everything baseline.

**The rules** (all scoped to the hot set, all pragma-able with
``# lint: allow(<rule>)``):

``quadratic-listop``
    ``list.pop(0)`` / ``list.insert(0, ...)`` / ``in``-membership
    against a list / list ``+=``-concatenation inside a loop — each
    O(n) per iteration, O(n^2) for the loop.  The PR 3 arrival-drain
    regression in one rule.
``loop-invariant``
    ``sorted()`` or ``re.compile()`` anywhere inside a hot loop (the
    PR 4 per-cycle window-scan regression), ``min``/``max`` over a
    provably loop-constant iterable, and constant attribute chains
    re-traversed every iteration.
``numpy-scalar-loop``
    Element-wise Python iteration over an ndarray in a hot function —
    the static complement of the ROADMAP's struct-of-arrays batch-tier
    item: hot array code should be vectorized, not looped.
``hot-alloc``
    Object construction (any scanned class, dataclasses included) or
    list/set/dict-comprehension allocation in the innermost loop of a
    doubly-nested hot region, where per-iteration allocation dominates.

:func:`hot_report` ranks the hot set by ``loop depth x live findings``
for the ``repro lint --hot-report`` cost report.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.callgraph import (
    LOOP_NODES,
    FunctionSummary,
    ProgramGraph,
    _terminal_name,
    scalar_region_nodes,
    shared_graph,
)
from repro.analysis.core import (
    FileContext,
    Finding,
    ProgramRule,
    parent_of,
    shared_analysis,
)

#: (dotted-module suffix, qualname) pairs naming the FAST engine
#: entrypoints.  A scanned function is an entrypoint when its qualname
#: matches and its module equals — or dotted-suffix-matches — the
#: entry, so synthetic test trees (``pkg.cloud.provider``) classify the
#: same way as the real ``repro.cloud.provider``.
HOT_ENTRYPOINTS: Tuple[Tuple[str, str], ...] = (
    ("experiments.stats", "run_cell"),
    ("experiments.stats", "run_cells"),
    ("sim.pipeline", "MultiSlicePipeline._run_event_driven"),
    ("sim.batchpipe", "run_batch"),
    ("cloud.provider", "CloudProvider.run"),
    ("cloud.service", "ServiceEngine.run"),
    ("cloud.service", "ServiceEngine._run_event_driven"),
    ("cloud.traffic", "generate_traffic"),
    ("sim.trace", "TraceGenerator.generate"),
    ("sim.trace", "TraceGenerator.generate_arrays"),
    ("sim.optables", "operating_point_table"),
    ("sim.optables", "ensure_surface"),
    ("sim.optstore", "publish"),
    ("sim.optstore", "attach"),
    ("sim.optstore", "build_guard"),
)

#: Call-expression names that produce a plain list.
_LIST_FACTORIES: FrozenSet[str] = frozenset({"list", "sorted"})

#: ``np.<factory>(...)`` / ``numpy.<factory>(...)`` attributes (and
#: ``from numpy import <factory>`` names) whose result is an ndarray.
_NDARRAY_FACTORIES: FrozenSet[str] = frozenset(
    {
        "arange",
        "array",
        "asarray",
        "asanyarray",
        "concatenate",
        "empty",
        "frombuffer",
        "full",
        "linspace",
        "ones",
        "stack",
        "zeros",
    }
)

_NUMPY_MODULES: FrozenSet[str] = frozenset({"np", "numpy"})


def is_entrypoint(summary: FunctionSummary) -> bool:
    """Whether a function matches one of :data:`HOT_ENTRYPOINTS`."""
    for module, qualname in HOT_ENTRYPOINTS:
        if summary.qualname != qualname:
            continue
        if summary.module == module or summary.module.endswith("." + module):
            return True
    return False


def is_scalar_reference(summary: FunctionSummary) -> bool:
    """The ``*_reference`` naming protocol for scalar twins.

    Fast paths may *call* their reference twin on irregular inputs (the
    event-driven pipeline falls back for non-rectangular traces), so
    branch-position alone cannot exempt the twins; the suffix does.
    """
    return summary.name.endswith("_reference")


@dataclass
class HotView:
    """The scan-wide hotness analysis every hot-path rule shares."""

    graph: ProgramGraph
    hot: Dict[str, str]
    """Hot function key -> key of the entrypoint/root that reached it."""
    scalar_nodes: Dict[str, Set[ast.AST]]
    """Hot function key -> AST nodes inside its scalar-twin regions."""


def _build_hot_view(contexts: Sequence[FileContext]) -> HotView:
    graph = shared_graph(contexts)
    roots = [
        key
        for key, summary in graph.functions.items()
        if (is_entrypoint(summary) or summary.has_fast_branch)
        and not is_scalar_reference(summary)
    ]
    # BFS in sorted-root order (deterministic, like
    # ProgramGraph.reachable_from) that additionally refuses to enter
    # *_reference functions and to follow scalar-only call edges.
    hot: Dict[str, str] = {}
    queue: List[Tuple[str, str]] = []
    for root in sorted(roots):
        if root not in hot:
            hot[root] = root
            queue.append((root, root))
    while queue:
        key, root = queue.pop(0)
        summary = graph.functions[key]
        for target in summary.calls:
            if target in summary.scalar_only_calls:
                continue
            callee = graph.resolve(target)
            if callee is None or callee in hot:
                continue
            if is_scalar_reference(graph.functions[callee]):
                continue
            hot[callee] = root
            queue.append((callee, root))
    scalar_nodes = {
        key: scalar_region_nodes(graph.functions[key].node) for key in hot
    }
    return HotView(graph=graph, hot=hot, scalar_nodes=scalar_nodes)


def hot_view(contexts: Sequence[FileContext]) -> HotView:
    """The (memoized) :class:`HotView` for one scan's context list."""
    return shared_analysis(contexts, "hot", _build_hot_view)


def _site_loop_stack(
    node: ast.AST, frame: ast.AST
) -> Tuple[ast.AST, ...]:
    """Loops lexically enclosing ``node`` within ``frame``, outer first.

    Counting is lexical: the stack crosses nested ``def`` boundaries,
    so a closure body defined inside a hot loop reports that loop.
    """
    loops: List[ast.AST] = []
    current = parent_of(node)
    while current is not None and current is not frame:
        if isinstance(current, LOOP_NODES):
            loops.append(current)
        current = parent_of(current)
    loops.reverse()
    return tuple(loops)


def _names_assigned_in(loop: ast.AST) -> FrozenSet[str]:
    """Names (re)bound or mutated in place anywhere inside ``loop``."""
    names: Set[str] = set()
    for child in ast.walk(loop):
        if isinstance(child, ast.Name) and isinstance(
            child.ctx, (ast.Store, ast.Del)
        ):
            names.add(child.id)
        elif isinstance(child, ast.Call) and isinstance(
            child.func, ast.Attribute
        ):
            # Conservatively treat any method call as potentially
            # mutating its receiver: x.append(...), arr.sort(), ...
            receiver = child.func.value
            if isinstance(receiver, ast.Name):
                names.add(receiver.id)
        elif isinstance(child, (ast.Subscript, ast.Attribute)) and isinstance(
            getattr(child, "ctx", None), (ast.Store, ast.Del)
        ):
            root: ast.expr = child
            while isinstance(root, (ast.Subscript, ast.Attribute)):
                root = root.value
            if isinstance(root, ast.Name):
                names.add(root.id)
    return frozenset(names)


def _loop_invariant(expr: ast.expr, assigned: FrozenSet[str]) -> bool:
    """Whether ``expr`` provably evaluates the same on every iteration.

    Conservative: any call (impure for all we know) or any name bound
    inside the loop makes the expression non-invariant; lambdas are
    opaque and also disqualify.
    """
    for child in ast.walk(expr):
        if isinstance(child, (ast.Call, ast.Lambda, ast.Await)):
            return False
        if (
            isinstance(child, ast.Name)
            and isinstance(child.ctx, ast.Load)
            and child.id in assigned
        ):
            return False
    return True


def _list_bound(name: str, summary: FunctionSummary) -> bool:
    """Whether every recorded binding of ``name`` produces a list."""
    sources = summary.value_sources.get(name)
    if not sources:
        return False
    return all(_is_list_expr(source) for source in sources)


def _is_list_expr(expr: ast.expr) -> bool:
    if isinstance(expr, (ast.List, ast.ListComp)):
        return True
    if isinstance(expr, ast.Call):
        return _terminal_name(expr.func) in _LIST_FACTORIES
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Add):
        return _is_list_expr(expr.left) or _is_list_expr(expr.right)
    return False


def _attribute_chain(
    node: ast.Attribute,
) -> Optional[Tuple[str, Tuple[str, ...]]]:
    """(root name, attr path) for a pure ``a.b.c`` load chain."""
    attrs: List[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        if not isinstance(current.ctx, ast.Load):
            return None
        attrs.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name) or not isinstance(
        current.ctx, ast.Load
    ):
        return None
    attrs.reverse()
    return (current.id, tuple(attrs))


class HotPathRule(ProgramRule):
    """Base for rules that only fire inside the hot set.

    ``check_program`` walks every hot function in deterministic key
    order and delegates to :meth:`check_hot_function`; the per-function
    entry point is public so :func:`hot_report` can count one
    function's live findings without re-running the whole program scan.
    """

    @property
    def scope_label(self) -> str:
        return "hot-set"

    def check_program(
        self, contexts: Sequence[FileContext]
    ) -> Iterator[Finding]:
        view = hot_view(contexts)
        by_path = {context.display_path: context for context in contexts}
        for key in sorted(view.hot):
            summary = view.graph.functions[key]
            context = by_path.get(summary.path)
            if context is None:
                continue
            yield from self.check_hot_function(context, summary, view)

    def check_hot_function(
        self,
        context: FileContext,
        summary: FunctionSummary,
        view: HotView,
    ) -> Iterator[Finding]:
        raise NotImplementedError

    def _sites(
        self, summary: FunctionSummary, view: HotView
    ) -> Iterator[Tuple[ast.AST, Tuple[ast.AST, ...]]]:
        """(node, enclosing loop stack) for every non-scalar-twin node
        of the hot function that sits inside at least one loop."""
        scalar = view.scalar_nodes.get(summary.key, set())
        for node in ast.walk(summary.node):
            if node is summary.node or node in scalar:
                continue
            stack = _site_loop_stack(node, summary.node)
            if stack:
                yield node, stack


class QuadraticListOpRule(HotPathRule):
    """O(n)-per-iteration list operation inside a hot loop."""

    id = "quadratic-listop"
    description = (
        "list.pop(0)/insert(0, ...)/membership/concatenation inside a "
        "hot loop: O(n) per iteration, quadratic for the loop"
    )

    def check_hot_function(
        self,
        context: FileContext,
        summary: FunctionSummary,
        view: HotView,
    ) -> Iterator[Finding]:
        for node, _stack in self._sites(summary, view):
            if isinstance(node, ast.Call):
                yield from self._check_call(context, summary, node)
            elif isinstance(node, ast.Compare):
                yield from self._check_membership(context, summary, node)
            elif isinstance(node, ast.AugAssign):
                yield from self._check_augmented(context, summary, node)
            elif isinstance(node, ast.Assign):
                yield from self._check_rebind_concat(context, summary, node)

    def _check_call(
        self, context: FileContext, summary: FunctionSummary, node: ast.Call
    ) -> Iterator[Finding]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        first = node.args[0] if node.args else None
        front = isinstance(first, ast.Constant) and first.value == 0
        if func.attr == "pop" and front:
            yield context.finding(
                self,
                node,
                (
                    f"'.pop(0)' in a loop of hot function "
                    f"'{summary.qualname}' shifts the whole list every "
                    f"iteration; drain with collections.deque.popleft() "
                    f"or an index cursor"
                ),
            )
        elif func.attr == "insert" and front:
            yield context.finding(
                self,
                node,
                (
                    f"'.insert(0, ...)' in a loop of hot function "
                    f"'{summary.qualname}' shifts the whole list every "
                    f"iteration; use collections.deque.appendleft() or "
                    f"append + single reverse"
                ),
            )

    def _check_membership(
        self,
        context: FileContext,
        summary: FunctionSummary,
        node: ast.Compare,
    ) -> Iterator[Finding]:
        operands = [node.left, *node.comparators]
        for index, operator in enumerate(node.ops):
            if not isinstance(operator, (ast.In, ast.NotIn)):
                continue
            container = operands[index + 1]
            if isinstance(container, ast.Name) and _list_bound(
                container.id, summary
            ):
                yield context.finding(
                    self,
                    node,
                    (
                        f"membership test against list "
                        f"'{container.id}' in a loop of hot function "
                        f"'{summary.qualname}' scans the list every "
                        f"iteration; keep a set alongside"
                    ),
                )

    def _check_augmented(
        self,
        context: FileContext,
        summary: FunctionSummary,
        node: ast.AugAssign,
    ) -> Iterator[Finding]:
        if not isinstance(node.op, ast.Add):
            return
        if not isinstance(node.target, ast.Name):
            return
        if _list_bound(node.target.id, summary) or isinstance(
            node.value, (ast.List, ast.ListComp)
        ):
            yield context.finding(
                self,
                node,
                (
                    f"list concatenation '+=' onto '{node.target.id}' "
                    f"in a loop of hot function '{summary.qualname}'; "
                    f"use .append()/.extend() on a preallocated list"
                ),
            )

    def _check_rebind_concat(
        self,
        context: FileContext,
        summary: FunctionSummary,
        node: ast.Assign,
    ) -> Iterator[Finding]:
        if len(node.targets) != 1:
            return
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            return
        value = node.value
        if not isinstance(value, ast.BinOp) or not isinstance(
            value.op, ast.Add
        ):
            return
        touches_target = any(
            isinstance(side, ast.Name) and side.id == target.id
            for side in (value.left, value.right)
        )
        if not touches_target:
            return
        other = (
            value.right
            if isinstance(value.left, ast.Name)
            and value.left.id == target.id
            else value.left
        )
        if _list_bound(target.id, summary) or isinstance(
            other, (ast.List, ast.ListComp)
        ):
            yield context.finding(
                self,
                node,
                (
                    f"rebinding concat '{target.id} = {target.id} + ...' "
                    f"in a loop of hot function '{summary.qualname}' "
                    f"copies the whole list every iteration; use "
                    f".append()/.extend()"
                ),
            )


class LoopInvariantRule(HotPathRule):
    """Work redone every iteration that a hoist would do once."""

    id = "loop-invariant"
    description = (
        "sorted()/re.compile() inside a hot loop, min/max over a "
        "loop-constant iterable, or a constant attribute chain "
        "re-traversed every iteration"
    )

    def check_hot_function(
        self,
        context: FileContext,
        summary: FunctionSummary,
        view: HotView,
    ) -> Iterator[Finding]:
        assigned_memo: Dict[ast.AST, FrozenSet[str]] = {}

        def assigned_in(loop: ast.AST) -> FrozenSet[str]:
            cached = assigned_memo.get(loop)
            if cached is None:
                cached = _names_assigned_in(loop)
                assigned_memo[loop] = cached
            return cached

        chain_sites: Dict[
            Tuple[ast.AST, str, Tuple[str, ...]], List[ast.Attribute]
        ] = {}
        for node, stack in self._sites(summary, view):
            innermost = stack[-1]
            if isinstance(node, ast.Call):
                yield from self._check_invariant_call(
                    context, summary, node, assigned_in(innermost)
                )
            elif isinstance(node, ast.Attribute):
                self._collect_chain(
                    node, innermost, assigned_in(innermost), chain_sites
                )
        for site in sorted(
            chain_sites,
            key=lambda item: (
                getattr(chain_sites[item][0], "lineno", 0),
                getattr(chain_sites[item][0], "col_offset", 0),
            ),
        ):
            occurrences = chain_sites[site]
            if len(occurrences) < 2:
                continue
            _loop, root, attrs = site
            dotted = ".".join((root, *attrs))
            yield context.finding(
                self,
                occurrences[0],
                (
                    f"constant attribute chain '{dotted}' traversed "
                    f"{len(occurrences)} times in one loop of hot "
                    f"function '{summary.qualname}'; bind it to a local "
                    f"before the loop"
                ),
            )

    def _check_invariant_call(
        self,
        context: FileContext,
        summary: FunctionSummary,
        node: ast.Call,
        assigned: FrozenSet[str],
    ) -> Iterator[Finding]:
        func = node.func
        name = _terminal_name(func)
        if isinstance(func, ast.Name) and name == "sorted":
            yield context.finding(
                self,
                node,
                (
                    f"'sorted(...)' inside a loop of hot function "
                    f"'{summary.qualname}' re-sorts every iteration; "
                    f"sort once outside the loop or maintain a heap"
                ),
            )
            return
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "compile"
            and isinstance(func.value, ast.Name)
            and func.value.id == "re"
        ):
            yield context.finding(
                self,
                node,
                (
                    f"'re.compile(...)' inside a loop of hot function "
                    f"'{summary.qualname}'; compile once at module "
                    f"scope"
                ),
            )
            return
        if (
            isinstance(func, ast.Name)
            and name in {"min", "max"}
            and len(node.args) == 1
            and _loop_invariant(node.args[0], assigned)
            and all(
                _loop_invariant(keyword.value, assigned)
                for keyword in node.keywords
            )
        ):
            yield context.finding(
                self,
                node,
                (
                    f"'{name}(...)' over a loop-constant iterable inside "
                    f"a loop of hot function '{summary.qualname}'; hoist "
                    f"it above the loop"
                ),
            )

    def _collect_chain(
        self,
        node: ast.Attribute,
        innermost: ast.AST,
        assigned: FrozenSet[str],
        chain_sites: Dict[
            Tuple[ast.AST, str, Tuple[str, ...]], List[ast.Attribute]
        ],
    ) -> None:
        parent = parent_of(node)
        # Only maximal, value-position chains: skip `a.b` inside
        # `a.b.c`, and skip `a.b.c(...)` where the chain is the callee
        # (a bound-method lookup, not a data traversal).
        if isinstance(parent, ast.Attribute):
            return
        if isinstance(parent, ast.Call) and parent.func is node:
            return
        chain = _attribute_chain(node)
        if chain is None:
            return
        root, attrs = chain
        if len(attrs) < 2:
            return
        if root in assigned:
            return
        chain_sites.setdefault((innermost, root, attrs), []).append(node)


class NumpyScalarLoopRule(HotPathRule):
    """Element-wise Python iteration over an ndarray in hot code."""

    id = "numpy-scalar-loop"
    description = (
        "element-wise Python for-loop over an ndarray in a hot "
        "function; vectorize with array operations instead"
    )

    def check_hot_function(
        self,
        context: FileContext,
        summary: FunctionSummary,
        view: HotView,
    ) -> Iterator[Finding]:
        arrays = self._ndarray_names(summary, view)
        if not arrays:
            return
        scalar = view.scalar_nodes.get(summary.key, set())
        for node in ast.walk(summary.node):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            if node in scalar:
                continue
            name = self._iterated_array(node.iter, arrays)
            if name is None:
                continue
            yield context.finding(
                self,
                node,
                (
                    f"element-wise Python loop over ndarray '{name}' in "
                    f"hot function '{summary.qualname}'; replace with a "
                    f"vectorized array operation"
                ),
            )

    def _ndarray_names(
        self, summary: FunctionSummary, view: HotView
    ) -> FrozenSet[str]:
        """Local names whose every recorded binding is an ndarray."""
        module = view.graph.modules.get(summary.module)
        numpy_imports: Set[str] = set()
        if module is not None:
            for local, (dotted, original) in module.from_imports.items():
                if dotted in _NUMPY_MODULES and original in _NDARRAY_FACTORIES:
                    numpy_imports.add(local)

        def is_array_expr(expr: ast.expr) -> bool:
            if not isinstance(expr, ast.Call):
                return False
            func = expr.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _NDARRAY_FACTORIES
                and isinstance(func.value, ast.Name)
                and func.value.id in _NUMPY_MODULES
            ):
                return True
            return isinstance(func, ast.Name) and func.id in numpy_imports

        names: Set[str] = set()
        for name, sources in summary.value_sources.items():
            if sources and all(is_array_expr(source) for source in sources):
                names.add(name)
        return frozenset(names)

    def _iterated_array(
        self, iterator: ast.expr, arrays: FrozenSet[str]
    ) -> Optional[str]:
        if isinstance(iterator, ast.Name) and iterator.id in arrays:
            return iterator.id
        if not isinstance(iterator, ast.Call):
            return None
        callee = _terminal_name(iterator.func)
        if callee == "enumerate" and iterator.args:
            inner = iterator.args[0]
            if isinstance(inner, ast.Name) and inner.id in arrays:
                return inner.id
        if callee == "range" and len(iterator.args) == 1:
            inner = iterator.args[0]
            if (
                isinstance(inner, ast.Call)
                and _terminal_name(inner.func) == "len"
                and inner.args
                and isinstance(inner.args[0], ast.Name)
                and inner.args[0].id in arrays
            ):
                return inner.args[0].id
        return None


class HotAllocRule(HotPathRule):
    """Per-iteration allocation in the innermost of nested hot loops."""

    id = "hot-alloc"
    description = (
        "object construction or comprehension allocation inside "
        "doubly-nested loops of a hot function; hoist, reuse, or "
        "preallocate"
    )

    def check_hot_function(
        self,
        context: FileContext,
        summary: FunctionSummary,
        view: HotView,
    ) -> Iterator[Finding]:
        class_names = view.graph.class_names()
        for node, stack in self._sites(summary, view):
            if len(stack) < 2:
                continue
            if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp)):
                kind = type(node).__name__
                yield context.finding(
                    self,
                    node,
                    (
                        f"{kind} allocated inside doubly-nested loops of "
                        f"hot function '{summary.qualname}' (depth "
                        f"{len(stack)}); build once outside the inner "
                        f"loop or use a generator"
                    ),
                )
            elif isinstance(node, ast.Call):
                name = _terminal_name(node.func)
                if name is None or name not in class_names:
                    continue
                yield context.finding(
                    self,
                    node,
                    (
                        f"'{name}(...)' constructed inside doubly-nested "
                        f"loops of hot function '{summary.qualname}' "
                        f"(depth {len(stack)}); hoist the construction "
                        f"or reuse one instance"
                    ),
                )


#: The hot-path rules in reporting order.
HOT_RULES: Tuple[HotPathRule, ...] = (
    QuadraticListOpRule(),
    LoopInvariantRule(),
    NumpyScalarLoopRule(),
    HotAllocRule(),
)

RULES: Tuple[HotPathRule, ...] = HOT_RULES


@dataclass(frozen=True)
class HotReportEntry:
    """One hot function's row in the ``--hot-report`` ranking."""

    qualname: str
    module: str
    path: str
    line: int
    root: str
    depth: int
    findings: int

    @property
    def score(self) -> int:
        return self.depth * self.findings


def hot_report(contexts: Sequence[FileContext]) -> List[HotReportEntry]:
    """Rank hot functions by (loop-nesting depth x live findings).

    *Live* findings are post-pragma: a site carrying
    ``# lint: allow(...)`` is acknowledged debt and does not count
    against the function.  Sort order is score desc, then depth desc,
    then (module, qualname) for stability.
    """
    view = hot_view(contexts)
    by_path = {context.display_path: context for context in contexts}
    entries: List[HotReportEntry] = []
    for key in sorted(view.hot):
        summary = view.graph.functions[key]
        context = by_path.get(summary.path)
        if context is None:
            continue
        live = 0
        for rule in HOT_RULES:
            for finding in rule.check_hot_function(context, summary, view):
                if not context.is_allowed(finding.rule, finding.line):
                    live += 1
        root_summary = view.graph.functions[view.hot[key]]
        entries.append(
            HotReportEntry(
                qualname=summary.qualname,
                module=summary.module,
                path=summary.path,
                line=getattr(summary.node, "lineno", 1),
                root=f"{root_summary.module}.{root_summary.qualname}",
                depth=summary.loop_depth,
                findings=live,
            )
        )
    entries.sort(
        key=lambda entry: (
            -entry.score,
            -entry.depth,
            entry.module,
            entry.qualname,
        )
    )
    return entries
