"""Opt-in runtime sanitizer for the engine's shared state.

The static rules in :mod:`repro.analysis.effects` prove what the AST
can prove; this module checks the rest at runtime, under real
concurrency, with real values.  It is **off by default** and enabled by
``REPRO_SANITIZE=1`` in the environment (read once at import, like a
sanitizer build flag) or programmatically via :func:`set_enabled` /
:func:`sanitized` — the engine's hot paths guard every hook with a
single ``if sanitize.ENABLED`` so the disabled cost is one global load.

Three families of checks plug into the engine:

* **freeze-on-publish** — :func:`freeze` deep-converts a value about to
  enter a process-global cache into its immutable form (dict →
  ``MappingProxyType``, list → tuple, set → frozenset, ndarray →
  ``writeable=False``) and :func:`verify_frozen` re-checks a published
  value without rebuilding it;
* **shadow recounts** — :func:`should_sample` drives sampled
  re-validation of incremental structures (the fabric free-index)
  against a full recomputation;
* **checkpoint verification** — the RNG word-stream decoder calls
  :func:`violation` when a resync or checkpoint replay disagrees with
  the reference stream;
* **shared-memory attach verification** — the tiered operating-point
  store (:mod:`repro.sim.optstore`) re-checksums every speedup surface
  it maps from a shared-memory segment or loads from the disk tier and
  calls :func:`violation` (rule ``shm-attach``) on any mismatch with
  the digest recorded at publish time, mirroring the freeze-on-publish
  check the L1 cache gets.

Violations raise :class:`SanitizerViolation`, naming the rule, the
owner site (who published/owns the state) and the mutation/check site.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import fields, is_dataclass
from types import MappingProxyType
from typing import Any, Iterator, Mapping, Tuple

import numpy as np

#: Sampling period for shadow recounts: every Nth consult of an
#: incrementally-maintained structure is checked against a full scan.
SHADOW_SAMPLE_PERIOD = 32

#: Whether the sanitizer is active.  Read from ``REPRO_SANITIZE`` once
#: at import so forked pool workers inherit the setting; tests flip it
#: with :func:`set_enabled` / :func:`sanitized`.
ENABLED: bool = os.environ.get("REPRO_SANITIZE", "") == "1"


class SanitizerViolation(AssertionError):
    """A shared-state invariant broke at runtime.

    Subclasses ``AssertionError`` so a sanitized test run fails loudly
    even under harnesses that only catch assertion failures.
    """

    def __init__(self, rule: str, owner: str, site: str, detail: str) -> None:
        self.rule = rule
        self.owner = owner
        self.site = site
        self.detail = detail
        super().__init__(
            f"[sanitize:{rule}] owner={owner} site={site}: {detail}"
        )

    def __reduce__(
        self,
    ) -> Tuple[type, Tuple[str, str, str, str]]:
        # ``args`` holds the formatted message, not the constructor
        # arguments, so the default reduce cannot rebuild the exception
        # — and a violation raised inside a pool worker must survive
        # the pickled trip back to the parent instead of breaking the
        # pool.
        return type(self), (self.rule, self.owner, self.site, self.detail)


def enabled() -> bool:
    """Whether sanitizer hooks are currently active."""
    return ENABLED


def set_enabled(value: bool) -> None:
    """Turn the sanitizer on or off for this process."""
    global ENABLED
    ENABLED = bool(value)


@contextmanager
def sanitized(value: bool = True) -> Iterator[None]:
    """Context manager flipping the sanitizer for a scoped block."""
    previous = ENABLED
    set_enabled(value)
    try:
        yield
    finally:
        set_enabled(previous)


def _is_frozen_dataclass(value: object) -> bool:
    if not is_dataclass(value) or isinstance(value, type):
        return False
    params = getattr(type(value), "__dataclass_params__", None)
    return bool(params is not None and params.frozen)


_SCALARS: Tuple[type, ...] = (
    bool,
    int,
    float,
    complex,
    str,
    bytes,
    frozenset,
    type(None),
)


def freeze(value: Any, rule: str, owner: str) -> Any:
    """Deep-convert ``value`` into its immutable publishable form.

    Mappings become ``MappingProxyType`` views (over a fresh dict whose
    values are frozen recursively), lists/tuples become tuples of
    frozen elements, sets become frozensets, ndarrays are marked
    ``writeable=False`` in place.  Scalars, frozen dataclasses and
    already-proxied mappings pass through.  Anything else is a
    publish-of-unfreezable violation.
    """
    if isinstance(value, np.ndarray):
        value.setflags(write=False)
        return value
    if isinstance(value, MappingProxyType):
        return value
    if isinstance(value, Mapping):
        return MappingProxyType(
            {key: freeze(item, rule, owner) for key, item in value.items()}
        )
    if isinstance(value, (list, tuple)):
        return tuple(freeze(item, rule, owner) for item in value)
    if isinstance(value, (set, frozenset)):
        return frozenset(value)
    if isinstance(value, _SCALARS) or _is_frozen_dataclass(value):
        return value
    if hasattr(value, "seal") and callable(value.seal):
        value.seal()
        return value
    raise SanitizerViolation(
        rule,
        owner,
        "freeze",
        f"cannot freeze value of type {type(value).__name__}",
    )


def verify_frozen(value: Any, rule: str, owner: str, site: str) -> None:
    """Check a published value is immutable, without rebuilding it.

    Raises :class:`SanitizerViolation` on the first mutable component:
    a bare dict/list/set/bytearray, or an ndarray left writeable.
    """
    if isinstance(value, np.ndarray):
        if value.flags.writeable:
            raise SanitizerViolation(
                rule, owner, site, "published ndarray is still writeable"
            )
        return
    if isinstance(value, MappingProxyType):
        for item in value.values():
            verify_frozen(item, rule, owner, site)
        return
    if isinstance(value, (dict, list, set, bytearray)):
        raise SanitizerViolation(
            rule,
            owner,
            site,
            f"published value holds a mutable {type(value).__name__}",
        )
    if isinstance(value, tuple):
        for item in value:
            verify_frozen(item, rule, owner, site)
        return
    if _is_frozen_dataclass(value):
        for field in fields(value):
            verify_frozen(getattr(value, field.name), rule, owner, site)
        return
    # Scalars and sealed engine objects (which verify themselves via
    # their own ``seal``/``check_sealed`` protocol) pass.


def should_sample(tick: int) -> bool:
    """Whether this consult of an incremental structure gets a shadow
    recount (every :data:`SHADOW_SAMPLE_PERIOD`-th call, and the very
    first one so single-shot paths are still covered)."""
    return tick % SHADOW_SAMPLE_PERIOD == 1


def violation(rule: str, owner: str, site: str, detail: str) -> None:
    """Raise a :class:`SanitizerViolation` (helper for engine hooks)."""
    raise SanitizerViolation(rule, owner, site, detail)
