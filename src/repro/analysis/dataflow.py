"""Interprocedural dataflow rules over the :mod:`callgraph` summaries.

Every speedup tier in this repo leans on two idioms the per-file rules
cannot prove correct:

* **value-keyed caches** — the operating-point table LRU, the envelope
  memo, the fabric distance-matrix cache, the shared-memory view cache.
  A cached result keyed on *fewer* inputs than the computation actually
  reads returns stale values for the unkeyed input — silently, and only
  under cache hits, so tests that build fresh state never see it.
* **deterministically keyed RNG streams** — ``(seed, tenant_id)``
  per-tenant traffic streams, MT19937 word-stream twins.  An RNG object
  shared across items (or across the ``perf.FAST`` twin boundary)
  couples draws that must be independent, breaking bit-identity the
  moment iteration order changes.

This module derives both properties statically.  The
:class:`~repro.analysis.callgraph.ProgramGraph` gains per-function
parameter-read and return-dependence summaries plus a transitive-input
fixpoint (:meth:`~repro.analysis.callgraph.ProgramGraph.return_param_dependence`);
on top of those, four whole-program rules:

``cache-key-incomplete``
    A memoized/cached function (``functools`` caches, module-global
    ``*_CACHE`` dict inserts, self-attribute memos) reads a parameter,
    ``self`` attribute chain, or shared-mutable module global that is
    not (transitively) folded into its cache key.  Keys that contain a
    content digest component (``digest``, ``checksum``, ...) delegate
    key-completeness to the digest construction and are exempt from the
    parameter check — the digest site itself is an ordinary function
    whose callers the rule still analyzes.

``rng-stream-shared``
    An RNG stream constructed outside a per-item keyed factory flows
    where independent streams are required: a module-level stream read
    from code reachable from a sweep/worker entrypoint or FAST-split
    function; a stream constructed outside a loop handed to per-item
    calls inside the loop (checked in modules that declare a keyed
    factory — the sequential single-stream idiom elsewhere is legal);
    or a stream crossing a ``perf.FAST`` twin boundary.

``seed-derivation``
    Seeds reaching an RNG constructor or keyed factory must derive from
    parameters / frozen spec fields or literals — never from rebindable
    module counters, and never from loop indices *alone*.

``schema-drift``
    A structural fingerprint of every serialized surface (checkpoint
    payload dataclasses + engine state, the ``.npz`` cache layout, the
    shared-memory header words) is pinned in a committed
    ``SCHEMA_FINGERPRINTS.json``.  Changing a field set without bumping
    the owning ``SCHEMA_VERSION`` constant (and re-pinning via
    ``repro lint --update-schema``) fails the gate.

``repro lint --dataflow-report`` renders the underlying evidence — the
per-cache key-vs-read-set table and per-stream provenance chains — from
the same :func:`~repro.analysis.core.shared_analysis` memo the rules
use, so the report costs one extra traversal, not one extra analysis.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.callgraph import (
    Dep,
    FunctionSummary,
    ModuleInfo,
    ProgramGraph,
    expr_deps,
    fast_region_nodes,
    is_rng_call,
    module_dotted,
    scalar_region_nodes,
    shared_graph,
)
from repro.analysis.core import (
    FileContext,
    Finding,
    ProgramRule,
    Rule,
    parent_of,
    shared_analysis,
)
from repro.analysis.determinism import ENGINE_DIRS
from repro.analysis.effects import WORKER_ENTRYPOINTS

#: Committed pin file for serialized-surface fingerprints, repo-root
#: relative (``repro lint --update-schema`` regenerates it).
SCHEMA_PIN_FILENAME = "SCHEMA_FINGERPRINTS.json"

#: Engine switches that select an implementation, never a result value;
#: reading them inside a memoized function is not a key-coverage gap.
_SWITCH_NAMES: FrozenSet[str] = frozenset({"FAST", "ENABLED"})

#: A key component whose name declares it a content digest: the digest
#: construction folds the inputs, so the memo site's parameter check is
#: delegated to it.
_DIGEST_KEY_PATTERN = re.compile(
    r"digest|checksum|sha\d*|fingerprint", re.IGNORECASE
)

_CACHE_DECORATORS: FrozenSet[str] = frozenset({"lru_cache", "cache"})

_LOOP_ANCESTORS: Tuple[type, ...] = (
    ast.For,
    ast.AsyncFor,
    ast.While,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
)


def _own_nodes(root: ast.AST) -> List[ast.AST]:
    """Every descendant of ``root`` in its own frame (nested
    function/class bodies excluded — they get their own summaries)."""
    result: List[ast.AST] = []

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            result.append(child)
            visit(child)

    visit(root)
    return result


def _inside_loop(node: ast.AST, stop: ast.AST) -> bool:
    current = parent_of(node)
    while current is not None and current is not stop:
        if isinstance(current, _LOOP_ANCESTORS):
            return True
        current = parent_of(current)
    return False


def _is_method(summary: FunctionSummary) -> bool:
    return (
        "." in summary.qualname
        and bool(summary.params)
        and summary.params[0] in {"self", "cls"}
    )


def _decorator_terminal(decorator: ast.expr) -> Optional[str]:
    target = decorator.func if isinstance(decorator, ast.Call) else decorator
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, ast.Attribute):
        return target.attr
    return None


def _module_for(graph: ProgramGraph, dotted: str) -> Optional[ModuleInfo]:
    """Scanned module for a dotted name, with suffix fallback (mirrors
    :meth:`ProgramGraph.resolve` so synthetic trees match)."""
    module = graph.modules.get(dotted)
    if module is not None:
        return module
    for candidate_dotted in sorted(graph.modules):
        if candidate_dotted.endswith("." + dotted) or dotted.endswith(
            "." + candidate_dotted
        ):
            return graph.modules[candidate_dotted]
    return None


# ---------------------------------------------------------------------------
# Cache-site model


@dataclass
class CacheSite:
    """One memoized/cached function and its key-vs-read evidence."""

    summary: FunctionSummary
    container: str
    """Rendered container: ``_TABLE_CACHE``, ``self._envelopes``, or
    ``@lru_cache`` for decorator caches."""
    kind: str
    """``memo`` (lookup+store+return), ``publish`` (keyed insert into a
    ``*_CACHE`` global), or ``decorator`` (``functools`` cache)."""
    anchor: ast.AST
    key_exprs: List[ast.expr] = field(default_factory=list)
    key_deps: FrozenSet[Dep] = frozenset()
    digest_keyed: bool = False
    read_params: Tuple[str, ...] = ()
    missing: Tuple[str, ...] = ()
    """Rendered inputs the function reads but its key never covers."""


@dataclass
class StreamSite:
    """One RNG-stream construction and where it flows."""

    summary: FunctionSummary
    node: ast.AST
    name: str
    """Bound local name, or ``<inline>`` for construct-and-pass sites."""
    keyed: bool
    """Seed dependence includes at least one parameter (per-item)."""
    seed_deps: FrozenSet[Dep] = frozenset()
    sinks: Tuple[str, ...] = ()
    """Resolved call targets the stream object is passed to."""
    returned: bool = False


class DataflowView:
    """Scan-wide dataflow artifacts, built once per context tuple."""

    def __init__(self, contexts: Sequence[FileContext]) -> None:
        self.graph: ProgramGraph = shared_graph(contexts)
        self.return_deps: Dict[str, FrozenSet[str]] = (
            self.graph.return_param_dependence()
        )
        self.contexts: Tuple[FileContext, ...] = tuple(contexts)
        self.by_dotted: Dict[str, FileContext] = {
            module_dotted(context.display_path): context
            for context in contexts
        }
        self.keyed_factories: Dict[str, FunctionSummary] = (
            self._find_keyed_factories()
        )
        self.caches: List[CacheSite] = []
        self.streams: List[StreamSite] = []
        for key in sorted(self.graph.functions):
            summary = self.graph.functions[key]
            self.caches.extend(self._collect_caches(summary))
            self.streams.extend(self._collect_streams(summary))

    # -- keyed factories --------------------------------------------------

    def _rng_return_calls(self, summary: FunctionSummary) -> List[ast.Call]:
        """RNG constructor calls this function's return values reduce to."""
        calls: List[ast.Call] = []
        for value in summary.return_values:
            if isinstance(value, ast.Call) and is_rng_call(value):
                calls.append(value)
            elif isinstance(value, ast.Name):
                for source in summary.value_sources.get(value.id, []):
                    if isinstance(source, ast.Call) and is_rng_call(source):
                        calls.append(source)
        return calls

    def _find_keyed_factories(self) -> Dict[str, FunctionSummary]:
        factories: Dict[str, FunctionSummary] = {}
        for key in sorted(self.graph.functions):
            summary = self.graph.functions[key]
            for call in self._rng_return_calls(summary):
                deps: Set[Dep] = set()
                for argument in list(call.args) + [
                    keyword.value for keyword in call.keywords
                ]:
                    deps.update(
                        expr_deps(
                            argument, summary, self.graph, self.return_deps
                        )
                    )
                if any(dep.kind == "param" for dep in deps):
                    factories[key] = summary
                    break
        # One propagation round: a function whose return is a call to a
        # keyed factory is itself a keyed factory.
        for key in sorted(self.graph.functions):
            if key in factories:
                continue
            summary = self.graph.functions[key]
            for target in summary.returned_calls:
                resolved = self.graph.resolve(target)
                if resolved is not None and resolved in factories:
                    factories[key] = summary
                    break
        return factories

    def is_keyed_factory_call(
        self, summary: FunctionSummary, call: ast.Call
    ) -> bool:
        target = summary.call_targets.get(call)
        if target is None:
            return False
        resolved = self.graph.resolve(target)
        return resolved is not None and resolved in self.keyed_factories

    # -- cache sites ------------------------------------------------------

    def _container_name(
        self, summary: FunctionSummary, module: ModuleInfo, expr: ast.expr
    ) -> Optional[str]:
        """Rendered container name for a cache-able owner expression."""
        if isinstance(expr, ast.Name):
            name = expr.id
            if (
                name in summary.params
                or name in summary.loop_targets
                or name in summary.value_sources
            ):
                return None  # shadowed by a local
            var = module.globals.get(name)
            if var is not None and (var.mutable or var.is_cache) and not var.is_lock:
                return name
            return None
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and _is_method(summary)
        ):
            return f"self.{expr.attr}"
        return None

    def _collect_caches(self, summary: FunctionSummary) -> List[CacheSite]:
        module = self.graph.modules.get(summary.module)
        if module is None:
            return []
        sites: List[CacheSite] = []
        decorated = any(
            _decorator_terminal(decorator) in _CACHE_DECORATORS
            for decorator in summary.node.decorator_list
        )
        if decorated:
            sites.append(
                CacheSite(
                    summary=summary,
                    container="@lru_cache",
                    kind="decorator",
                    anchor=summary.node,
                )
            )
        # Value-producing lookups (``.get``/``[k]``/``.setdefault``) are
        # what make a container a memo; bare ``key in C`` membership
        # guards appear on registries too, so they only contribute key
        # expressions, never memo-hood.
        lookups: Dict[str, List[ast.expr]] = {}
        membership: Dict[str, List[ast.expr]] = {}
        stores: Dict[str, List[Tuple[ast.expr, Optional[ast.expr], ast.AST]]] = {}
        for node in _own_nodes(summary.node):
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in {"get", "setdefault"} and node.args:
                    container = self._container_name(
                        summary, module, node.func.value
                    )
                    if container is not None:
                        lookups.setdefault(container, []).append(node.args[0])
                        if node.func.attr == "setdefault" and len(node.args) > 1:
                            stores.setdefault(container, []).append(
                                (node.args[0], node.args[1], node)
                            )
            elif isinstance(node, ast.Subscript):
                container = self._container_name(summary, module, node.value)
                if container is None:
                    continue
                if isinstance(node.ctx, ast.Load):
                    lookups.setdefault(container, []).append(node.slice)
                elif isinstance(node.ctx, ast.Store):
                    parent = parent_of(node)
                    if isinstance(parent, ast.Assign):
                        stores.setdefault(container, []).append(
                            (node.slice, parent.value, parent)
                        )
            elif isinstance(node, ast.Compare):
                for op, comparator in zip(node.ops, node.comparators):
                    if isinstance(op, (ast.In, ast.NotIn)):
                        container = self._container_name(
                            summary, module, comparator
                        )
                        if container is not None:
                            membership.setdefault(container, []).append(
                                node.left
                            )
        for container in sorted(set(lookups) | set(stores)):
            container_stores = stores.get(container, [])
            if not container_stores:
                continue
            memo = bool(lookups.get(container)) and any(
                isinstance(value, ast.Name)
                and value.id in summary.returned_names
                for _, value, _ in container_stores
            )
            is_cache_global = (
                not container.startswith("self.")
                and container in module.globals
                and module.globals[container].is_cache
            )
            if not memo and not is_cache_global:
                continue
            key_exprs = (
                [key for key, _, _ in container_stores]
                + lookups.get(container, [])
                + membership.get(container, [])
            )
            sites.append(
                CacheSite(
                    summary=summary,
                    container=container,
                    kind="memo" if memo else "publish",
                    anchor=container_stores[0][2],
                    key_exprs=key_exprs,
                )
            )
        for site in sites:
            self._analyze_cache(site, module)
        return sites

    def _analyze_cache(self, site: CacheSite, module: ModuleInfo) -> None:
        summary = site.summary
        deps: Set[Dep] = set()
        for expr in site.key_exprs:
            deps.update(expr_deps(expr, summary, self.graph, self.return_deps))
        site.key_deps = frozenset(deps)
        site.digest_keyed = any(
            dep.kind == "param"
            and (
                _DIGEST_KEY_PATTERN.search(dep.name)
                or any(_DIGEST_KEY_PATTERN.search(part) for part in dep.chain)
            )
            for dep in deps
        ) or any(
            dep.kind in {"global", "unknown"}
            and _DIGEST_KEY_PATTERN.search(dep.name)
            for dep in deps
        )
        implicit_first = (
            summary.params[0]
            if _is_method(summary) and summary.params
            else None
        )
        site.read_params = tuple(
            name
            for name in summary.params
            if name in summary.param_reads and name != implicit_first
        )
        missing: List[str] = []
        if site.kind == "decorator":
            # functools caches hash every argument — only module state
            # can leak past the key.
            missing.extend(self._unkeyed_global_reads(site, module))
        else:
            covered = {
                dep.name for dep in site.key_deps if dep.kind == "param"
            }
            if not site.digest_keyed:
                missing.extend(
                    name for name in site.read_params if name not in covered
                )
                if implicit_first is not None and not site.container.startswith(
                    "self."
                ):
                    missing.extend(
                        self._unkeyed_self_chains(site, implicit_first)
                    )
            if site.kind == "memo":
                missing.extend(self._unkeyed_global_reads(site, module))
        site.missing = tuple(dict.fromkeys(missing))

    def _unkeyed_global_reads(
        self, site: CacheSite, module: ModuleInfo
    ) -> List[str]:
        covered = {
            (dep.module, dep.name)
            for dep in site.key_deps
            if dep.kind == "global"
        }
        # A global the function also writes is internal state being
        # updated (hit/miss counters, registries) — only read-only
        # globals are inputs the cached value can go stale against.
        written = {
            effect.name for effect in site.summary.effects if effect.write
        }
        unkeyed: List[str] = []
        for effect in site.summary.effects:
            if effect.write:
                continue
            if effect.name == site.container or effect.name in written:
                continue
            var = module.globals.get(effect.name)
            if var is None or not var.shared_mutable:
                continue
            if var.is_cache or var.is_lock:
                continue
            if effect.name in _SWITCH_NAMES:
                continue
            if (effect.module, effect.name) in covered:
                continue
            rendered = effect.name
            if rendered not in unkeyed:
                unkeyed.append(rendered)
        return unkeyed

    def _unkeyed_self_chains(
        self, site: CacheSite, self_name: str
    ) -> List[str]:
        """``self.<attr>`` chains read by a function that stores into a
        *module-global* cache without folding them into the key."""
        covered_roots = {
            dep.chain[0]
            for dep in site.key_deps
            if dep.kind == "param" and dep.name == self_name and dep.chain
        }
        chains: List[str] = []
        for node in _own_nodes(site.summary.node):
            if not isinstance(node, ast.Attribute):
                continue
            if not isinstance(node.ctx, ast.Load):
                continue
            if not (
                isinstance(node.value, ast.Name)
                and node.value.id == self_name
            ):
                continue
            parent = parent_of(node)
            if isinstance(parent, ast.Call) and parent.func is node:
                continue  # method dispatch, not a data read
            rendered = f"{self_name}.{node.attr}"
            if node.attr in covered_roots:
                continue
            if rendered not in chains:
                chains.append(rendered)
        return chains

    # -- stream sites -----------------------------------------------------

    def _collect_streams(self, summary: FunctionSummary) -> List[StreamSite]:
        sites: List[StreamSite] = []
        own = _own_nodes(summary.node)
        for node in own:
            if not isinstance(node, ast.Call):
                continue
            keyed_factory = self.is_keyed_factory_call(summary, node)
            if not (is_rng_call(node) or keyed_factory):
                continue
            seed_deps: Set[Dep] = set()
            for argument in list(node.args) + [
                keyword.value for keyword in node.keywords
            ]:
                seed_deps.update(
                    expr_deps(argument, summary, self.graph, self.return_deps)
                )
            name = "<inline>"
            parent = parent_of(node)
            if (
                isinstance(parent, ast.Assign)
                and len(parent.targets) == 1
                and isinstance(parent.targets[0], ast.Name)
            ):
                name = parent.targets[0].id
            sinks: List[str] = []
            returned = False
            if name != "<inline>":
                for candidate in own:
                    if not isinstance(candidate, ast.Call):
                        continue
                    if any(
                        isinstance(argument, ast.Name) and argument.id == name
                        for argument in candidate.args
                    ):
                        target = summary.call_targets.get(candidate)
                        sinks.append(
                            target
                            if target is not None
                            else ast.unparse(candidate.func)
                        )
                returned = name in summary.returned_names
            else:
                if isinstance(parent, ast.Call) and node in parent.args:
                    target = summary.call_targets.get(parent)
                    sinks.append(
                        target
                        if target is not None
                        else ast.unparse(parent.func)
                    )
                if isinstance(parent, ast.Return):
                    returned = True
            sites.append(
                StreamSite(
                    summary=summary,
                    node=node,
                    name=name,
                    keyed=keyed_factory
                    or any(dep.kind == "param" for dep in seed_deps),
                    seed_deps=frozenset(seed_deps),
                    sinks=tuple(dict.fromkeys(sinks)),
                    returned=returned,
                )
            )
        return sites


def dataflow_view(contexts: Sequence[FileContext]) -> DataflowView:
    """The scan's :class:`DataflowView`, built at most once per scan."""
    return shared_analysis(contexts, "dataflow", DataflowView)


# ---------------------------------------------------------------------------
# Rules


def _context_for(
    contexts: Sequence[FileContext], path: str
) -> Optional[FileContext]:
    for context in contexts:
        if context.display_path == path:
            return context
    return None


class CacheKeyRule(ProgramRule):
    """Memoized results must be keyed on everything they read."""

    id = "cache-key-incomplete"
    description = (
        "a memoized/cached function reads a parameter, attribute chain, "
        "or mutable global that is not folded into its cache key or "
        "content digest"
    )

    def check_program(
        self, contexts: Sequence[FileContext]
    ) -> Iterator[Finding]:
        view = dataflow_view(contexts)
        for site in view.caches:
            if not site.missing:
                continue
            context = _context_for(contexts, site.summary.path)
            if context is None:
                continue
            keyed = sorted(
                {
                    dep.render()
                    for dep in site.key_deps
                    if dep.kind in {"param", "global"}
                }
            )
            yield context.finding(
                self,
                site.anchor,
                f"cache '{site.container}' in '{site.summary.qualname}' is "
                f"keyed on ({', '.join(keyed) if keyed else 'nothing'}) but "
                f"the function also reads {', '.join(site.missing)}; fold "
                "them into the cache key or content digest (or split the "
                "unkeyed input out of the cached computation)",
            )


class RngStreamRule(ProgramRule):
    """RNG streams must stay per-item and per-twin."""

    id = "rng-stream-shared"
    description = (
        "an RNG stream constructed outside a per-item keyed factory "
        "flows into a sweep/worker entrypoint or across a perf.FAST "
        "twin boundary"
    )

    def check_program(
        self, contexts: Sequence[FileContext]
    ) -> Iterator[Finding]:
        view = dataflow_view(contexts)
        yield from self._check_worker_flow(view, contexts)
        yield from self._check_factory_bypass(view, contexts)
        yield from self._check_twin_boundary(view, contexts)

    # A module-level stream read from worker-reachable code is shared
    # across every item the worker processes.
    def _check_worker_flow(
        self, view: DataflowView, contexts: Sequence[FileContext]
    ) -> Iterator[Finding]:
        graph = view.graph
        roots = [
            key
            for key, summary in graph.functions.items()
            if summary.name in WORKER_ENTRYPOINTS or summary.has_fast_branch
        ]
        origin = graph.reachable_from(roots)
        for key in sorted(origin):
            summary = graph.functions[key]
            module = graph.modules.get(summary.module)
            if module is None:
                continue
            context = _context_for(contexts, summary.path)
            if context is None:
                continue
            root_name = graph.functions[origin[key]].qualname
            for node in _own_nodes(summary.node):
                if not (
                    isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)
                ):
                    continue
                name = node.id
                if (
                    name in summary.params
                    or name in summary.loop_targets
                    or name in summary.value_sources
                ):
                    continue
                shared = name in module.rng_globals
                if not shared and name in module.from_imports:
                    target, original = module.from_imports[name]
                    owner = _module_for(graph, target)
                    shared = (
                        owner is not None and original in owner.rng_globals
                    )
                if shared:
                    yield context.finding(
                        self,
                        node,
                        f"module-level RNG stream '{name}' is read by "
                        f"'{summary.qualname}', reachable from worker/"
                        f"engine entrypoint '{root_name}'; every item must "
                        "draw from its own keyed factory stream",
                    )

    # In a module that declares a keyed per-item factory, handing a
    # stream constructed outside the loop to per-item calls inside the
    # loop bypasses the factory and couples the items.
    def _check_factory_bypass(
        self, view: DataflowView, contexts: Sequence[FileContext]
    ) -> Iterator[Finding]:
        graph = view.graph
        factory_modules: Set[str] = {
            summary.module for summary in view.keyed_factories.values()
        }
        for key in sorted(graph.functions):
            summary = graph.functions[key]
            if key in view.keyed_factories:
                continue
            module = graph.modules.get(summary.module)
            if module is None:
                continue
            gated = summary.module in factory_modules or any(
                graph.resolve(f"{target}::{original}")
                in view.keyed_factories
                for target, original in module.from_imports.values()
            )
            if not gated:
                continue
            context = _context_for(contexts, summary.path)
            if context is None:
                continue
            own = _own_nodes(summary.node)
            for name, bindings in self._rng_locals(view, summary, own):
                if any(
                    _inside_loop(binding, summary.node)
                    for binding in bindings
                ):
                    continue
                for node in own:
                    if not isinstance(node, ast.Call):
                        continue
                    if not _inside_loop(node, summary.node):
                        continue
                    if any(
                        isinstance(argument, ast.Name)
                        and argument.id == name
                        for argument in node.args
                    ) or any(
                        isinstance(keyword.value, ast.Name)
                        and keyword.value.id == name
                        for keyword in node.keywords
                    ):
                        callee = summary.call_targets.get(
                            node, ast.unparse(node.func)
                        )
                        yield context.finding(
                            self,
                            node,
                            f"RNG stream '{name}' is constructed outside "
                            f"the loop in '{summary.qualname}' but handed "
                            f"to per-item call '{callee}' inside it; this "
                            "module keys streams per item — construct one "
                            "via the keyed factory instead",
                        )

    # A stream constructed in one arm of a perf.FAST split must not be
    # used in the other: the twins own independent stream state.
    def _check_twin_boundary(
        self, view: DataflowView, contexts: Sequence[FileContext]
    ) -> Iterator[Finding]:
        graph = view.graph
        for key in sorted(graph.functions):
            summary = graph.functions[key]
            if not summary.has_fast_branch:
                continue
            context = _context_for(contexts, summary.path)
            if context is None:
                continue
            fast = fast_region_nodes(summary.node)
            scalar = scalar_region_nodes(summary.node)
            own = _own_nodes(summary.node)
            for name, bindings in self._rng_locals(view, summary, own):
                for region, label in ((fast, "fast"), (scalar, "scalar")):
                    if not all(binding in region for binding in bindings):
                        continue
                    for node in own:
                        if (
                            isinstance(node, ast.Name)
                            and isinstance(node.ctx, ast.Load)
                            and node.id == name
                            and node not in region
                        ):
                            yield context.finding(
                                self,
                                node,
                                f"RNG stream '{name}' is constructed in "
                                f"the {label} region of the perf.FAST "
                                f"split in '{summary.qualname}' but used "
                                "outside it; the twins must keep "
                                "independent, resynced streams",
                            )
                            break

    @staticmethod
    def _rng_locals(
        view: DataflowView,
        summary: FunctionSummary,
        own: Sequence[ast.AST],
    ) -> List[Tuple[str, List[ast.AST]]]:
        """Locals every one of whose bindings constructs an RNG stream,
        with their binding statements."""
        bindings: Dict[str, List[ast.AST]] = {}
        rng_names: Set[str] = set()
        for node in own:
            if not isinstance(node, ast.Assign):
                continue
            if len(node.targets) != 1 or not isinstance(
                node.targets[0], ast.Name
            ):
                continue
            name = node.targets[0].id
            bindings.setdefault(name, []).append(node)
            if isinstance(node.value, ast.Call) and (
                is_rng_call(node.value)
                or view.is_keyed_factory_call(summary, node.value)
            ):
                rng_names.add(name)
        return [
            (name, bindings[name])
            for name in sorted(rng_names)
            if all(
                isinstance(binding, ast.Assign)
                and isinstance(binding.value, ast.Call)
                and (
                    is_rng_call(binding.value)
                    or view.is_keyed_factory_call(summary, binding.value)
                )
                for binding in bindings[name]
            )
        ]


class SeedDerivationRule(ProgramRule):
    """Seeds must derive from frozen spec fields, not ambient state."""

    id = "seed-derivation"
    description = (
        "seeds reaching a seeded-RNG factory must derive from frozen "
        "spec fields or parameters, never module counters or loop "
        "indices alone"
    )
    scoped_dirs = frozenset(ENGINE_DIRS | {"experiments"})

    def check_program(
        self, contexts: Sequence[FileContext]
    ) -> Iterator[Finding]:
        view = dataflow_view(contexts)
        for site in view.streams:
            if not site.seed_deps:
                continue
            context = _context_for(contexts, site.summary.path)
            if context is None:
                continue
            for dep in sorted(site.seed_deps, key=lambda d: d.render()):
                if dep.kind != "global":
                    continue
                owner = _module_for(view.graph, dep.module)
                if owner is None:
                    continue
                var = owner.globals.get(dep.name)
                if (
                    var is not None
                    and var.rebound
                    and not var.is_lock
                    and not var.is_cache
                ):
                    yield context.finding(
                        self,
                        site.node,
                        f"seed for the RNG stream in "
                        f"'{site.summary.qualname}' derives from the "
                        f"rebindable module global '{dep.render()}'; "
                        "module counters make streams depend on call "
                        "order — derive seeds from frozen spec fields",
                    )
            if all(dep.kind == "loop" for dep in site.seed_deps):
                indices = ", ".join(
                    sorted(dep.name for dep in site.seed_deps)
                )
                yield context.finding(
                    self,
                    site.node,
                    f"seed for the RNG stream in "
                    f"'{site.summary.qualname}' derives only from loop "
                    f"indices ({indices}); mix in a frozen spec seed so "
                    "distinct sweeps draw distinct streams",
                )


# ---------------------------------------------------------------------------
# Schema fingerprinting


@dataclass(frozen=True)
class SchemaSurface:
    """One serialized surface whose structure is pinned."""

    name: str
    module_suffix: str
    version_module_suffix: str
    version_name: str


SCHEMA_SURFACES: Tuple[SchemaSurface, ...] = (
    SchemaSurface(
        name="service-checkpoint",
        module_suffix="cloud.service",
        version_module_suffix="cloud.service",
        version_name="CHECKPOINT_SCHEMA",
    ),
    SchemaSurface(
        name="optable-npz",
        module_suffix="sim.optstore",
        version_module_suffix="cacheconf",
        version_name="SCHEMA_VERSION",
    ),
    SchemaSurface(
        name="optable-shm-header",
        module_suffix="sim.optstore",
        version_module_suffix="cacheconf",
        version_name="SCHEMA_VERSION",
    ),
)


def _find_context_by_suffix(
    contexts: Sequence[FileContext], suffix: str
) -> Optional[FileContext]:
    for context in contexts:
        dotted = module_dotted(context.display_path)
        if dotted == suffix or dotted.endswith("." + suffix):
            return context
    return None


def _module_constant(
    tree: ast.Module, name: str
) -> Tuple[Optional[int], Optional[ast.AST]]:
    for statement in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(statement, ast.Assign):
            targets = list(statement.targets)
            value = statement.value
        elif isinstance(statement, ast.AnnAssign):
            targets = [statement.target]
            value = statement.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id == name:
                if isinstance(value, ast.Constant) and isinstance(
                    value.value, int
                ):
                    return value.value, statement
                return None, statement
    return None, None


def _dataclass_fields(tree: ast.Module) -> Dict[str, List[str]]:
    classes: Dict[str, List[str]] = {}
    for statement in tree.body:
        if not isinstance(statement, ast.ClassDef):
            continue
        if not any(
            _decorator_terminal(decorator) == "dataclass"
            for decorator in statement.decorator_list
        ):
            continue
        fields: List[str] = []
        for item in statement.body:
            if isinstance(item, ast.AnnAssign) and isinstance(
                item.target, ast.Name
            ):
                fields.append(item.target.id)
        classes[statement.name] = fields
    return classes


def _init_state_attrs(tree: ast.Module, class_name: str) -> List[str]:
    for statement in tree.body:
        if not isinstance(statement, ast.ClassDef):
            continue
        if statement.name != class_name:
            continue
        for item in statement.body:
            if (
                isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                and item.name == "__init__"
            ):
                attrs: Set[str] = set()
                for node in ast.walk(item):
                    targets: List[ast.expr] = []
                    if isinstance(node, ast.Assign):
                        targets = list(node.targets)
                    elif isinstance(node, ast.AnnAssign):
                        targets = [node.target]
                    for target in targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            attrs.add(target.attr)
                return sorted(attrs)
    return []


def _surface_structure(
    surface: SchemaSurface, context: FileContext
) -> Dict[str, object]:
    tree = context.tree
    if surface.name == "service-checkpoint":
        return {
            "dataclasses": {
                name: fields
                for name, fields in sorted(_dataclass_fields(tree).items())
            },
            "engine_state": _init_state_attrs(tree, "ServiceEngine"),
        }
    if surface.name == "optable-npz":
        arrays: Set[str] = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = (
                func.attr
                if isinstance(func, ast.Attribute)
                else func.id
                if isinstance(func, ast.Name)
                else None
            )
            if name in {"savez", "savez_compressed"}:
                splats: Set[str] = set()
                for keyword in node.keywords:
                    if keyword.arg is not None:
                        arrays.add(keyword.arg)
                    elif isinstance(keyword.value, ast.Name):
                        splats.add(keyword.value.id)
                if splats:
                    arrays.update(_dict_string_keys(tree, splats))
        return {"arrays": sorted(arrays)}
    if surface.name == "optable-shm-header":
        words: Dict[str, int] = {}
        for statement in tree.body:
            if not isinstance(statement, ast.Assign):
                continue
            for target in statement.targets:
                if (
                    isinstance(target, ast.Name)
                    and (
                        target.id.startswith("_W_")
                        or target.id.startswith("_SEG_")
                        or target.id in {"_HEADER_WORDS"}
                    )
                    and isinstance(statement.value, ast.Constant)
                    and isinstance(statement.value.value, int)
                ):
                    words[target.id] = statement.value.value
        return {"words": dict(sorted(words.items()))}
    raise ValueError(f"unknown schema surface {surface.name!r}")


def _dict_string_keys(tree: ast.Module, names: Set[str]) -> Set[str]:
    """String keys statically visible in dicts splatted into ``savez``.

    Covers the two shapes the store uses: a dict-literal assignment
    (``arrays = {"speedups": ...}``) and keyed inserts
    (``arrays["hull"] = ...``) anywhere in the module.
    """
    keys: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.AnnAssign):
            targets = [node.target]
            value: Optional[ast.expr] = node.value
        elif isinstance(node, ast.Assign):
            targets = list(node.targets)
            value = node.value
        else:
            continue
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and target.id in names
                and isinstance(value, ast.Dict)
            ):
                for key in value.keys:
                    if isinstance(key, ast.Constant) and isinstance(
                        key.value, str
                    ):
                        keys.add(key.value)
            elif (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and target.value.id in names
                and isinstance(target.slice, ast.Constant)
                and isinstance(target.slice.value, str)
            ):
                keys.add(target.slice.value)
    return keys


def _fingerprint(structure: Dict[str, object]) -> str:
    canonical = json.dumps(structure, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def _flatten(structure: object, prefix: str = "") -> Set[str]:
    leaves: Set[str] = set()
    if isinstance(structure, dict):
        for key, value in structure.items():
            leaves.update(_flatten(value, f"{prefix}{key}."))
    elif isinstance(structure, (list, tuple)):
        for value in structure:
            leaves.update(_flatten(value, prefix))
    else:
        leaves.add(f"{prefix}{structure}")
    return leaves


def compute_schema_surfaces(
    contexts: Sequence[FileContext],
) -> Dict[str, Dict[str, object]]:
    """Structure + fingerprint of every schema surface present in the
    scan (absent surfaces are skipped, so partial scans stay quiet)."""
    surfaces: Dict[str, Dict[str, object]] = {}
    for surface in SCHEMA_SURFACES:
        context = _find_context_by_suffix(contexts, surface.module_suffix)
        version_context = _find_context_by_suffix(
            contexts, surface.version_module_suffix
        )
        if context is None or version_context is None:
            continue
        version, _ = _module_constant(
            version_context.tree, surface.version_name
        )
        structure = _surface_structure(surface, context)
        surfaces[surface.name] = {
            "schema_version": version,
            "fingerprint": _fingerprint(structure),
            "structure": structure,
        }
    return surfaces


def write_schema_pins(
    contexts: Sequence[FileContext], pin_path: Path
) -> Dict[str, Dict[str, object]]:
    """Regenerate ``SCHEMA_FINGERPRINTS.json`` from the scan."""
    surfaces = compute_schema_surfaces(contexts)
    payload = {"version": 1, "surfaces": surfaces}
    pin_path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return surfaces


class SchemaDriftRule(ProgramRule):
    """Serialized surfaces change only alongside a version bump."""

    id = "schema-drift"
    description = (
        "a serialized surface (checkpoint dataclasses, .npz layout, shm "
        "header) changed without bumping its SCHEMA_VERSION and "
        "re-pinning SCHEMA_FINGERPRINTS.json"
    )

    def __init__(self) -> None:
        #: Set by the CLI to ``<root>/SCHEMA_FINGERPRINTS.json``; the
        #: default resolves against the working directory.
        self.pin_path: Optional[Path] = None

    def _load_pins(self) -> Optional[Dict[str, Dict[str, object]]]:
        path = self.pin_path or Path(SCHEMA_PIN_FILENAME)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict):
            return None
        surfaces = payload.get("surfaces")
        if not isinstance(surfaces, dict):
            return None
        pins: Dict[str, Dict[str, object]] = {}
        for name, entry in surfaces.items():
            if isinstance(name, str) and isinstance(entry, dict):
                pins[name] = {str(key): value for key, value in entry.items()}
        return pins

    def check_program(
        self, contexts: Sequence[FileContext]
    ) -> Iterator[Finding]:
        current = compute_schema_surfaces(contexts)
        if not current:
            return
        pinned = self._load_pins()
        for name in sorted(current):
            surface = next(
                item for item in SCHEMA_SURFACES if item.name == name
            )
            context = _find_context_by_suffix(
                contexts, surface.module_suffix
            )
            if context is None:
                continue
            version_context = _find_context_by_suffix(
                contexts, surface.version_module_suffix
            )
            anchor: ast.AST = context.tree
            if version_context is context:
                _, version_node = _module_constant(
                    context.tree, surface.version_name
                )
                if version_node is not None:
                    anchor = version_node
            entry = current[name]
            pin = pinned.get(name) if pinned is not None else None
            if pin is None:
                yield context.finding(
                    self,
                    anchor,
                    f"serialized surface '{name}' has no pinned "
                    f"fingerprint; run `repro lint --update-schema` and "
                    f"commit {SCHEMA_PIN_FILENAME}",
                )
                continue
            if entry["fingerprint"] == pin.get("fingerprint"):
                if entry["schema_version"] != pin.get("schema_version"):
                    yield context.finding(
                        self,
                        anchor,
                        f"surface '{name}' pins schema_version "
                        f"{pin.get('schema_version')} but the module "
                        f"declares {entry['schema_version']}; re-pin with "
                        "`repro lint --update-schema`",
                    )
                continue
            added, removed = self._structure_diff(
                pin.get("structure"), entry["structure"]
            )
            detail = "; ".join(
                part
                for part in (
                    f"added {', '.join(added)}" if added else "",
                    f"removed {', '.join(removed)}" if removed else "",
                )
                if part
            )
            if entry["schema_version"] == pin.get("schema_version"):
                yield context.finding(
                    self,
                    anchor,
                    f"serialized surface '{name}' changed "
                    f"({detail or 'structure differs'}) without bumping "
                    f"{surface.version_name}; bump it and re-pin with "
                    "`repro lint --update-schema`",
                )
            else:
                yield context.finding(
                    self,
                    anchor,
                    f"serialized surface '{name}' changed with a "
                    f"{surface.version_name} bump; refresh "
                    f"{SCHEMA_PIN_FILENAME} with "
                    "`repro lint --update-schema`",
                )

    @staticmethod
    def _structure_diff(
        old: object, new: object
    ) -> Tuple[List[str], List[str]]:
        old_leaves = _flatten(old) if isinstance(old, dict) else set()
        new_leaves = _flatten(new) if isinstance(new, dict) else set()
        added = sorted(new_leaves - old_leaves)[:4]
        removed = sorted(old_leaves - new_leaves)[:4]
        return added, removed


# ---------------------------------------------------------------------------
# Report


def dataflow_report(contexts: Sequence[FileContext]) -> Dict[str, object]:
    """Evidence tables behind the dataflow rules.

    ``caches`` — one row per memoized/cached function: the key's
    dependence set next to the parameter/global read set, and whatever
    the rules flagged as missing.  ``streams`` — one row per RNG-stream
    construction: seed provenance and the calls the stream flows into.
    ``schema`` — current surface fingerprints.  All rows are sorted, so
    the JSON form is byte-stable for CI artifacts.
    """
    view = dataflow_view(contexts)
    caches: List[Dict[str, object]] = []
    for site in view.caches:
        caches.append(
            {
                "function": site.summary.qualname,
                "path": site.summary.path,
                "line": getattr(site.anchor, "lineno", 1),
                "container": site.container,
                "kind": site.kind,
                "key": sorted(
                    dep.render()
                    for dep in site.key_deps
                    if dep.kind in {"param", "global"}
                ),
                "reads": list(site.read_params),
                "digest_keyed": site.digest_keyed,
                "missing": list(site.missing),
            }
        )
    caches.sort(key=lambda row: (str(row["path"]), int(str(row["line"]))))
    streams: List[Dict[str, object]] = []
    for site in view.streams:
        streams.append(
            {
                "function": site.summary.qualname,
                "path": site.summary.path,
                "line": getattr(site.node, "lineno", 1),
                "name": site.name,
                "keyed": site.keyed,
                "seed": sorted(dep.render() for dep in site.seed_deps),
                "sinks": list(site.sinks),
                "returned": site.returned,
            }
        )
    streams.sort(key=lambda row: (str(row["path"]), int(str(row["line"]))))
    schema = {
        name: {
            "schema_version": entry["schema_version"],
            "fingerprint": entry["fingerprint"],
        }
        for name, entry in sorted(compute_schema_surfaces(contexts).items())
    }
    return {"caches": caches, "streams": streams, "schema": schema}


RULES: Tuple[Rule, ...] = (
    CacheKeyRule(),
    RngStreamRule(),
    SeedDerivationRule(),
    SchemaDriftRule(),
)
