"""Shared-state effect rules: the concurrency tier of ``repro lint``.

Three rules, all built on the :mod:`repro.analysis.callgraph` effect
summaries, police the engine's process-global mutable state:

``worker-global-write``
    A write to a module-level mutable (or ``global``-rebound) object,
    outside any module lock, in a function reachable from a sweep
    worker entrypoint (``stats.run_cell`` / ``run_cells``) or from a
    ``perf.FAST`` twin.  Those functions run inside
    ``ProcessPoolExecutor`` workers and under the FAST bit-identity
    contract — an unsynchronized global write there corrupts results
    invisibly.

``lock-discipline``
    A module that defines a lock (any module global bound to
    ``threading.Lock()`` and friends, or following the ``*_LOCK``
    naming protocol — including ``None``-initialized slots later bound
    to a cross-process lock) has declared a protocol: its shared
    mutable globals are lock-protected.  Every read *and* write of
    such a global from function code must sit inside a ``with
    <lock>:`` block of one of the module's locks.  Helpers named
    ``*_locked`` assume the caller already holds the lock — their own
    effects pass, and instead every same-module *call* to them must
    itself sit inside a lock block.

``cache-mutation``
    Values published into a module-level cache (a global with ``CACHE``
    in its name) must be provably frozen — a frozen dataclass, tuple,
    ``MappingProxyType``/``frozenset`` call, a value carrying a
    ``.seal()`` or ``.setflags(write=False)`` call (the shared
    operating-point store's sealed-ndarray publish idiom), or
    something read back from the same cache — and
    values obtained *from* a cache accessor must never be mutated in
    place (``.append``, ``x[k] = …``, ``del x[k]``…).  Taint follows
    direct bindings and accessor call chains; passing a cached object
    through function arguments is not tracked (a documented limit, not
    a guarantee).

All three respect ``# lint: allow(rule)`` pragmas and the
``LINT_BASELINE.json`` gate exactly like the per-file rules.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Sequence, Set, Tuple

from repro.analysis.callgraph import (
    FROZEN_FACTORIES,
    Effect,
    FunctionSummary,
    ModuleInfo,
    ProgramGraph,
    analyze_module,
    shared_graph,
    _terminal_name,
)
from repro.analysis.core import FileContext, Finding, ProgramRule, Rule

#: Simple names that mark a function as a sweep-worker entrypoint.
WORKER_ENTRYPOINTS: frozenset[str] = frozenset({"run_cell", "run_cells"})


def _context_map(
    contexts: Sequence[FileContext],
) -> Dict[str, FileContext]:
    return {context.display_path: context for context in contexts}


class WorkerGlobalWriteRule(ProgramRule):
    """Unsynchronized global write reachable from a worker entrypoint."""

    id = "worker-global-write"
    description = (
        "write to a module-level mutable global, outside any module "
        "lock, in code reachable from a sweep worker entrypoint or a "
        "perf.FAST twin"
    )

    def check_program(
        self, contexts: Sequence[FileContext]
    ) -> Iterator[Finding]:
        by_path = _context_map(contexts)
        graph = shared_graph(contexts)
        roots = [
            key
            for key, summary in graph.functions.items()
            if summary.name in WORKER_ENTRYPOINTS or summary.has_fast_branch
        ]
        origin = graph.reachable_from(roots)
        for key in sorted(origin):
            summary = graph.functions[key]
            context = by_path.get(summary.path)
            if context is None:
                continue
            root = graph.functions[origin[key]]
            for effect in summary.effects:
                if not effect.write or effect.synchronized:
                    continue
                module = graph.modules.get(effect.module)
                if module is None:
                    continue
                var = module.globals.get(effect.name)
                if var is None or not var.shared_mutable:
                    continue
                via = (
                    "a worker entrypoint"
                    if root.name in WORKER_ENTRYPOINTS
                    else "a perf.FAST twin"
                )
                yield context.finding(
                    self,
                    effect.node,
                    (
                        f"unsynchronized write to module global "
                        f"'{effect.name}' in '{summary.qualname}', "
                        f"reachable from {via} "
                        f"('{root.module}.{root.qualname}'); hold the "
                        f"module lock or make the state per-call"
                    ),
                )


class LockDisciplineRule(Rule):
    """Globals of a lock-declaring module touched outside the lock."""

    id = "lock-discipline"
    description = (
        "a module that defines a _LOCK/_CACHE_LOCK must touch its "
        "shared mutable globals only inside that lock's with block"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        info = analyze_module(context)
        if not info.lock_names:
            return
        locks = ", ".join(sorted(info.lock_names))
        for key in sorted(info.functions):
            summary = info.functions[key]
            # One finding per (global, line): a subscript store like
            # ``_CACHE[k] = v`` is both a write site and a read of the
            # name — report it once, as the write.
            best: Dict[Tuple[str, int], "Effect"] = {}
            for effect in summary.effects:
                if effect.synchronized or effect.module != info.dotted:
                    continue
                var = info.globals.get(effect.name)
                if var is None or not var.shared_mutable:
                    continue
                site = (effect.name, getattr(effect.node, "lineno", 0))
                held = best.get(site)
                if held is None or (effect.write and not held.write):
                    best[site] = effect
            for site in sorted(best):
                effect = best[site]
                action = "write to" if effect.write else "read of"
                yield context.finding(
                    self,
                    effect.node,
                    (
                        f"{action} module global '{effect.name}' in "
                        f"'{summary.qualname}' outside the module's "
                        f"lock(s) ({locks}); wrap the access in "
                        f"'with {sorted(info.lock_names)[0]}:'"
                    ),
                )
            # A *_locked helper documents "caller holds the lock"; a
            # same-module call to one outside any lock block breaks
            # that contract even though the helper's own effects pass.
            for call in summary.locked_calls:
                if call.synchronized:
                    continue
                yield context.finding(
                    self,
                    call.node,
                    (
                        f"call to lock-assuming helper '{call.name}' "
                        f"in '{summary.qualname}' outside the module's "
                        f"lock(s) ({locks}); *_locked helpers must be "
                        f"called with the lock already held"
                    ),
                )


def _is_frozen_expr(
    value: ast.expr,
    summary: FunctionSummary,
    module: ModuleInfo,
    frozen_classes: Set[str],
    publish_line: int,
    depth: int = 0,
) -> bool:
    """Whether a published expression is provably immutable."""
    if depth > 4:
        return False
    if isinstance(value, (ast.Constant, ast.Tuple)):
        return True
    if isinstance(value, ast.Call):
        name = _terminal_name(value.func)
        if name in FROZEN_FACTORIES or name in frozen_classes:
            return True
        # ``CACHE.get(key)`` / ``CACHE.setdefault`` re-publish.
        if isinstance(value.func, ast.Attribute) and isinstance(
            value.func.value, ast.Name
        ):
            owner = module.globals.get(value.func.value.id)
            if (
                owner is not None
                and owner.is_cache
                and value.func.attr in {"get", "setdefault"}
            ):
                return True
        return False
    if isinstance(value, ast.Subscript) and isinstance(value.value, ast.Name):
        owner = module.globals.get(value.value.id)
        return owner is not None and owner.is_cache
    if isinstance(value, ast.Name):
        name = value.id
        if name in summary.cache_bindings:
            return True
        seal_line = summary.sealed_names.get(name)
        if seal_line is not None and seal_line <= publish_line:
            return True
        sources = summary.value_sources.get(name)
        if not sources:
            return False
        return all(
            _is_frozen_expr(
                source,
                summary,
                module,
                frozen_classes,
                publish_line,
                depth + 1,
            )
            for source in sources
        )
    return False


class CacheMutationRule(ProgramRule):
    """Cache publishes must be frozen; cache lookups must not mutate."""

    id = "cache-mutation"
    description = (
        "values published to a module-level cache must be provably "
        "frozen, and values obtained from a cache accessor must not "
        "be mutated in place"
    )

    def check_program(
        self, contexts: Sequence[FileContext]
    ) -> Iterator[Finding]:
        by_path = _context_map(contexts)
        graph = shared_graph(contexts)
        frozen_classes = graph.frozen_class_names()
        accessors = graph.cache_accessors()
        for key in sorted(graph.functions):
            summary = graph.functions[key]
            context = by_path.get(summary.path)
            if context is None:
                continue
            module = graph.modules[summary.module]
            # Part A: publishes into a cache global must be frozen.
            for publish in summary.cache_publishes:
                line = getattr(publish.node, "lineno", 0)
                if _is_frozen_expr(
                    publish.value, summary, module, frozen_classes, line
                ):
                    continue
                yield context.finding(
                    self,
                    publish.node,
                    (
                        f"value published to cache "
                        f"'{publish.cache_name}' in "
                        f"'{summary.qualname}' is not provably frozen; "
                        f"publish a frozen dataclass, tuple, mapping "
                        f"proxy, or call .seal() on it first"
                    ),
                )
            # Part B: names tainted by a cache lookup must not mutate.
            tainted: Dict[str, str] = {}
            for name in summary.cache_bindings:
                tainted[name] = "a cache lookup"
            for name, targets in summary.call_bindings.items():
                for target in targets:
                    callee = graph.resolve(target)
                    if callee is not None and callee in accessors:
                        accessor = graph.functions[callee]
                        tainted.setdefault(
                            name,
                            f"cache accessor '{accessor.qualname}'",
                        )
                        break
            for mutation in summary.mutations:
                source = tainted.get(mutation.name)
                if source is None:
                    continue
                yield context.finding(
                    self,
                    mutation.node,
                    (
                        f"in-place mutation '{mutation.name}"
                        f"{mutation.what}' in '{summary.qualname}' of a "
                        f"value obtained from {source}; cached objects "
                        f"are shared — copy before mutating"
                    ),
                )


RULES: Tuple[Rule, ...] = (
    WorkerGlobalWriteRule(),
    LockDisciplineRule(),
    CacheMutationRule(),
)
