"""Speed of the experiment engine itself (not a paper artefact).

Three layers of the fast experiment engine are measured and pinned:

* the vectorized + memoized performance-model kernel — a cached
  operating-point table lookup must beat rebuilding the table with the
  scalar model by a wide margin (this is what every allocator and the
  harness hit once per interval);
* the end-to-end single cell — fast paths on vs the reference scalar
  paths, with the *same* cost/violation outputs (the fast engine is an
  optimization, never a model change);
* the parallel sweep executor — job count must never change results,
  and on multi-core boxes more jobs must not be slower.

Wall-clock numbers are persisted to ``BENCH_PERF.json`` so runs can be
compared across commits.
"""

import os
import time

import pytest

from repro import perf
from repro.arch.vcore import DEFAULT_CONFIG_SPACE
from repro.experiments.scenarios import run_app_with_allocator
from repro.experiments.stats import (
    CellSpec,
    record_bench_perf,
    run_cells,
    sweep,
)
from repro.sim.optables import (
    build_table_scalar,
    cache_clear,
    operating_point_table,
)
from repro.sim.perfmodel import DEFAULT_PERF_MODEL
from repro.workloads.apps import make_x264

MODEL = DEFAULT_PERF_MODEL
SPACE = DEFAULT_CONFIG_SPACE


def _time(fn, reps):
    start = time.perf_counter()
    for _ in range(reps):
        fn()
    return (time.perf_counter() - start) / reps


@pytest.mark.benchmark(group="engine")
def test_kernel_memoized_tables(benchmark, announce):
    """Cached table lookups >= 5x faster than scalar table builds."""
    phases = make_x264().phases

    def scalar():
        for phase in phases:
            build_table_scalar(phase, MODEL, SPACE)

    def cached():
        for phase in phases:
            operating_point_table(phase, MODEL, SPACE)

    cache_clear()
    cached()  # populate the table cache once (the steady state)
    scalar_s = _time(scalar, 10)
    cached_s = benchmark.pedantic(lambda: _time(cached, 100), rounds=1, iterations=1)
    speedup = scalar_s / cached_s

    announce("\n=== Perf-model kernel: scalar rebuild vs memoized table ===")
    announce(f"scalar build (10 phases): {scalar_s * 1e3:8.3f} ms")
    announce(f"memoized lookup:          {cached_s * 1e3:8.3f} ms")
    announce(f"speedup:                  {speedup:8.1f}x")

    record_bench_perf(
        "kernel",
        {
            "scalar_build_ms": round(scalar_s * 1e3, 3),
            "memoized_lookup_ms": round(cached_s * 1e3, 4),
            "speedup": round(speedup, 1),
        },
    )
    # Tables are equal either way (see tests/sim/test_optables.py); here
    # only the speed is at stake.
    assert speedup >= 5.0


@pytest.mark.benchmark(group="engine")
def test_single_cell_fast_vs_reference(benchmark, announce):
    """Fast paths change the wall clock, never the outputs."""

    def run():
        return run_app_with_allocator("x264", "cash", intervals=200, seed=0)

    with perf.fast_paths(False):
        run()  # warm imports and traces outside the timed region
        reference_s = _time(run, 3)
        reference = run()
    with perf.fast_paths(True):
        fast_s = benchmark.pedantic(lambda: _time(run, 3), rounds=1, iterations=1)
        fast = run()
    speedup = reference_s / fast_s

    announce("\n=== Single cell (x264/cash, 200 intervals, seed 0) ===")
    announce(f"reference paths: {reference_s:6.3f} s")
    announce(f"fast paths:      {fast_s:6.3f} s")
    announce(f"speedup:         {speedup:6.2f}x")

    record_bench_perf(
        "single_cell",
        {
            "cell": "x264/cash/200/seed0",
            "reference_seconds": round(reference_s, 4),
            "fast_seconds": round(fast_s, 4),
            "speedup": round(speedup, 2),
        },
    )
    assert fast.mean_cost_rate == reference.mean_cost_rate
    assert fast.violation_percent == reference.violation_percent
    assert fast.records == reference.records
    # Conservative floor; typically ~2.5x on this cell (the CASH
    # allocator re-solves the envelope every interval, the dominant
    # remaining cost).  The >= 5x kernel claim is pinned above where
    # the memoized kernel is isolated from control-loop overhead.
    assert speedup >= 1.5


@pytest.mark.benchmark(group="engine")
def test_sweep_parallel_equals_serial(benchmark, announce):
    """Job count is invisible in the results, visible in the clock."""
    specs = [
        CellSpec(app_name=app, kind=kind, intervals=120, seed=seed)
        for app in ("x264", "mcf")
        for kind in ("cash", "optimal")
        for seed in (0, 1)
    ]

    start = time.perf_counter()
    serial = run_cells(specs, jobs=1)
    serial_s = time.perf_counter() - start

    jobs = min(4, os.cpu_count() or 1)
    start = time.perf_counter()
    parallel = benchmark.pedantic(
        lambda: run_cells(specs, jobs=max(jobs, 2)), rounds=1, iterations=1
    )
    parallel_s = time.perf_counter() - start

    announce(f"\n=== Sweep executor ({len(specs)} cells) ===")
    announce(f"serial (jobs=1):      {serial_s:6.3f} s")
    announce(f"parallel (jobs={max(jobs, 2)}):    {parallel_s:6.3f} s")

    record_bench_perf(
        "sweep_executor",
        {
            "cells": len(specs),
            "serial_seconds": round(serial_s, 4),
            "parallel_jobs": max(jobs, 2),
            "parallel_seconds": round(parallel_s, 4),
        },
    )
    for left, right in zip(serial, parallel):
        assert left.mean_cost_rate == right.mean_cost_rate
        assert left.violation_percent == right.violation_percent
        assert left.records == right.records
    if (os.cpu_count() or 1) >= 2:
        # With real cores available the pool must pay for itself; the
        # generous factor absorbs process start-up on small grids.
        assert parallel_s < serial_s * 1.2


@pytest.mark.benchmark(group="engine")
def test_full_grid_sweep_timing(benchmark, announce):
    """Record the full (app x allocator x seed) grid used for Table III."""
    results, timing = benchmark.pedantic(
        lambda: sweep(
            ("x264", "mcf", "apache"),
            ("optimal", "cash"),
            seeds=(0,),
            intervals=200,
            jobs=None,  # default: all CPUs
        ),
        rounds=1,
        iterations=1,
    )
    announce(
        f"\n=== Grid sweep: {timing['cells']} cells in "
        f"{timing['wall_seconds']}s with {timing['jobs']} job(s) ==="
    )
    record_bench_perf("grid_sweep", timing)
    assert set(results) == {"optimal", "cash"}
    for kind in results:
        assert set(results[kind]) == {"x264", "mcf", "apache"}
