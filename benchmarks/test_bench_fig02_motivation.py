"""Fig. 2: the motivational comparison of fine-grain allocators on x264.

Paper claims (Section II-B):
* convex optimization incurs much higher cost than optimal AND
  repeatedly violates QoS;
* race-to-idle never violates (optimistic assumptions) but costs far
  more than optimal;
* for x264 both produce well over the optimal cost (the paper quotes
  over 4.5x for its per-phase QoS variant; our QoS rule is the
  Section VI-C one, so the gap is smaller but the ordering is the
  same).
"""

import pytest

from repro.experiments.scenarios import x264_timeseries, run_app_with_allocator


def regenerate_fig2():
    runs = {
        kind: run_app_with_allocator("x264", kind, intervals=700)
        for kind in ("optimal", "convex", "race")
    }
    return runs


@pytest.mark.benchmark(group="fig2")
def test_fig2_motivational_comparison(benchmark, announce):
    runs = benchmark.pedantic(regenerate_fig2, rounds=1, iterations=1)

    optimal = runs["optimal"]
    convex = runs["convex"]
    race = runs["race"]

    announce("\n=== Fig. 2: fine-grain resource allocators on x264 ===")
    announce(f"{'allocator':<22}{'cost $/hr':>10}{'vs optimal':>12}{'viol %':>8}")
    for name, run in (("Optimal", optimal), ("Convex Optimization", convex),
                      ("Race to Idle", race)):
        announce(
            f"{name:<22}{run.cost_dollars:>10.4f}"
            f"{run.cost_dollars / optimal.cost_dollars:>11.2f}x"
            f"{run.violation_percent:>8.1f}"
        )

    # Shape: both baselines cost more than optimal...
    assert convex.cost_dollars > optimal.cost_dollars
    assert race.cost_dollars > 1.5 * optimal.cost_dollars
    # ...convex violates repeatedly, race never does.
    assert convex.violation_percent > 10.0
    assert race.violation_percent == 0.0
    # Optimal itself never violates.
    assert optimal.violation_percent == 0.0


def motivational_variant():
    """The paper's own Fig. 2 framing: *every phase* must meet its
    desired throughput (a per-phase target), rather than one global
    IPC floor.  Race-to-idle must then hold the one configuration that
    satisfies the most demanding phase — for our x264 calibration the
    full 8S/8MB — while the optimal allocator re-provisions per phase.
    """
    from repro.arch.cost import DEFAULT_COST_MODEL
    from repro.arch.vcore import DEFAULT_CONFIG_SPACE
    from repro.baselines.oracle import phase_points
    from repro.runtime.optimizer import lower_envelope_cost
    from repro.sim.perfmodel import DEFAULT_PERF_MODEL
    from repro.workloads.apps import make_x264

    app = make_x264()
    model, space, cost_model = (
        DEFAULT_PERF_MODEL,
        DEFAULT_CONFIG_SPACE,
        DEFAULT_COST_MODEL,
    )
    targets = {
        phase.name: 0.9 * model.best_config(phase, space)[1]
        for phase in app.phases
    }
    optimal_cost = 0.0
    total_weight = 0.0
    for phase in app.phases:
        points = phase_points(phase, model, space, cost_model)
        cost, _ = lower_envelope_cost(points, targets[phase.name])
        weight = phase.instructions / targets[phase.name]
        optimal_cost += cost * weight
        total_weight += weight
    optimal_rate = optimal_cost / total_weight

    feasible = [
        config
        for config in space
        if all(
            model.ipc(phase, config) >= targets[phase.name]
            for phase in app.phases
        )
    ]
    race_config = min(feasible, key=lambda c: c.cost_rate(cost_model))
    race_cost = 0.0
    for phase in app.phases:
        weight = phase.instructions / targets[phase.name]
        busy = targets[phase.name] / model.ipc(phase, race_config)
        race_cost += race_config.cost_rate(cost_model) * busy * weight
    race_rate = race_cost / total_weight
    return optimal_rate, race_rate, race_config


@pytest.mark.benchmark(group="fig2")
def test_fig2_per_phase_qos_variant(benchmark, announce):
    optimal_rate, race_rate, race_config = benchmark.pedantic(
        motivational_variant, rounds=3, iterations=1
    )
    ratio = race_rate / optimal_rate
    announce(
        "\n=== Fig. 2 variant: every phase meets its own throughput ==="
    )
    announce(
        f"optimal ${optimal_rate:.4f}/hr vs race-to-idle on {race_config} "
        f"${race_rate:.4f}/hr -> {ratio:.2f}x (paper: 'over 4.5x')"
    )
    # The qualitative claim: with per-phase targets, worst-case
    # provisioning costs a multiple of optimal, not a few percent.
    assert ratio > 2.5
    assert race_config.l2_kb == 8192  # the demanding phase pins the max


@pytest.mark.benchmark(group="fig2")
def test_fig2_time_series(benchmark, announce):
    results = benchmark.pedantic(
        x264_timeseries, kwargs={"intervals": 220}, rounds=1, iterations=1
    )
    announce("\n=== Fig. 2 time series (cost rate $/hr @ Mcycles) ===")
    header = f"{'Mcycles':>8}" + "".join(f"{name:>24}" for name in results)
    announce(header)
    any_run = next(iter(results.values()))
    for i in range(0, any_run.num_intervals, 30):
        row = f"{any_run.records[i].start_cycle / 1e6:>8.1f}"
        for run in results.values():
            row += f"{run.records[i].cost_rate:>24.4f}"
        announce(row)
    # Race-to-idle's normalized performance exceeds 1 when racing
    # (the bottom chart of Fig. 2 shows it well above the QoS line).
    race = results["Race to Idle"]
    perf = race.normalized_performance_series()
    assert max(perf) > 1.1
    assert min(perf) > 0.97
