"""Fig. 10 / Section VI-E: coarse vs fine grain x race vs adaptive.

Paper claims:
* geometric-mean costs: CoarseGrain-race $0.062, CoarseGrain-adapt
  $0.048, FineGrain-race $0.029, CASH $0.017;
* adaptation alone reduces cost by ~25%;
* fine-grain reconfigurability alone reduces cost by more than 50%;
* combined, CASH saves over 70% vs racing on a heterogeneous machine.
"""

import pytest

from repro.experiments.report import per_app_table
from repro.experiments.scenarios import compare_architectures, geometric_mean

PAPER_GEOMEANS = {
    "CoarseGrain race": 0.062,
    "CoarseGrain adapt": 0.048,
    "FineGrain race": 0.029,
    "CASH": 0.017,
}


def regenerate():
    return compare_architectures(intervals=1000)


@pytest.mark.benchmark(group="fig10")
def test_fig10_architecture_comparison(benchmark, announce):
    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    geo = {
        name: geometric_mean([r.cost_dollars for r in runs.values()])
        for name, runs in results.items()
    }
    coarse_race = geo["CoarseGrain race"]

    announce("\n=== Fig. 10: coarse vs fine grain, race vs adaptive ===")
    announce(f"{'system':<20}{'geomean $':>10}{'saving':>8}{'paper $':>9}")
    for name in PAPER_GEOMEANS:
        saving = (1.0 - geo[name] / coarse_race) * 100.0
        announce(
            f"{name:<20}{geo[name]:>10.4f}{saving:>7.0f}%"
            f"{PAPER_GEOMEANS[name]:>9.3f}"
        )
    announce("\nper-application detail:")
    announce(per_app_table(results))

    # Ordering: every step of the 2x2 helps, CASH is cheapest.
    assert geo["CASH"] < geo["FineGrain race"] < geo["CoarseGrain race"]
    assert geo["CASH"] < geo["CoarseGrain adapt"] < geo["CoarseGrain race"]

    # Magnitudes (paper: ~25% adaptation, >50% fine-grain, >70% both).
    adapt_saving = 1.0 - geo["CoarseGrain adapt"] / coarse_race
    fine_saving = 1.0 - geo["FineGrain race"] / coarse_race
    cash_saving = 1.0 - geo["CASH"] / coarse_race
    assert 0.15 <= adapt_saving <= 0.45
    assert 0.35 <= fine_saving <= 0.80
    assert cash_saving >= 0.55
