"""Provider-level extension benchmark: tenant density on one fabric.

Not a paper artefact, but the paper's own motivation ("deployment of
such a system would then also benefit cloud providers by attracting
more customers", Section I): quantify what fine-grain adaptivity buys
the *provider*.  The same customer mix runs on the same 16x16 fabric
under two fleet policies — every tenant racing its worst-case
reservation vs every tenant running the CASH runtime — and we compare
occupied footprint, tenant bills, and QoS.

The speed benchmark pins the provider-loop fast paths (operating-point
table cache, indexed fabric, heap queues): a 64-tenant, 500-interval
run with fast paths on must beat the scalar reference by >= 3x while
producing the identical ``ProviderReport``.  Timings are persisted to
``BENCH_CLOUD.json`` (next to the engine's ``BENCH_PERF.json``) so
runs can be compared across commits.
"""

import time

import pytest

from repro import perf
from repro.arch.fabric import Fabric
from repro.cloud import CloudProvider, Tenant
from repro.cloud.service import ServiceEngine
from repro.cloud.traffic import TrafficSpec, generate_traffic
from repro.experiments.harness import qos_target_for
from repro.experiments.stats import record_bench_cloud
from repro.workloads.apps import get_app

MIX = ["bzip", "hmmer", "sjeng", "lib", "omnetpp", "ferret"]


def build_tenants(policy):
    tenants = []
    for index, name in enumerate(MIX):
        app = get_app(name)
        tenants.append(
            Tenant(
                tenant_id=index,
                app=app,
                qos_goal=qos_target_for(app),
                policy=policy,
                arrival_interval=index * 10,
            )
        )
    return tenants


def run_fleets():
    reports = {}
    for policy in ("race", "cash"):
        provider = CloudProvider(fabric=Fabric(width=16, height=16), seed=7)
        reports[policy] = (
            provider,
            provider.run(build_tenants(policy), intervals=500),
        )
    return reports


@pytest.mark.benchmark(group="multitenant")
def test_provider_density(benchmark, announce):
    reports = benchmark.pedantic(run_fleets, rounds=1, iterations=1)

    announce("\n=== Provider view: race fleet vs CASH fleet (16x16 fabric) ===")
    announce(
        f"{'fleet':<8}{'admitted':>9}{'util %':>8}{'mean bill':>11}"
        f"{'mean viol %':>12}{'mean tiles':>11}"
    )
    stats = {}
    for policy, (provider, report) in reports.items():
        accounts = list(report.accounts.values())
        bills = sum(a.mean_cost_rate for a in accounts) / len(accounts)
        tiles = sum(a.mean_footprint_tiles for a in accounts) / len(accounts)
        stats[policy] = {
            "bills": bills,
            "tiles": tiles,
            "viol": report.mean_violation_percent,
            "util": report.mean_utilization,
        }
        announce(
            f"{policy:<8}{report.admitted:>9}"
            f"{report.mean_utilization * 100:>8.0f}"
            f"{bills:>11.4f}{report.mean_violation_percent:>12.1f}"
            f"{tiles:>11.1f}"
        )

    # The CASH fleet occupies (and bills for) much less silicon while
    # keeping violations bounded — that slack is rentable capacity.
    assert stats["cash"]["tiles"] < 0.8 * stats["race"]["tiles"]
    assert stats["cash"]["bills"] < stats["race"]["bills"]
    assert stats["race"]["viol"] == 0.0
    assert stats["cash"]["viol"] < 12.0

    record_bench_cloud(
        "density",
        {
            policy: {
                "admitted": report.admitted,
                "mean_utilization": round(report.mean_utilization, 4),
                "mean_bill_rate": round(values["bills"], 4),
                "mean_violation_percent": round(values["viol"], 2),
                "mean_footprint_tiles": round(values["tiles"], 2),
            }
            for (policy, (_, report)), values in zip(
                reports.items(), stats.values()
            )
        },
    )


def build_big_fleet(tenants=64, arrival_stride=3):
    """A 64-tenant mixed fleet with staggered arrivals and departures."""
    fleet = []
    for index in range(tenants):
        app = get_app(MIX[index % len(MIX)])
        fleet.append(
            Tenant(
                tenant_id=index,
                app=app,
                qos_goal=qos_target_for(app),
                policy="cash" if index % 2 == 0 else "race",
                arrival_interval=index * arrival_stride,
                departure_interval=(
                    250 + index * 3 if index % 4 == 0 else None
                ),
            )
        )
    return fleet


def run_big_fleet(intervals=500):
    provider = CloudProvider(
        fabric=Fabric(width=16, height=16), seed=11, overcommit=2.0
    )
    return provider.run(build_big_fleet(), intervals=intervals)


@pytest.mark.benchmark(group="multitenant")
def test_provider_loop_speed(benchmark, announce):
    """Fast provider loop >= 3x the scalar reference, same report."""
    with perf.fast_paths(False):
        start = time.perf_counter()
        reference = run_big_fleet()
        reference_s = time.perf_counter() - start

    def fast_run():
        with perf.fast_paths(True):
            return run_big_fleet()

    start = time.perf_counter()
    fast = benchmark.pedantic(fast_run, rounds=1, iterations=1)
    fast_s = time.perf_counter() - start
    speedup = reference_s / fast_s

    announce("\n=== Provider loop: 64 tenants x 500 intervals (16x16) ===")
    announce(f"scalar reference: {reference_s:8.3f} s")
    announce(f"fast paths:       {fast_s:8.3f} s")
    announce(f"speedup:          {speedup:8.1f}x")

    assert fast == reference, "fast provider loop changed the report"
    assert speedup >= 3.0

    record_bench_cloud(
        "provider_loop",
        {
            "tenants": 64,
            "intervals": 500,
            "fabric": "16x16",
            "reference_seconds": round(reference_s, 3),
            "fast_seconds": round(fast_s, 3),
            "speedup": round(speedup, 2),
        },
    )


def churn_spec(tenants, horizon, seed=13):
    """The service-tier churn scenario: heavy-tailed lifetimes, low duty
    cycle, a diurnal cycle, and two flash crowds."""
    return TrafficSpec(
        tenants=tenants,
        horizon=horizon,
        seed=seed,
        activity=0.12,
        mean_burst=6.0,
        lifetime_min=150.0,
        lifetime_shape=1.4,
        diurnal_period=max(horizon // 4, 1),
        diurnal_amplitude=0.5,
        flash_crowds=2,
        flash_duration=max(horizon // 100, 1),
        flash_boost=4.0,
    )


def run_service(spec, fast):
    scenario = generate_traffic(spec)
    with perf.fast_paths(fast):
        engine = ServiceEngine(
            scenario, fabric=Fabric(24, 24), overcommit=3.0
        )
        start = time.perf_counter()
        report = engine.run()
        elapsed = time.perf_counter() - start
    return report, elapsed


@pytest.mark.benchmark(group="multitenant")
def test_service_tier_throughput(benchmark, announce):
    """Event heap >= 10x the dense loop in tenant-intervals/second.

    The dense reference cannot finish the 4096-tenant x 20k-interval
    scenario in benchmark time, so its rate is measured on a smaller
    cell of the same churn family (per-tenant work is the same; the
    dense loop's costs only grow with scale, so the small-cell rate
    flatters it).  Bit-identity of the two engines is asserted on the
    same small cell.
    """
    small = churn_spec(tenants=192, horizon=600)
    dense_report, dense_s = run_service(small, fast=False)
    fast_small_report, _ = run_service(small, fast=True)
    assert fast_small_report == dense_report, (
        "event engine diverged from the dense reference"
    )
    dense_rate = dense_report.tenant_intervals / dense_s

    big = churn_spec(tenants=4096, horizon=20_000)

    def fast_run():
        return run_service(big, fast=True)

    fast_report, fast_s = benchmark.pedantic(
        fast_run, rounds=1, iterations=1
    )
    fast_rate = fast_report.tenant_intervals / fast_s
    ratio = fast_rate / dense_rate

    announce("\n=== Service tier: event heap vs dense loop (24x24) ===")
    announce(
        f"dense  192 x   600: {dense_report.tenant_intervals:>9,} "
        f"t-ivals in {dense_s:7.2f} s = {dense_rate:>9,.0f}/s"
    )
    announce(
        f"event 4096 x 20000: {fast_report.tenant_intervals:>9,} "
        f"t-ivals in {fast_s:7.2f} s = {fast_rate:>9,.0f}/s"
    )
    announce(f"ratio: {ratio:14.1f}x")
    announce(
        f"hibernation: {fast_report.decide_steps:,} decides / "
        f"{fast_report.active_steps:,} active steps"
    )

    assert ratio >= 10.0

    record_bench_cloud(
        "service",
        {
            "dense_tenants": 192,
            "dense_intervals": 600,
            "event_tenants": 4096,
            "event_intervals": 20_000,
            "fabric": "24x24",
            "dense_tenant_intervals_per_second": round(dense_rate, 1),
            "event_tenant_intervals_per_second": round(fast_rate, 1),
            "ratio": round(ratio, 2),
            "event_active_steps": fast_report.active_steps,
            "event_decide_steps": fast_report.decide_steps,
            "event_admitted": fast_report.admitted,
        },
    )


@pytest.mark.benchmark(group="multitenant")
def test_service_ten_thousand_tenants(benchmark, announce):
    """10k-tenant open-loop traffic is feasible on one event heap."""
    spec = churn_spec(tenants=10_240, horizon=8_000)

    def fast_run():
        return run_service(spec, fast=True)

    report, elapsed = benchmark.pedantic(fast_run, rounds=1, iterations=1)
    rate = report.tenant_intervals / elapsed

    announce("\n=== Service tier: 10k-tenant feasibility (24x24) ===")
    announce(
        f"{report.admitted:,} admitted / {report.rejected:,} rejected; "
        f"{report.tenant_intervals:,} t-ivals in {elapsed:.2f} s "
        f"= {rate:,.0f}/s"
    )

    assert report.admitted + report.rejected == 10_240
    assert report.tenant_intervals > 0

    record_bench_cloud(
        "service_10k",
        {
            "tenants": 10_240,
            "intervals": 8_000,
            "fabric": "24x24",
            "admitted": report.admitted,
            "rejected": report.rejected,
            "tenant_intervals": report.tenant_intervals,
            "tenant_intervals_per_second": round(rate, 1),
            "seconds": round(elapsed, 2),
        },
    )
