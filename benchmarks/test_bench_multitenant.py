"""Provider-level extension benchmark: tenant density on one fabric.

Not a paper artefact, but the paper's own motivation ("deployment of
such a system would then also benefit cloud providers by attracting
more customers", Section I): quantify what fine-grain adaptivity buys
the *provider*.  The same customer mix runs on the same 16x16 fabric
under two fleet policies — every tenant racing its worst-case
reservation vs every tenant running the CASH runtime — and we compare
occupied footprint, tenant bills, and QoS.

The speed benchmark pins the provider-loop fast paths (operating-point
table cache, indexed fabric, heap queues): a 64-tenant, 500-interval
run with fast paths on must beat the scalar reference by >= 3x while
producing the identical ``ProviderReport``.  Timings are persisted to
``BENCH_CLOUD.json`` (next to the engine's ``BENCH_PERF.json``) so
runs can be compared across commits.
"""

import time

import pytest

from repro import perf
from repro.arch.fabric import Fabric
from repro.cloud import CloudProvider, Tenant
from repro.experiments.harness import qos_target_for
from repro.experiments.stats import record_bench_cloud
from repro.workloads.apps import get_app

MIX = ["bzip", "hmmer", "sjeng", "lib", "omnetpp", "ferret"]


def build_tenants(policy):
    tenants = []
    for index, name in enumerate(MIX):
        app = get_app(name)
        tenants.append(
            Tenant(
                tenant_id=index,
                app=app,
                qos_goal=qos_target_for(app),
                policy=policy,
                arrival_interval=index * 10,
            )
        )
    return tenants


def run_fleets():
    reports = {}
    for policy in ("race", "cash"):
        provider = CloudProvider(fabric=Fabric(width=16, height=16), seed=7)
        reports[policy] = (
            provider,
            provider.run(build_tenants(policy), intervals=500),
        )
    return reports


@pytest.mark.benchmark(group="multitenant")
def test_provider_density(benchmark, announce):
    reports = benchmark.pedantic(run_fleets, rounds=1, iterations=1)

    announce("\n=== Provider view: race fleet vs CASH fleet (16x16 fabric) ===")
    announce(
        f"{'fleet':<8}{'admitted':>9}{'util %':>8}{'mean bill':>11}"
        f"{'mean viol %':>12}{'mean tiles':>11}"
    )
    stats = {}
    for policy, (provider, report) in reports.items():
        accounts = list(report.accounts.values())
        bills = sum(a.mean_cost_rate for a in accounts) / len(accounts)
        tiles = sum(a.mean_footprint_tiles for a in accounts) / len(accounts)
        stats[policy] = {
            "bills": bills,
            "tiles": tiles,
            "viol": report.mean_violation_percent,
            "util": report.mean_utilization,
        }
        announce(
            f"{policy:<8}{report.admitted:>9}"
            f"{report.mean_utilization * 100:>8.0f}"
            f"{bills:>11.4f}{report.mean_violation_percent:>12.1f}"
            f"{tiles:>11.1f}"
        )

    # The CASH fleet occupies (and bills for) much less silicon while
    # keeping violations bounded — that slack is rentable capacity.
    assert stats["cash"]["tiles"] < 0.8 * stats["race"]["tiles"]
    assert stats["cash"]["bills"] < stats["race"]["bills"]
    assert stats["race"]["viol"] == 0.0
    assert stats["cash"]["viol"] < 12.0

    record_bench_cloud(
        "density",
        {
            policy: {
                "admitted": report.admitted,
                "mean_utilization": round(report.mean_utilization, 4),
                "mean_bill_rate": round(values["bills"], 4),
                "mean_violation_percent": round(values["viol"], 2),
                "mean_footprint_tiles": round(values["tiles"], 2),
            }
            for (policy, (_, report)), values in zip(
                reports.items(), stats.values()
            )
        },
    )


def build_big_fleet(tenants=64, arrival_stride=3):
    """A 64-tenant mixed fleet with staggered arrivals and departures."""
    fleet = []
    for index in range(tenants):
        app = get_app(MIX[index % len(MIX)])
        fleet.append(
            Tenant(
                tenant_id=index,
                app=app,
                qos_goal=qos_target_for(app),
                policy="cash" if index % 2 == 0 else "race",
                arrival_interval=index * arrival_stride,
                departure_interval=(
                    250 + index * 3 if index % 4 == 0 else None
                ),
            )
        )
    return fleet


def run_big_fleet(intervals=500):
    provider = CloudProvider(
        fabric=Fabric(width=16, height=16), seed=11, overcommit=2.0
    )
    return provider.run(build_big_fleet(), intervals=intervals)


@pytest.mark.benchmark(group="multitenant")
def test_provider_loop_speed(benchmark, announce):
    """Fast provider loop >= 3x the scalar reference, same report."""
    with perf.fast_paths(False):
        start = time.perf_counter()
        reference = run_big_fleet()
        reference_s = time.perf_counter() - start

    def fast_run():
        with perf.fast_paths(True):
            return run_big_fleet()

    start = time.perf_counter()
    fast = benchmark.pedantic(fast_run, rounds=1, iterations=1)
    fast_s = time.perf_counter() - start
    speedup = reference_s / fast_s

    announce("\n=== Provider loop: 64 tenants x 500 intervals (16x16) ===")
    announce(f"scalar reference: {reference_s:8.3f} s")
    announce(f"fast paths:       {fast_s:8.3f} s")
    announce(f"speedup:          {speedup:8.1f}x")

    assert fast == reference, "fast provider loop changed the report"
    assert speedup >= 3.0

    record_bench_cloud(
        "provider_loop",
        {
            "tenants": 64,
            "intervals": 500,
            "fabric": "16x16",
            "reference_seconds": round(reference_s, 3),
            "fast_seconds": round(fast_s, 3),
            "speedup": round(speedup, 2),
        },
    )
