"""Provider-level extension benchmark: tenant density on one fabric.

Not a paper artefact, but the paper's own motivation ("deployment of
such a system would then also benefit cloud providers by attracting
more customers", Section I): quantify what fine-grain adaptivity buys
the *provider*.  The same customer mix runs on the same 16x16 fabric
under two fleet policies — every tenant racing its worst-case
reservation vs every tenant running the CASH runtime — and we compare
occupied footprint, tenant bills, and QoS.
"""

import pytest

from repro.arch.fabric import Fabric
from repro.cloud import CloudProvider, Tenant
from repro.experiments.harness import qos_target_for
from repro.workloads.apps import get_app

MIX = ["bzip", "hmmer", "sjeng", "lib", "omnetpp", "ferret"]


def build_tenants(policy):
    tenants = []
    for index, name in enumerate(MIX):
        app = get_app(name)
        tenants.append(
            Tenant(
                tenant_id=index,
                app=app,
                qos_goal=qos_target_for(app),
                policy=policy,
                arrival_interval=index * 10,
            )
        )
    return tenants


def run_fleets():
    reports = {}
    for policy in ("race", "cash"):
        provider = CloudProvider(fabric=Fabric(width=16, height=16), seed=7)
        reports[policy] = (
            provider,
            provider.run(build_tenants(policy), intervals=500),
        )
    return reports


@pytest.mark.benchmark(group="multitenant")
def test_provider_density(benchmark, announce):
    reports = benchmark.pedantic(run_fleets, rounds=1, iterations=1)

    announce("\n=== Provider view: race fleet vs CASH fleet (16x16 fabric) ===")
    announce(
        f"{'fleet':<8}{'admitted':>9}{'util %':>8}{'mean bill':>11}"
        f"{'mean viol %':>12}{'mean tiles':>11}"
    )
    stats = {}
    for policy, (provider, report) in reports.items():
        accounts = list(report.accounts.values())
        bills = sum(a.mean_cost_rate for a in accounts) / len(accounts)
        tiles = sum(a.mean_footprint_tiles for a in accounts) / len(accounts)
        stats[policy] = {
            "bills": bills,
            "tiles": tiles,
            "viol": report.mean_violation_percent,
            "util": report.mean_utilization,
        }
        announce(
            f"{policy:<8}{report.admitted:>9}"
            f"{report.mean_utilization * 100:>8.0f}"
            f"{bills:>11.4f}{report.mean_violation_percent:>12.1f}"
            f"{tiles:>11.1f}"
        )

    # The CASH fleet occupies (and bills for) much less silicon while
    # keeping violations bounded — that slack is rentable capacity.
    assert stats["cash"]["tiles"] < 0.8 * stats["race"]["tiles"]
    assert stats["cash"]["bills"] < stats["race"]["bills"]
    assert stats["race"]["viol"] == 0.0
    assert stats["cash"]["viol"] < 12.0
