"""Fig. 8: time-series behaviour of the allocators on x264.

Paper claims (Section VI-D1):
* CASH detects phase behaviour changes and reallocates to reduce cost,
  while convex optimization lingers in expensive configurations after
  an expensive phase ends;
* race-to-idle's busy-time performance rides well above the QoS line;
* CASH's delivered performance stays close to the goal.
"""

import pytest

from repro.experiments.scenarios import x264_timeseries


def regenerate():
    return x264_timeseries(intervals=900)


@pytest.mark.benchmark(group="fig8")
def test_fig8_x264_timeseries(benchmark, announce):
    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    convex = results["Convex Optimization"]
    race = results["Race to Idle"]
    cash = results["CASH"]

    announce("\n=== Fig. 8: x264 time series (sampled every 60 intervals) ===")
    announce(
        f"{'Mcycles':>8}{'phase':>10}"
        f"{'convex $/h':>12}{'race $/h':>12}{'cash $/h':>12}{'cash perf':>11}"
    )
    cash_perf = cash.normalized_performance_series()
    for i in range(0, cash.num_intervals, 60):
        announce(
            f"{cash.records[i].start_cycle / 1e6:>8.0f}"
            f"{cash.records[i].phase_name.split('.')[-1]:>10}"
            f"{convex.records[min(i, convex.num_intervals - 1)].cost_rate:>12.4f}"
            f"{race.records[min(i, race.num_intervals - 1)].cost_rate:>12.4f}"
            f"{cash.records[i].cost_rate:>12.4f}"
            f"{cash_perf[i]:>11.2f}"
        )

    announce(
        f"\nmean cost rates: convex ${convex.mean_cost_rate:.4f}, "
        f"race ${race.mean_cost_rate:.4f}, cash ${cash.mean_cost_rate:.4f}"
    )

    # CASH adapts: it is cheaper than race-to-idle over the run.
    assert cash.mean_cost_rate < race.mean_cost_rate
    # CASH leaves the expensive phase-3 configuration: its cost rate in
    # cheap phases (p2/p9) is far below its cost rate in phase 3.
    by_phase = {}
    for record in cash.records:
        by_phase.setdefault(record.phase_name, []).append(record.cost_rate)
    p3 = sum(by_phase["x264.p3"]) / len(by_phase["x264.p3"])
    p9 = sum(by_phase["x264.p9"]) / len(by_phase["x264.p9"])
    assert p9 < 0.6 * p3
    # Delivered performance hugs the goal: the long-run average is at
    # or above it, without racing far past it the way race-to-idle does.
    mean_perf = sum(cash_perf) / len(cash_perf)
    race_perf = race.normalized_performance_series()
    assert 0.97 <= mean_perf
    assert (sum(race_perf) / len(race_perf)) > mean_perf
